//! Cross-crate integration: the full learned pipeline end-to-end on all
//! three datasets, with minimum quality floors so regressions in any
//! substrate (NLP, mining, segmentation, disambiguation) surface here.

use vs2_core::pipeline::{DisambiguationMode, Vs2Config, Vs2Pipeline};
use vs2_core::select::Eq2Weights;
use vs2_eval::{evaluate_end_to_end, ExtractionItem, PrCounts};
use vs2_synth::{generate, holdout_corpus, DatasetConfig, DatasetId};

fn learned_pipeline(id: DatasetId, config: Vs2Config) -> Vs2Pipeline {
    let corpus = holdout_corpus(id, 99);
    let entries: Vec<(String, String, String)> = corpus
        .entries
        .iter()
        .map(|e| (e.entity.clone(), e.text.clone(), e.context.clone()))
        .collect();
    Vs2Pipeline::learn(
        entries
            .iter()
            .map(|(a, b, c)| (a.as_str(), b.as_str(), c.as_str())),
        config,
    )
}

fn end_to_end(id: DatasetId, config: Vs2Config, n: usize) -> PrCounts {
    let pipeline = learned_pipeline(id, config);
    let docs = generate(id, DatasetConfig::new(n, 1234));
    let mut counts = PrCounts::default();
    for ad in &docs {
        let preds: Vec<ExtractionItem> = pipeline
            .extract(&ad.doc)
            .into_iter()
            .map(|e| ExtractionItem::new(e.entity, e.span_bbox, e.text))
            .collect();
        let truth: Vec<ExtractionItem> = ad
            .annotations
            .iter()
            .map(|a| ExtractionItem::new(a.entity.clone(), a.bbox, a.text.clone()))
            .collect();
        counts.add(&evaluate_end_to_end(&preds, &truth));
    }
    counts
}

#[test]
fn d1_end_to_end_quality_floor() {
    let c = end_to_end(DatasetId::D1, Vs2Config::default(), 10);
    assert!(c.f1() > 0.6, "D1 F1 regressed: {:.3}", c.f1());
}

#[test]
fn d2_end_to_end_quality_floor() {
    let config = Vs2Config {
        weights: Eq2Weights::visual_heavy(),
        ..Vs2Config::default()
    };
    let c = end_to_end(DatasetId::D2, config, 10);
    assert!(c.f1() > 0.5, "D2 F1 regressed: {:.3}", c.f1());
}

#[test]
fn d3_end_to_end_quality_floor() {
    let c = end_to_end(DatasetId::D3, Vs2Config::default(), 10);
    assert!(c.f1() > 0.65, "D3 F1 regressed: {:.3}", c.f1());
}

#[test]
fn every_dataset_learns_patterns_for_all_entities() {
    for id in DatasetId::ALL {
        let pipeline = learned_pipeline(id, Vs2Config::default());
        for entity in id.entity_types() {
            assert!(
                pipeline
                    .patterns()
                    .get(&entity)
                    .is_some_and(|p| !p.is_empty()),
                "{id:?}: no patterns for {entity}"
            );
        }
    }
}

#[test]
fn disambiguation_modes_all_run() {
    let docs = generate(DatasetId::D2, DatasetConfig::new(2, 5));
    for mode in [
        DisambiguationMode::Multimodal,
        DisambiguationMode::FirstMatch,
        DisambiguationMode::Lesk,
    ] {
        let config = Vs2Config {
            disambiguation: mode,
            ..Vs2Config::default()
        };
        let pipeline = learned_pipeline(DatasetId::D2, config);
        for d in &docs {
            let ex = pipeline.extract(&d.doc);
            assert!(!ex.is_empty(), "{mode:?} extracted nothing");
        }
    }
}

#[test]
fn weight_learning_never_degrades_validation_agreement() {
    use vs2_core::select::{learn_weights, WeightSearchConfig};
    let pipeline = learned_pipeline(DatasetId::D2, Vs2Config::default());
    let docs = generate(DatasetId::D2, DatasetConfig::new(3, 21));
    let (w, score) = learn_weights(&pipeline, &docs, WeightSearchConfig { steps: 2 });
    assert!(w.is_valid() || w == pipeline.config.weights, "{w:?}");
    assert!((0.0..=1.0).contains(&score));
    // The search returns at least the baseline's own agreement.
    let (_, base_score) = learn_weights(&pipeline, &docs, WeightSearchConfig { steps: 0 });
    assert!(score + 1e-9 >= base_score);
}

#[test]
fn extractions_claim_distinct_blocks() {
    // The joint assignment must not hand the same block to two entities
    // while alternatives exist.
    let pipeline = learned_pipeline(DatasetId::D2, Vs2Config::default());
    let docs = generate(DatasetId::D2, DatasetConfig::new(4, 11));
    for d in &docs {
        let ex = pipeline.extract(&d.doc);
        let mut keys: Vec<String> = ex
            .iter()
            .map(|e| {
                format!(
                    "{:.0},{:.0},{:.0}",
                    e.block_bbox.x, e.block_bbox.y, e.block_bbox.w
                )
            })
            .collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        // Allow at most one duplicated block (the exhausted-candidates
        // fallback); systematic duplication is a bug.
        assert!(keys.len() + 1 >= n, "block duplication in {}", d.doc.id);
    }
}
