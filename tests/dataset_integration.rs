//! Cross-crate integration: dataset generators, the OCR channel, the
//! holdout corpora and the NLP annotators agree with each other.

use vs2_nlp::Embedder;
use vs2_synth::{generate, holdout_corpus, DatasetConfig, DatasetId, OcrConfig};

#[test]
fn entity_texts_are_recoverable_by_their_own_patterns() {
    // Every D3 holdout entity text must carry the features its learned
    // pattern requires — the distant-supervision contract.
    let corpus = holdout_corpus(DatasetId::D3, 7);
    for e in corpus.for_entity(vs2_synth::flyers::entities::BROKER_EMAIL) {
        assert!(vs2_nlp::ner::is_email(&e.text), "bad email {:?}", e.text);
    }
    for e in corpus.for_entity(vs2_synth::flyers::entities::PROPERTY_ADDRESS) {
        assert!(
            vs2_nlp::geocode::is_valid_geocode(&e.text),
            "bad address {:?}",
            e.text
        );
    }
}

#[test]
fn ocr_noise_monotonically_degrades_transcription() {
    let clean_docs = generate(
        DatasetId::D2,
        DatasetConfig::new(4, 3).with_ocr(OcrConfig::clean()),
    );
    let noisy_docs = generate(
        DatasetId::D2,
        DatasetConfig::new(4, 3).with_ocr(OcrConfig::heavy()),
    );
    let mut changed = 0;
    for (c, n) in clean_docs.iter().zip(&noisy_docs) {
        if c.doc.transcribe_all() != n.doc.transcribe_all() {
            changed += 1;
        }
    }
    assert!(changed >= 3, "heavy noise changed only {changed}/4 docs");
}

#[test]
fn annotations_survive_the_ocr_channel_geometrically() {
    for id in DatasetId::ALL {
        let docs = generate(id, DatasetConfig::new(3, 17));
        for ad in &docs {
            for a in &ad.annotations {
                // Each annotation still overlaps document content.
                assert!(
                    !ad.doc
                        .elements_intersecting(&a.bbox.inflate(2.0))
                        .is_empty(),
                    "{}: annotation {} lost its content",
                    ad.doc.id,
                    a.entity
                );
            }
        }
    }
}

#[test]
fn embeddings_separate_dataset_vocabularies() {
    // The lexicon embedding must give the semantic-merging step a usable
    // signal: event vocabulary coheres, estate vocabulary coheres, and
    // the two fields stay apart.
    let e = vs2_nlp::LexiconEmbedding;
    let event = e.embed_text(["concert", "festival", "gala"]);
    let event2 = e.embed_text(["workshop", "seminar"]);
    let estate = e.embed_text(["lease", "listing", "zoned"]);
    assert!(vs2_nlp::cosine(&event, &event2) > 0.8);
    assert!(vs2_nlp::cosine(&event, &estate) < 0.4);
}

#[test]
fn trained_embedding_learns_from_holdout_corpus() {
    // The PPMI-SVD trainer consumes the holdout corpus end-to-end.
    let corpus = holdout_corpus(DatasetId::D2, 5);
    let sentences: Vec<Vec<String>> = corpus
        .entries
        .iter()
        .take(200)
        .map(|e| e.context.split_whitespace().map(String::from).collect())
        .collect();
    let emb = vs2_nlp::TrainedEmbedding::train(&sentences, 3);
    assert!(emb.vocab_size() > 50);
    // "hosted" and "organized" share contexts in organiser lines.
    let sim = vs2_nlp::cosine(&emb.embed("hosted"), &emb.embed("organized"));
    let cross = vs2_nlp::cosine(&emb.embed("hosted"), &emb.embed("43210"));
    assert!(
        sim > cross,
        "distributional signal missing: {sim} vs {cross}"
    );
}

#[test]
fn dataset_sizes_and_determinism() {
    for id in DatasetId::ALL {
        let a = generate(id, DatasetConfig::new(5, 42));
        let b = generate(id, DatasetConfig::new(5, 42));
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.doc, y.doc, "{id:?} not deterministic");
            assert_eq!(x.annotations, y.annotations);
        }
    }
}
