//! Cross-crate integration: every baseline runs on every applicable
//! dataset, and the headline orderings of the paper's evaluation hold.

use vs2_baselines::{
    ApostolovaExtractor, Extractor, FsmExtractor, ReportMinerExtractor, Segmenter,
    TesseractSegmenter, TextOnlySegmenter, VipsSegmenter, VoronoiSegmenter, Vs2Segmenter,
    XyCutSegmenter,
};
use vs2_core::pipeline::{Vs2Config, Vs2Pipeline};
use vs2_eval::{evaluate_end_to_end, evaluate_segmentation, ExtractionItem, PrCounts};
use vs2_synth::{generate, holdout_corpus, DatasetConfig, DatasetId};

fn segmenters() -> Vec<Box<dyn Segmenter>> {
    vec![
        Box::new(TextOnlySegmenter::default()),
        Box::new(XyCutSegmenter::default()),
        Box::new(VoronoiSegmenter::default()),
        Box::new(VipsSegmenter::default()),
        Box::new(TesseractSegmenter::default()),
        Box::new(Vs2Segmenter::default()),
    ]
}

#[test]
fn every_segmenter_partitions_every_dataset() {
    for id in DatasetId::ALL {
        let docs = generate(id, DatasetConfig::new(2, 21));
        for seg in segmenters() {
            if seg.requires_markup() && !id.has_markup() {
                continue;
            }
            for d in &docs {
                let blocks = seg.segment(&d.doc);
                let total: usize = blocks.iter().map(|b| b.elements.len()).sum();
                assert_eq!(
                    total,
                    d.doc.len(),
                    "{} loses elements on {}",
                    seg.name(),
                    d.doc.id
                );
            }
        }
    }
}

fn learned_pipeline(id: DatasetId) -> Vs2Pipeline {
    let corpus = holdout_corpus(id, 99);
    let entries: Vec<(String, String, String)> = corpus
        .entries
        .iter()
        .map(|e| (e.entity.clone(), e.text.clone(), e.context.clone()))
        .collect();
    Vs2Pipeline::learn(
        entries
            .iter()
            .map(|(a, b, c)| (a.as_str(), b.as_str(), c.as_str())),
        Vs2Config::default(),
    )
}

#[test]
fn vs2_segment_beats_text_only_clustering() {
    // The paper's headline phase-1 ordering: the text-only baseline (A1)
    // is far below VS2-Segment (A6) on every dataset.
    let id = DatasetId::D2;
    let docs = generate(id, DatasetConfig::new(8, 33));
    let pipeline = learned_pipeline(id);
    let score = |seg: &dyn Segmenter| -> PrCounts {
        let mut counts = PrCounts::default();
        for ad in &docs {
            let blocks = seg.segment(&ad.doc);
            let ex = pipeline.extract_on_blocks(&ad.doc, &blocks);
            let proposals: Vec<_> = ex.iter().map(|e| e.block_bbox).collect();
            let truth: Vec<_> = ad.annotations.iter().map(|a| a.bbox).collect();
            counts.add(&evaluate_segmentation(&proposals, &truth));
        }
        counts
    };
    let vs2 = score(&Vs2Segmenter::default());
    let text_only = score(&TextOnlySegmenter::default());
    assert!(
        vs2.f1() > text_only.f1() + 0.2,
        "VS2 {:.3} should dominate text-only {:.3}",
        vs2.f1(),
        text_only.f1()
    );
}

fn e2e_f1<E: Extractor + ?Sized>(e: &E, docs: &[vs2_docmodel::AnnotatedDocument]) -> f64 {
    let mut counts = PrCounts::default();
    for ad in docs {
        let preds: Vec<ExtractionItem> = e
            .extract(&ad.doc)
            .into_iter()
            .map(|p| ExtractionItem::new(p.entity, p.bbox, p.text))
            .collect();
        let truth: Vec<ExtractionItem> = ad
            .annotations
            .iter()
            .map(|a| ExtractionItem::new(a.entity.clone(), a.bbox, a.text.clone()))
            .collect();
        counts.add(&evaluate_end_to_end(&preds, &truth));
    }
    counts.f1()
}

#[test]
fn segmentation_beats_no_segmentation_for_pattern_search() {
    // FSM = the same learned patterns without visual segmentation; VS2
    // must beat it clearly (the paper's central claim).
    let id = DatasetId::D2;
    let docs = generate(id, DatasetConfig::new(8, 44));
    let pipeline = learned_pipeline(id);
    let fsm = FsmExtractor::new(pipeline.clone());
    struct W(Vs2Pipeline);
    impl Extractor for W {
        fn name(&self) -> &'static str {
            "VS2"
        }
        fn extract(&self, doc: &vs2_docmodel::Document) -> Vec<vs2_baselines::Prediction> {
            self.0
                .extract(doc)
                .into_iter()
                .map(|e| vs2_baselines::Prediction {
                    entity: e.entity,
                    text: e.text,
                    bbox: e.span_bbox,
                })
                .collect()
        }
    }
    let vs2 = W(pipeline);
    let vs2_f1 = e2e_f1(&vs2, &docs);
    let fsm_f1 = e2e_f1(&fsm, &docs);
    assert!(
        vs2_f1 > fsm_f1 + 0.1,
        "VS2 {vs2_f1:.3} should beat unsegmented FSM {fsm_f1:.3}"
    );
}

#[test]
fn trained_baselines_learn_on_templated_data() {
    // ReportMiner and the SVM must be strong on fixed templates (D1) —
    // the property the paper exploits in its Table 7 discussion. The
    // training partition must cover all 20 form faces (documents cycle
    // through faces by index).
    let docs = generate(DatasetId::D1, DatasetConfig::new(30, 55));
    let (train, test) = docs.split_at(22);
    let rm = ReportMinerExtractor::train(train);
    let f1 = e2e_f1(&rm, test);
    assert!(f1 > 0.6, "ReportMiner on fixed templates: {f1:.3}"); // skewed scans cap mask accuracy

    let entities = DatasetId::D1.entity_types();
    let svm = ApostolovaExtractor::train(train, &entities, 5);
    let f1 = e2e_f1(&svm, test);
    assert!(f1 > 0.4, "Apostolova on forms: {f1:.3}");
}
