//! Cross-crate integration: VS2-Segment over the synthetic datasets.

use vs2_core::segment::{logical_blocks, segment, SegmentConfig};
use vs2_synth::{generate, DatasetConfig, DatasetId};

#[test]
fn poster_segmentation_yields_plausible_blocks() {
    let docs = generate(DatasetId::D2, DatasetConfig::new(3, 77));
    for d in &docs {
        let blocks = logical_blocks(&d.doc, &SegmentConfig::default());
        assert!(
            blocks.len() >= 3,
            "too few blocks: {} for {}",
            blocks.len(),
            d.doc.id
        );
        assert!(
            blocks.len() <= 40,
            "too many blocks: {} for {}",
            blocks.len(),
            d.doc.id
        );
        let total: usize = blocks.iter().map(|b| b.elements.len()).sum();
        assert_eq!(total, d.doc.len(), "elements lost in {}", d.doc.id);
    }
}

#[test]
fn tax_form_segmentation_isolates_rows() {
    let docs = generate(DatasetId::D1, DatasetConfig::new(2, 77));
    for d in &docs {
        let blocks = logical_blocks(&d.doc, &SegmentConfig::default());
        // A form has 24 fields + header + signature; expect a block count
        // in that region, not 1 and not hundreds.
        assert!(blocks.len() >= 8, "under-segmented: {}", blocks.len());
        assert!(blocks.len() <= 60, "over-segmented: {}", blocks.len());
    }
}

#[test]
fn flyer_segmentation_is_stable() {
    let docs = generate(DatasetId::D3, DatasetConfig::new(2, 77));
    for d in &docs {
        let a = logical_blocks(&d.doc, &SegmentConfig::default());
        let b = logical_blocks(&d.doc, &SegmentConfig::default());
        assert_eq!(a.len(), b.len());
        assert!(a.len() >= 3, "{}", a.len());
    }
}

#[test]
fn layout_tree_parents_enclose_children() {
    let docs = generate(DatasetId::D2, DatasetConfig::new(2, 3));
    for d in &docs {
        let tree = segment(&d.doc, &SegmentConfig::default());
        for id in tree.live_ids() {
            let n = tree.node(id);
            for c in &n.children {
                assert_eq!(tree.node(*c).parent, Some(id), "broken parent link");
                // Children's elements are a subset of the parent's.
                for e in &tree.node(*c).elements {
                    assert!(
                        n.elements.contains(e),
                        "child element missing from parent in {}",
                        d.doc.id
                    );
                }
            }
        }
    }
}

#[test]
fn segmentation_is_robust_to_rotation() {
    // §5.1.2 claims robustness to rotation; verify the block count stays
    // in the same ballpark under a visible skew.
    use vs2_synth::OcrConfig;
    let straight = generate(
        DatasetId::D3,
        DatasetConfig::new(2, 9).with_ocr(OcrConfig::clean()),
    );
    let skew = OcrConfig {
        rotation_deg: 4.0,
        ..OcrConfig::clean()
    };
    let rotated = generate(DatasetId::D3, DatasetConfig::new(2, 9).with_ocr(skew));
    for (s, r) in straight.iter().zip(&rotated) {
        let bs = logical_blocks(&s.doc, &SegmentConfig::default()).len() as i64;
        let br = logical_blocks(&r.doc, &SegmentConfig::default()).len() as i64;
        assert!(
            (bs - br).abs() <= bs / 2 + 2,
            "rotation changed block count too much: {bs} vs {br}"
        );
    }
}
