//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! JSON text on top of the shim `serde` [`Value`] model.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes
//! and `\uXXXX` surrogate pairs, numbers, booleans, null). Integers that
//! fit `i64`/`u64` round-trip exactly; output key order follows insertion
//! order, so serialization is deterministic.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Converts a [`Value`] tree into a concrete type.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // Keep whole floats distinguishable from integers, as
            // serde_json does for f64 values.
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else {
        // JSON has no Inf/NaN; serde_json emits null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            (
                "s".into(),
                Value::Str("a \"quoted\"\nline \u{1F600}".into()),
            ),
            (
                "nums".into(),
                Value::Array(vec![
                    Value::Int(-3),
                    Value::UInt(u64::MAX),
                    Value::Float(1.5),
                    Value::Float(2.0),
                ]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("empty_arr".into(), Value::Array(vec![])),
            ("empty_obj".into(), Value::Object(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(parse(r#""A😀""#).unwrap(), Value::Str("A\u{1F600}".into()));
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&7i64).unwrap(), "7");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#""\q""#).is_err());
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), u64::MAX)];
        let text = to_string(&v).unwrap();
        let back: Vec<(String, u64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_stable() {
        let v = Value::Object(vec![
            ("b".into(), Value::Int(1)),
            ("a".into(), Value::Int(2)),
        ]);
        // Insertion order, not alphabetical.
        assert_eq!(to_string(&v).unwrap(), r#"{"b":1,"a":2}"#);
    }
}
