//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace ships the small API subset it actually uses:
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but
//! intentionally *not* bit-compatible with upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Derives a full-state RNG from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — the standard seed expander for xoshiro generators.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna).
    /// Deterministic, fast, and state-splittable — not cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one invalid xoshiro state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be produced directly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via Lemire's multiply-shift reduction
/// (no modulo bias worth caring about at these spans).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = f64::sample(rng) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = f64::sample(rng) as $t;
                lo + (hi - lo) * unit
            }
        }
    )+};
}

impl_float_range!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample(self) < p
    }

    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related random operations.

    use super::{uniform_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_words(), b.next_words());
        }
    }

    impl StdRng {
        fn next_words(&mut self) -> (u64, f64, bool) {
            (self.gen(), self.gen(), self.gen_bool(0.5))
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5..9.5);
            assert!((-2.5..9.5).contains(&f));
            let u = rng.gen_range(0u64..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }
}
