//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so the workspace ships the
//! strategy subset its tests use: numeric ranges, regex-lite string
//! strategies, tuples, [`Just`], `prop_oneof!`, `prop_map`,
//! `prop_recursive`, [`collection::vec`], and the [`proptest!`] macro
//! driving a fixed number of deterministic cases per property.
//!
//! Differences from upstream: no shrinking, and a simpler reproduction
//! protocol. Every case draws its own 64-bit seed from a master stream
//! keyed by the property's module path + name, so runs are deterministic;
//! on failure the runner prints the property label, case index, and the
//! case seed together with a one-command repro line. Two environment
//! variables steer the runner:
//!
//! - `VS2_PROPTEST_CASES=N` caps the case count of every property (CI
//!   uses this to bound suite wall time);
//! - `VS2_PROPTEST_SEED=0x…` re-runs exactly one case with that seed —
//!   the repro command printed on failure.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore as _, SeedableRng as _};
use std::ops::Range;
use std::rc::Rc;

/// Deterministic RNG handed to strategies by the [`proptest!`] runner.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the RNG from an arbitrary label (e.g. the property name).
    pub fn from_label(label: &str) -> Self {
        // FNV-1a over the label keeps case streams stable across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Seeds the RNG from an explicit 64-bit seed — the form printed by
    /// the runner's failure report.
    pub fn from_seed(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }

    /// Draws a case seed from a master stream.
    fn next_seed(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n.max(1))
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: `recurse` receives a strategy for the type and
    /// returns a strategy that may embed it, up to `depth` levels deep.
    /// (`_desired_size` and `_expected_branch_size` are accepted for
    /// upstream signature compatibility and ignored.)
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let base = self.boxed();
        let recurse = Rc::new(move |inner: BoxedStrategy<S::Value>| recurse(inner).boxed());
        let mut tower = base;
        for _ in 0..depth {
            let prev = tower.clone();
            let f = recurse.clone();
            let levels = vec![prev.clone(), f(prev)];
            tower = BoxedStrategy(Rc::new(ChooseLevel { levels }));
        }
        tower
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

trait StrategyObj<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cheaply clonable, type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn StrategyObj<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// Depth chooser used by `prop_recursive`: picks the shallow or the deeper
/// alternative, biased towards recursion.
struct ChooseLevel<T> {
    levels: Vec<BoxedStrategy<T>>,
}

impl<T> StrategyObj<T> for ChooseLevel<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.levels.len());
        self.levels[i].generate(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Union of same-typed strategies; `prop_oneof!` builds one.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for &'static str {
    type Value = String;

    /// Regex-lite string strategy supporting the subset this workspace
    /// uses: literal chars, `[a-z0-9_-]`-style classes, `\PC` (any
    /// printable char) and `{m,n}` / `{n}` repetition of the last atom.
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_regex_lite(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
    Printable,
}

impl Atom {
    fn generate(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                let mut k = rng.0.gen_range(0..total);
                for (a, b) in ranges {
                    let span = *b as u32 - *a as u32 + 1;
                    if k < span {
                        return char::from_u32(*a as u32 + k).unwrap_or('a');
                    }
                    k -= span;
                }
                'a'
            }
            Atom::Printable => {
                // Mostly ASCII printable, occasionally multi-byte unicode
                // to exercise UTF-8 handling.
                if rng.0.gen_bool(0.9) {
                    char::from_u32(rng.0.gen_range(0x20u32..0x7F)).unwrap_or(' ')
                } else {
                    const POOL: &[char] = &['é', 'ß', 'Ω', '中', '😀', '¿', '☃'];
                    POOL[rng.below(POOL.len())]
                }
            }
        }
    }
}

fn generate_regex_lite(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => match chars.next() {
                Some('P') => {
                    // `\PC`: not-a-control character (printable).
                    let class = chars.next();
                    assert_eq!(class, Some('C'), "unsupported \\P class in `{pattern}`");
                    Atom::Printable
                }
                Some('n') => Atom::Literal('\n'),
                Some('t') => Atom::Literal('\t'),
                Some(other) => Atom::Literal(other),
                None => panic!("dangling escape in `{pattern}`"),
            },
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let a = chars.next().expect("unterminated class");
                    if a == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let b = chars.next().expect("unterminated range");
                        assert!(b != ']', "dangling `-` in class in `{pattern}`");
                        ranges.push((a, b));
                    } else {
                        ranges.push((a, a));
                    }
                }
                Atom::Class(ranges)
            }
            other => Atom::Literal(other),
        };
        // Optional repetition suffix.
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad repetition"),
                    b.trim().parse().expect("bad repetition"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    let mut out = String::new();
    for (atom, lo, hi) in atoms {
        let n = if lo == hi {
            lo
        } else {
            rng.0.gen_range(lo..=hi)
        };
        for _ in 0..n {
            out.push(atom.generate(rng));
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of values from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            use rand::Rng as _;
            let n = rng.0.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration for [`proptest!`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The `VS2_PROPTEST_CASES` cap, when set. An unparsable value panics
/// rather than silently running the default count.
fn env_cases() -> Option<u32> {
    let raw = std::env::var("VS2_PROPTEST_CASES").ok()?;
    Some(
        raw.trim()
            .parse()
            .unwrap_or_else(|e| panic!("VS2_PROPTEST_CASES `{raw}` is not a count: {e}")),
    )
}

/// The `VS2_PROPTEST_SEED` single-case seed, when set. Accepts `0x`-hex
/// or decimal.
fn env_seed() -> Option<u64> {
    let raw = std::env::var("VS2_PROPTEST_SEED").ok()?;
    let t = raw.trim();
    let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => t.parse(),
    };
    Some(parsed.unwrap_or_else(|e| panic!("VS2_PROPTEST_SEED `{raw}` is not a seed: {e}")))
}

/// The seed of case `index` of the property labelled `label` — the value
/// the runner would hand that case. Exposed for replay tooling and the
/// shim's own tests.
pub fn nth_case_seed(label: &str, index: u32) -> u64 {
    let mut master = TestRng::from_label(label);
    let mut seed = master.next_seed();
    for _ in 0..index {
        seed = master.next_seed();
    }
    seed
}

/// Drives one property: generates per-case seeds from a master stream
/// keyed by `label`, runs `case` under `catch_unwind`, and on failure
/// prints the label, case index, seed, and a one-command repro before
/// re-raising the panic. Honours `VS2_PROPTEST_CASES` (cap) and
/// `VS2_PROPTEST_SEED` (single-case replay). The [`proptest!`] macro
/// expands to a call of this function.
pub fn run_property<F>(label: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng),
{
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    let test = label.rsplit("::").next().unwrap_or(label);
    if let Some(seed) = env_seed() {
        let mut rng = TestRng::from_seed(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
            eprintln!("proptest: property `{label}` failed replaying seed 0x{seed:016x}");
            resume_unwind(payload);
        }
        return;
    }
    let cases = env_cases().map_or(config.cases, |cap| config.cases.min(cap));
    let mut master = TestRng::from_label(label);
    for index in 0..cases {
        let seed = master.next_seed();
        let mut rng = TestRng::from_seed(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
            eprintln!(
                "proptest: property `{label}` failed at case {index}/{cases} \
                 (seed 0x{seed:016x})"
            );
            eprintln!(
                "proptest: reproduce with: VS2_PROPTEST_SEED=0x{seed:016x} cargo test {test}"
            );
            resume_unwind(payload);
        }
    }
}

/// Asserts a property-test condition, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Builds a [`Union`] over the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares deterministic property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of `#[test] fn name(x in
/// strategy, ..) { body }` items, mirroring upstream `proptest!` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        // `$meta` captures every attribute on the property, `#[test]`
        // included (doc comments may precede it), and re-emits them all.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let label = concat!(module_path!(), "::", stringify!($name));
            $crate::run_property(label, &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&$strategy, rng);)+
                $body
            });
        }
    )*};
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_lite_shapes() {
        let mut rng = crate::TestRng::from_label("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,10}", &mut rng);
            assert!((1..=10).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let t = Strategy::generate(&"\\PC{0,200}", &mut rng);
            assert!(t.chars().count() <= 200);
            assert!(t.chars().all(|c| !c.is_control()), "{t:?}");

            let u = Strategy::generate(&"x[0-9]{2}", &mut rng);
            assert_eq!(u.len(), 3);
            assert!(u.starts_with('x'));
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::from_label("same");
        let mut b = crate::TestRng::from_label("same");
        for _ in 0..50 {
            assert_eq!(
                Strategy::generate(&(0u64..1000), &mut a),
                Strategy::generate(&(0u64..1000), &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn macro_binds_arguments(x in 0u32..10, v in crate::collection::vec(0.0..1.0f64, 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|f| (0.0..1.0).contains(f)));
        }

        #[test]
        fn oneof_and_map_compose(s in prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 10)) {
            prop_assert!(s == 10 || s == 20);
        }
    }

    #[test]
    fn failing_case_is_reproducible_from_its_seed() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let label = "shim-test::boom";
        let mut values: Vec<u32> = Vec::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            crate::run_property(label, &ProptestConfig::with_cases(10), |rng| {
                let v = Strategy::generate(&(0u32..1_000_000), rng);
                values.push(v);
                assert!(values.len() < 4, "fourth case fails by construction");
            });
        }));
        assert!(outcome.is_err(), "property should have failed");
        assert_eq!(values.len(), 4, "runner should stop at the failing case");
        // Replaying the reported seed regenerates the exact failing value.
        let seed = crate::nth_case_seed(label, 3);
        let mut rng = crate::TestRng::from_seed(seed);
        assert_eq!(Strategy::generate(&(0u32..1_000_000), &mut rng), values[3]);
    }

    #[test]
    fn case_seeds_are_deterministic_per_label() {
        let a: Vec<u64> = (0..5).map(|i| crate::nth_case_seed("lbl", i)).collect();
        let b: Vec<u64> = (0..5).map(|i| crate::nth_case_seed("lbl", i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "case seeds should differ");
        assert_ne!(crate::nth_case_seed("other", 0), a[0]);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(3, 12, 3, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(T::Node)
        });
        let mut rng = crate::TestRng::from_label("rec");
        let mut saw_node = false;
        for _ in 0..100 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, T::Node(_));
        }
        assert!(saw_node, "recursion never fired");
    }
}
