//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no network access, so the workspace ships a
//! small wall-clock harness with the upstream API subset its benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. It reports
//! min/median/mean per benchmark instead of criterion's full statistics.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            eprintln!("{}/{}: no samples", self.name, id.id);
            return;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        eprintln!(
            "{}/{}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples)",
            self.name,
            id.id,
            samples.len()
        );
    }

    /// Finishes the group (boundary marker; no-op beyond symmetry with
    /// upstream).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up execution.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("square", |b| b.iter(|| black_box(7u64).pow(2)));
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, n| {
            b.iter(|| black_box(*n) * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
