//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no network access, so the workspace ships a
//! minimal self-describing data model instead of the real serde:
//!
//! * [`Value`] — a JSON-shaped tree (null / bool / int / float / string /
//!   array / ordered object).
//! * [`Serialize`] / [`Deserialize`] — conversion to and from [`Value`].
//! * [`impl_serde_struct!`] / [`impl_serde_unit_enum!`] — macro
//!   replacements for `#[derive(Serialize, Deserialize)]` on structs with
//!   named fields and on field-less enums.
//!
//! The `serde_json` shim crate layers JSON text on top of this model.
//! Object keys keep insertion order so serialized output is deterministic.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing value: the interchange format between [`Serialize`]
/// and concrete encodings (JSON via the `serde_json` shim).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (covers i64; u64 above `i64::MAX` uses [`Value::UInt`]).
    Int(i64),
    /// Unsigned integer above `i64::MAX` (e.g. random 64-bit ids).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Deserializes the field `key` of an object value.
    pub fn field<T: Deserialize>(&self, key: &str) -> Result<T, Error> {
        match self.get(key) {
            Some(v) => T::from_value(v).map_err(|e| Error::new(format!("field `{key}`: {e}"))),
            None => Err(Error::new(format!("missing field `{key}`"))),
        }
    }

    /// Deserializes the field `key`, falling back to `default` when absent.
    pub fn field_or<T: Deserialize>(&self, key: &str, default: T) -> Result<T, Error> {
        match self.get(key) {
            Some(v) => T::from_value(v).map_err(|e| Error::new(format!("field `{key}`: {e}"))),
            None => Ok(default),
        }
    }

    /// The value as an `f64` when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the self-describing [`Value`] model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the self-describing [`Value`] model.
pub trait Deserialize: Sized {
    /// Deserializes from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| Error::new("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => f as i64,
                    ref other => return Err(Error::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(wide).map_err(|_| Error::new("integer out of range"))
            }
        }
    )+};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: u64 = match *v {
                    Value::Int(i) => u64::try_from(i)
                        .map_err(|_| Error::new("negative integer for unsigned field"))?,
                    Value::UInt(u) => u,
                    Value::Float(f) if f.fract() == 0.0 && (0.0..1.9e19).contains(&f) => f as u64,
                    ref other => return Err(Error::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(wide).map_err(|_| Error::new("integer out of range"))
            }
        }
    )+};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::new(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::new(format!(
                                "expected {expected}-tuple, got {} items", items.len())));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::new(format!("expected array, got {other:?}"))),
                }
            }
        }
    )+};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Implements [`Serialize`] and [`Deserialize`] for a struct with named
/// fields, mirroring what `#[derive(Serialize, Deserialize)]` would do:
///
/// ```
/// #[derive(PartialEq, Debug)]
/// struct P { x: f64, y: f64 }
/// serde::impl_serde_struct!(P { x, y });
/// let v = serde::Serialize::to_value(&P { x: 1.0, y: 2.0 });
/// let back: P = serde::Deserialize::from_value(&v).unwrap();
/// assert_eq!(back, P { x: 1.0, y: 2.0 });
/// ```
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_string(),
                       $crate::Serialize::to_value(&self.$field)),)+
                ])
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                Ok(Self {
                    $($field: v.field(stringify!($field))?,)+
                })
            }
        }
    };
}

/// Implements [`Serialize`] and [`Deserialize`] for a field-less enum,
/// encoding variants as their name string.
#[macro_export]
macro_rules! impl_serde_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                let name = match self {
                    $(Self::$variant => stringify!($variant),)+
                };
                $crate::Value::Str(name.to_string())
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                match v {
                    $crate::Value::Str(s) => match s.as_str() {
                        $(stringify!($variant) => Ok(Self::$variant),)+
                        other => Err($crate::Error::new(format!(
                            concat!("unknown ", stringify!($ty), " variant `{}`"), other))),
                    },
                    other => Err($crate::Error::new(format!(
                        "expected string, got {other:?}"))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Demo {
        name: String,
        count: u64,
        ratio: f64,
        tags: Vec<String>,
        maybe: Option<i32>,
    }

    impl_serde_struct!(Demo {
        name,
        count,
        ratio,
        tags,
        maybe
    });

    #[derive(Debug, PartialEq)]
    enum Mode {
        Fast,
        Slow,
    }

    impl_serde_unit_enum!(Mode { Fast, Slow });

    #[test]
    fn struct_round_trip() {
        let d = Demo {
            name: "x".into(),
            count: u64::MAX,
            ratio: -1.5,
            tags: vec!["a".into(), "b".into()],
            maybe: None,
        };
        let back = Demo::from_value(&d.to_value()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn enum_round_trip_and_errors() {
        assert_eq!(Mode::from_value(&Mode::Fast.to_value()), Ok(Mode::Fast));
        assert!(Mode::from_value(&Value::Str("Nope".into())).is_err());
        assert!(Mode::from_value(&Value::Int(3)).is_err());
    }

    #[test]
    fn missing_field_is_an_error_with_context() {
        let v = Value::Object(vec![("name".into(), Value::Str("x".into()))]);
        let err = Demo::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("count"), "{err}");
    }

    #[test]
    fn field_or_defaults() {
        let v = Value::Object(vec![]);
        assert_eq!(v.field_or("missing", 7i64).unwrap(), 7);
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX - 3;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), big);
    }
}
