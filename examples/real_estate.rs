//! Extraction over the synthetic real-estate flyer dataset (the paper's
//! D3 workload), including a comparison against the text-only baseline
//! on the same documents — the experiment behind Table 8's ΔF1 column.
//!
//! ```sh
//! cargo run -p vs2-core --example real_estate
//! ```

use vs2_baselines::{Extractor, TextOnlyExtractor};
use vs2_core::pipeline::{Vs2Config, Vs2Pipeline};
use vs2_eval::{evaluate_end_to_end, ExtractionItem, PrCounts};
use vs2_synth::{generate, holdout_corpus, DatasetConfig, DatasetId};

fn score<E: Extractor>(extractor: &E, docs: &[vs2_docmodel::AnnotatedDocument]) -> PrCounts {
    let mut counts = PrCounts::default();
    for ad in docs {
        let preds: Vec<ExtractionItem> = extractor
            .extract(&ad.doc)
            .into_iter()
            .map(|p| ExtractionItem::new(p.entity, p.bbox, p.text))
            .collect();
        let truth: Vec<ExtractionItem> = ad
            .annotations
            .iter()
            .map(|a| ExtractionItem::new(a.entity.clone(), a.bbox, a.text.clone()))
            .collect();
        counts.add(&evaluate_end_to_end(&preds, &truth));
    }
    counts
}

/// Thin wrapper exposing the VS2 pipeline through the `Extractor` trait.
struct Vs2 {
    pipeline: Vs2Pipeline,
}

impl Extractor for Vs2 {
    fn name(&self) -> &'static str {
        "VS2"
    }
    fn extract(&self, doc: &vs2_docmodel::Document) -> Vec<vs2_baselines::Prediction> {
        self.pipeline
            .extract(doc)
            .into_iter()
            .map(|e| vs2_baselines::Prediction {
                entity: e.entity,
                text: e.text,
                bbox: e.span_bbox,
            })
            .collect()
    }
}

fn main() {
    let corpus = holdout_corpus(DatasetId::D3, 42);
    let entries: Vec<(&str, &str, &str)> = corpus
        .entries
        .iter()
        .map(|e| (e.entity.as_str(), e.text.as_str(), e.context.as_str()))
        .collect();
    let pipeline = Vs2Pipeline::learn(entries, Vs2Config::default());

    let docs = generate(DatasetId::D3, DatasetConfig::new(30, 42));

    // Show one flyer's extractions in full.
    let ad = &docs[0];
    println!("=== {} ===", ad.doc.id);
    for e in pipeline.extract(&ad.doc) {
        println!("  {:22} {}", e.entity, e.text);
    }

    // Aggregate comparison against the text-only baseline.
    let vs2 = Vs2 {
        pipeline: pipeline.clone(),
    };
    let text_only = TextOnlyExtractor::new(pipeline);
    let ours = score(&vs2, &docs);
    let base = score(&text_only, &docs);
    println!(
        "\nVS2:       P {:.1}%  R {:.1}%  F1 {:.1}%",
        100.0 * ours.precision(),
        100.0 * ours.recall(),
        100.0 * ours.f1()
    );
    println!(
        "text-only: P {:.1}%  R {:.1}%  F1 {:.1}%",
        100.0 * base.precision(),
        100.0 * base.recall(),
        100.0 * base.f1()
    );
    println!(
        "dF1: {:+.1} percentage points",
        100.0 * (ours.f1() - base.f1())
    );
}
