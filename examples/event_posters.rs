//! End-to-end extraction over the synthetic event-poster dataset (the
//! paper's D2 workload from Example 1.1: Alice surveying local events).
//!
//! ```sh
//! cargo run -p vs2-core --example event_posters
//! ```

use vs2_core::pipeline::{Vs2Config, Vs2Pipeline};
use vs2_core::select::Eq2Weights;
use vs2_synth::{generate, holdout_corpus, DatasetConfig, DatasetId};

fn main() {
    // Build the distant-supervision corpus (the allevents.in / dl.acm.org
    // analogue of the paper's Table 2) and learn the patterns.
    let corpus = holdout_corpus(DatasetId::D2, 42);
    let entries: Vec<(&str, &str, &str)> = corpus
        .entries
        .iter()
        .map(|e| (e.entity.as_str(), e.text.as_str(), e.context.as_str()))
        .collect();
    let config = Vs2Config {
        // Posters are visually ornate but not verbose (§5.3.2).
        weights: Eq2Weights::visual_heavy(),
        ..Vs2Config::default()
    };
    let pipeline = Vs2Pipeline::learn(entries, config);

    // Generate a handful of posters (mobile captures + digital PDFs,
    // with OCR noise applied) and extract all five Table 3 entities.
    let docs = generate(DatasetId::D2, DatasetConfig::new(5, 42));
    for ad in &docs {
        println!("=== {} ===", ad.doc.id);
        let mut extractions = pipeline.extract(&ad.doc);
        extractions.sort_by(|a, b| a.entity.cmp(&b.entity));
        for e in &extractions {
            let truth = ad
                .annotations
                .iter()
                .find(|a| a.entity == e.entity)
                .map(|a| a.text.as_str())
                .unwrap_or("-");
            let mark = if vs2_eval::texts_match(&e.text, truth) {
                "ok  "
            } else {
                "MISS"
            };
            println!("  [{mark}] {:18} {:40} (truth: {truth})", e.entity, e.text);
        }
        println!();
    }
}
