//! Quickstart: build a tiny visually rich document by hand, learn
//! patterns from a minimal holdout corpus, and extract an entity.
//!
//! ```sh
//! cargo run -p vs2-core --example quickstart
//! ```

use vs2_core::pipeline::{Vs2Config, Vs2Pipeline};
use vs2_core::segment::{logical_blocks, SegmentConfig};
use vs2_docmodel::{BBox, Document, TextElement};

fn main() {
    // 1. A miniature "poster": a big title, an organiser line, and a
    //    low-salience sponsor credit that also looks like an organiser.
    let mut doc = Document::new("quickstart", 400.0, 400.0);
    for (i, w) in ["Grand", "Jazz", "Festival"].iter().enumerate() {
        doc.push_text(TextElement::word(
            *w,
            BBox::new(40.0 + 110.0 * i as f64, 20.0, 100.0, 34.0),
        ));
    }
    for (i, w) in ["Hosted", "by", "James", "Wilson"].iter().enumerate() {
        doc.push_text(TextElement::word(
            *w,
            BBox::new(60.0 + 70.0 * i as f64, 80.0, 60.0, 13.0),
        ));
    }
    for (i, w) in ["Sponsored", "by", "Acme", "Partners"].iter().enumerate() {
        doc.push_text(TextElement::word(
            *w,
            BBox::new(60.0 + 55.0 * i as f64, 370.0, 50.0, 8.0),
        ));
    }

    // 2. VS2-Segment: decompose the page into logical blocks.
    let blocks = logical_blocks(&doc, &SegmentConfig::default());
    println!("logical blocks:");
    for b in &blocks {
        println!(
            "  ({:>3.0},{:>3.0},{:>3.0},{:>3.0})  {}",
            b.bbox.x,
            b.bbox.y,
            b.bbox.w,
            b.bbox.h,
            doc.transcribe(&b.elements)
        );
    }

    // 3. Distant supervision: a few holdout entries teach the pipeline
    //    what an "organizer" looks like (entity, text, context).
    let holdout = vec![
        ("organizer", "Mary Davis", "hosted by Mary Davis"),
        ("organizer", "Robert Brown", "hosted by Robert Brown"),
        ("organizer", "Linda Garcia", "organized by Linda Garcia"),
    ];
    let pipeline = Vs2Pipeline::learn(holdout, Vs2Config::default());
    println!("\nlearned patterns: {:?}", pipeline.patterns()["organizer"]);

    // 4. Extract. Both "James Wilson" and "Acme Partners" match a person/
    //    organisation pattern; the multimodal disambiguation (Eq. 2)
    //    prefers the candidate near the interest point (the hero title).
    let extraction = pipeline
        .extract(&doc)
        .into_iter()
        .find(|e| e.entity == "organizer")
        .expect("organizer found");
    println!("\nextracted organizer: {:?}", extraction.text);
    assert!(extraction.text.contains("James"));
}
