//! Form-field extraction over the synthetic NIST-style tax forms (the
//! paper's D1 workload): exact descriptor matching within logical blocks
//! recovers each field's filled value.
//!
//! ```sh
//! cargo run -p vs2-core --example tax_forms
//! ```

use vs2_core::pipeline::{Vs2Config, Vs2Pipeline};
use vs2_synth::{generate, holdout_corpus, DatasetConfig, DatasetId};

fn main() {
    // D1's holdout corpus is the descriptor table: one (entity, field
    // descriptor) pair per form field, compiled to exact-phrase patterns.
    let corpus = holdout_corpus(DatasetId::D1, 42);
    println!(
        "descriptor table: {} fields across {} form faces",
        corpus.len(),
        vs2_synth::tax::FACES
    );
    let entries: Vec<(&str, &str, &str)> = corpus
        .entries
        .iter()
        .map(|e| (e.entity.as_str(), e.text.as_str(), e.context.as_str()))
        .collect();
    let pipeline = Vs2Pipeline::learn(entries, Vs2Config::default());

    // Extract the values of one scanned (skewed, lightly noisy) form.
    let docs = generate(DatasetId::D1, DatasetConfig::new(1, 42));
    let ad = &docs[0];
    println!("\n=== {} ===", ad.doc.id);
    let mut correct = 0;
    let mut shown = 0;
    for e in pipeline.extract(&ad.doc) {
        let Some(truth) = ad.annotations.iter().find(|a| a.entity == e.entity) else {
            continue; // field belongs to a different form face
        };
        let ok = vs2_eval::texts_match(&e.text, &truth.text);
        if ok {
            correct += 1;
        }
        if shown < 10 {
            shown += 1;
            println!(
                "  [{}] {:14} -> {:20} (truth: {})",
                if ok { "ok  " } else { "MISS" },
                e.entity,
                e.text,
                truth.text
            );
        }
    }
    println!(
        "\n{} of {} fields extracted correctly on this form",
        correct,
        ad.annotations.len()
    );
}
