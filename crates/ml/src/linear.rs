//! Linear binary classifiers: logistic regression (SGD) and a Pegasos
//! linear SVM.
//!
//! Stand-ins for the learned baselines of §6.4: Zhou et al.'s supervised
//! ML extractor (logistic regression here) and Apostolova et al.'s SVM on
//! visual + textual features (the Pegasos SVM here). Both train on hashed
//! sparse features and are fully deterministic given a seed.

use crate::features::{Example, SparseVec};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A trained linear decision function `w·x + b`.
#[derive(Debug, Clone)]
pub struct LinearModel {
    /// Dense weights, indexed by hashed feature bucket.
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
}

impl LinearModel {
    /// Raw decision value.
    pub fn decision(&self, x: &SparseVec) -> f64 {
        x.dot(&self.weights) + self.bias
    }

    /// Predicted label.
    pub fn predict(&self, x: &SparseVec) -> bool {
        self.decision(x) > 0.0
    }

    /// Probability under the logistic link (meaningful for logistic
    /// regression; a monotone score for the SVM).
    pub fn probability(&self, x: &SparseVec) -> f64 {
        1.0 / (1.0 + (-self.decision(x)).exp())
    }
}

/// Training hyper-parameters shared by both trainers.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Dense dimensionality (must cover the feature hasher's `dims`).
    pub dims: u32,
    /// Number of passes over the shuffled data.
    pub epochs: usize,
    /// Base learning rate (logistic) / inverse-regularisation (SVM λ).
    pub rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            dims: 1 << 14,
            epochs: 20,
            rate: 0.1,
            l2: 1e-4,
            seed: 7,
        }
    }
}

/// Trains logistic regression with plain SGD.
pub fn train_logistic(examples: &[Example], config: TrainConfig) -> LinearModel {
    let mut w = vec![0.0; config.dims as usize];
    let mut b = 0.0;
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut t = 0usize;
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        for &i in &order {
            t += 1;
            let lr = config.rate / (1.0 + config.rate * config.l2 * t as f64);
            let ex = &examples[i];
            let y = if ex.label { 1.0 } else { 0.0 };
            let p = 1.0 / (1.0 + (-(ex.features.dot(&w) + b)).exp());
            let g = p - y;
            for &(idx, v) in ex.features.pairs() {
                let wi = &mut w[idx as usize];
                *wi -= lr * (g * v + config.l2 * *wi);
            }
            b -= lr * g;
        }
    }
    LinearModel {
        weights: w,
        bias: b,
    }
}

/// Trains a linear SVM with the Pegasos sub-gradient method.
pub fn train_svm(examples: &[Example], config: TrainConfig) -> LinearModel {
    let lambda = config.l2.max(1e-8);
    let mut w = vec![0.0; config.dims as usize];
    let mut b = 0.0;
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut t = 1usize;
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        for &i in &order {
            // Cap the Pegasos step: 1/(λt) is enormous for small t and
            // destabilises the bias; capping preserves convergence.
            let eta = (1.0 / (lambda * t as f64)).min(1.0);
            let ex = &examples[i];
            let y = if ex.label { 1.0 } else { -1.0 };
            let margin = y * (ex.features.dot(&w) + b);
            // w ← (1 − ηλ)w [+ ηy x if margin < 1]
            let scale = 1.0 - eta * lambda;
            if scale > 0.0 {
                for wi in w.iter_mut() {
                    *wi *= scale;
                }
            }
            if margin < 1.0 {
                for &(idx, v) in ex.features.pairs() {
                    w[idx as usize] += eta * y * v;
                }
                b += eta * y;
            }
            t += 1;
        }
    }
    LinearModel {
        weights: w,
        bias: b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureHasher;

    fn toy_data() -> (Vec<Example>, FeatureHasher) {
        // Positive: has "broker" and "phone"; negative: has "concert".
        let h = FeatureHasher::new(256);
        let mut data = Vec::new();
        for i in 0..40 {
            let extra = format!("noise{}", i % 7);
            data.push(Example {
                features: h.vectorize(vec![("broker", 1.0), ("phone", 1.0), (extra.as_str(), 1.0)]),
                label: true,
            });
            data.push(Example {
                features: h.vectorize(vec![
                    ("concert", 1.0),
                    ("stage", 1.0),
                    (extra.as_str(), 1.0),
                ]),
                label: false,
            });
        }
        (data, h)
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            dims: 256,
            epochs: 30,
            rate: 0.5,
            l2: 1e-4,
            seed: 42,
        }
    }

    #[test]
    fn logistic_separates_toy_data() {
        let (data, h) = toy_data();
        let m = train_logistic(&data, cfg());
        let pos = h.vectorize(vec![("broker", 1.0), ("phone", 1.0)]);
        let neg = h.vectorize(vec![("concert", 1.0), ("stage", 1.0)]);
        assert!(m.predict(&pos));
        assert!(!m.predict(&neg));
        assert!(m.probability(&pos) > 0.8);
        assert!(m.probability(&neg) < 0.2);
    }

    #[test]
    fn svm_separates_toy_data() {
        let (data, h) = toy_data();
        let m = train_svm(&data, cfg());
        let pos = h.vectorize(vec![("broker", 1.0), ("phone", 1.0)]);
        let neg = h.vectorize(vec![("concert", 1.0), ("stage", 1.0)]);
        assert!(m.decision(&pos) > m.decision(&neg));
        assert!(m.predict(&pos));
        assert!(!m.predict(&neg));
    }

    #[test]
    fn training_is_deterministic() {
        let (data, _) = toy_data();
        let a = train_logistic(&data, cfg());
        let b = train_logistic(&data, cfg());
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.bias, b.bias);
    }

    #[test]
    fn empty_training_set_yields_zero_model() {
        let m = train_logistic(&[], cfg());
        assert!(m.weights.iter().all(|w| *w == 0.0));
        let m = train_svm(&[], cfg());
        assert!(m.weights.iter().all(|w| *w == 0.0));
    }

    #[test]
    fn probability_is_monotone_in_decision() {
        let (data, h) = toy_data();
        let m = train_logistic(&data, cfg());
        let strong = h.vectorize(vec![("broker", 2.0), ("phone", 2.0)]);
        let weak = h.vectorize(vec![("broker", 0.5)]);
        assert!(m.probability(&strong) > m.probability(&weak));
    }
}
