//! Sparse feature vectors and feature hashing.
//!
//! The supervised baselines of the paper (Zhou et al.'s ML extractor and
//! Apostolova et al.'s SVM) train on bags of textual and visual features.
//! Feature hashing keeps the reproduction's models dependency-free and
//! deterministic.

/// A sparse feature vector: `(index, value)` pairs sorted by index with no
/// duplicates (duplicate contributions are summed at construction).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVec(Vec<(u32, f64)>);

impl SparseVec {
    /// Builds a vector from unsorted, possibly duplicated pairs.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_unstable_by_key(|(i, _)| *i);
        let mut out: Vec<(u32, f64)> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            match out.last_mut() {
                Some((li, lv)) if *li == i => *lv += v,
                _ => out.push((i, v)),
            }
        }
        out.retain(|(_, v)| *v != 0.0);
        Self(out)
    }

    /// The underlying pairs.
    pub fn pairs(&self) -> &[(u32, f64)] {
        &self.0
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.0.len()
    }

    /// Dot product with a dense weight vector (indices beyond the dense
    /// length contribute nothing).
    pub fn dot(&self, dense: &[f64]) -> f64 {
        self.0
            .iter()
            .filter(|(i, _)| (*i as usize) < dense.len())
            .map(|(i, v)| dense[*i as usize] * v)
            .sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f64 {
        self.0.iter().map(|(_, v)| v * v).sum::<f64>().sqrt()
    }
}

/// Hashes named features into a fixed index space.
#[derive(Debug, Clone, Copy)]
pub struct FeatureHasher {
    /// Number of hash buckets (the dense dimensionality).
    pub dims: u32,
}

impl FeatureHasher {
    /// Creates a hasher with `dims` buckets.
    pub fn new(dims: u32) -> Self {
        assert!(dims > 0, "dims must be positive");
        Self { dims }
    }

    /// Bucket of a feature name (FNV-1a).
    pub fn index(&self, name: &str) -> u32 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % self.dims as u64) as u32
    }

    /// Hashes `(name, value)` features into a sparse vector.
    pub fn vectorize<'a, I: IntoIterator<Item = (&'a str, f64)>>(&self, feats: I) -> SparseVec {
        SparseVec::from_pairs(feats.into_iter().map(|(n, v)| (self.index(n), v)).collect())
    }
}

/// A labelled training example for binary classifiers.
#[derive(Debug, Clone)]
pub struct Example {
    /// Feature vector.
    pub features: SparseVec,
    /// Binary label.
    pub label: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = SparseVec::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(v.pairs(), &[(1, 2.0), (3, 1.5)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn zero_values_are_dropped() {
        let v = SparseVec::from_pairs(vec![(1, 1.0), (1, -1.0), (2, 3.0)]);
        assert_eq!(v.pairs(), &[(2, 3.0)]);
    }

    #[test]
    fn dot_product() {
        let v = SparseVec::from_pairs(vec![(0, 2.0), (2, 3.0)]);
        let dense = vec![1.0, 10.0, 0.5];
        assert_eq!(v.dot(&dense), 3.5);
        // Out-of-range indices are ignored.
        let big = SparseVec::from_pairs(vec![(100, 1.0)]);
        assert_eq!(big.dot(&dense), 0.0);
    }

    #[test]
    fn norm() {
        let v = SparseVec::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        assert_eq!(v.norm(), 5.0);
    }

    #[test]
    fn hasher_is_deterministic_and_bounded() {
        let h = FeatureHasher::new(64);
        assert_eq!(h.index("word=concert"), h.index("word=concert"));
        for name in ["a", "b", "font_size", "word=broker"] {
            assert!(h.index(name) < 64);
        }
    }

    #[test]
    fn vectorize_merges_collisions() {
        let h = FeatureHasher::new(2);
        let v = h.vectorize(vec![("a", 1.0), ("b", 1.0), ("c", 1.0)]);
        // With 2 buckets some features must collide; total mass preserved.
        let total: f64 = v.pairs().iter().map(|(_, x)| x).sum();
        assert_eq!(total, 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panics() {
        FeatureHasher::new(0);
    }
}
