//! # vs2-ml
//!
//! Minimal deterministic machine-learning substrate for the learned
//! baselines of the VS2 reproduction (§6.4 of the paper): feature hashing,
//! logistic regression (for the Zhou-et-al-style ML extractor), a Pegasos
//! linear SVM (for the Apostolova-et-al-style visual+textual classifier),
//! and Bernoulli naive Bayes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod linear;
pub mod nb;

pub use features::{Example, FeatureHasher, SparseVec};
pub use linear::{train_logistic, train_svm, LinearModel, TrainConfig};
pub use nb::NaiveBayes;

#[cfg(test)]
mod proptests {
    use crate::features::SparseVec;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn from_pairs_is_sorted_and_unique(pairs in proptest::collection::vec((0u32..64, -5.0..5.0f64), 0..40)) {
            let v = SparseVec::from_pairs(pairs);
            let idx: Vec<u32> = v.pairs().iter().map(|(i, _)| *i).collect();
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(idx, sorted);
            prop_assert!(v.pairs().iter().all(|(_, x)| *x != 0.0));
        }

        #[test]
        fn dot_is_linear_in_scaling(pairs in proptest::collection::vec((0u32..16, -3.0..3.0f64), 1..10), k in -3.0..3.0f64) {
            let v = SparseVec::from_pairs(pairs.clone());
            let scaled = SparseVec::from_pairs(pairs.iter().map(|(i, x)| (*i, x * k)).collect());
            let dense: Vec<f64> = (0..16).map(|i| i as f64 * 0.5 - 2.0).collect();
            prop_assert!((scaled.dot(&dense) - k * v.dot(&dense)).abs() < 1e-9);
        }
    }
}
