//! Bernoulli naive Bayes.
//!
//! A lightweight probabilistic alternative to the linear models; used by
//! ablation variants of the learned baselines and handy as a calibration
//! reference in benches.

use crate::features::{Example, SparseVec};
use std::collections::HashMap;

/// A trained Bernoulli naive-Bayes model over hashed feature presence.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    log_prior_pos: f64,
    log_prior_neg: f64,
    /// Per-feature log-likelihood ratios for presence.
    feature_llr: HashMap<u32, (f64, f64)>,
    default_pos: f64,
    default_neg: f64,
}

impl NaiveBayes {
    /// Trains with Laplace smoothing.
    pub fn train(examples: &[Example]) -> Self {
        let n_pos = examples.iter().filter(|e| e.label).count();
        let n_neg = examples.len() - n_pos;
        let mut counts: HashMap<u32, (usize, usize)> = HashMap::new();
        for ex in examples {
            for &(i, v) in ex.features.pairs() {
                if v != 0.0 {
                    let c = counts.entry(i).or_insert((0, 0));
                    if ex.label {
                        c.0 += 1;
                    } else {
                        c.1 += 1;
                    }
                }
            }
        }
        let denom_pos = (n_pos + 2) as f64;
        let denom_neg = (n_neg + 2) as f64;
        let feature_llr = counts
            .into_iter()
            .map(|(i, (cp, cn))| {
                let lp = ((cp + 1) as f64 / denom_pos).ln();
                let ln = ((cn + 1) as f64 / denom_neg).ln();
                (i, (lp, ln))
            })
            .collect();
        let total = (examples.len().max(1)) as f64;
        Self {
            log_prior_pos: ((n_pos.max(1)) as f64 / total).ln(),
            log_prior_neg: ((n_neg.max(1)) as f64 / total).ln(),
            feature_llr,
            default_pos: (1.0 / denom_pos).ln(),
            default_neg: (1.0 / denom_neg).ln(),
        }
    }

    /// Log-odds of the positive class.
    pub fn log_odds(&self, x: &SparseVec) -> f64 {
        let mut pos = self.log_prior_pos;
        let mut neg = self.log_prior_neg;
        for &(i, v) in x.pairs() {
            if v == 0.0 {
                continue;
            }
            let (lp, ln) = self
                .feature_llr
                .get(&i)
                .copied()
                .unwrap_or((self.default_pos, self.default_neg));
            pos += lp;
            neg += ln;
        }
        pos - neg
    }

    /// Predicted label.
    pub fn predict(&self, x: &SparseVec) -> bool {
        self.log_odds(x) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureHasher;

    #[test]
    fn separates_obvious_classes() {
        // 4096 buckets: the test words must not collide ("acres" and
        // "concert" collide at 128).
        let h = FeatureHasher::new(4096);
        let mut data = Vec::new();
        for _ in 0..20 {
            data.push(Example {
                features: h.vectorize(vec![("acres", 1.0), ("broker", 1.0)]),
                label: true,
            });
            data.push(Example {
                features: h.vectorize(vec![("concert", 1.0), ("tickets", 1.0)]),
                label: false,
            });
        }
        let m = NaiveBayes::train(&data);
        assert!(m.predict(&h.vectorize(vec![("acres", 1.0)])));
        assert!(!m.predict(&h.vectorize(vec![("tickets", 1.0)])));
    }

    #[test]
    fn unseen_features_fall_back_to_smoothing() {
        let h = FeatureHasher::new(128);
        let data = vec![
            Example {
                features: h.vectorize(vec![("a", 1.0)]),
                label: true,
            },
            Example {
                features: h.vectorize(vec![("b", 1.0)]),
                label: false,
            },
        ];
        let m = NaiveBayes::train(&data);
        // A vector of only unseen features decides by prior (balanced here),
        // and must not panic.
        let _ = m.predict(&h.vectorize(vec![("zzz", 1.0)]));
    }

    #[test]
    fn skewed_priors_matter() {
        let h = FeatureHasher::new(128);
        let mut data = Vec::new();
        for _ in 0..30 {
            data.push(Example {
                features: h.vectorize(vec![("x", 1.0)]),
                label: true,
            });
        }
        data.push(Example {
            features: h.vectorize(vec![("x", 1.0)]),
            label: false,
        });
        let m = NaiveBayes::train(&data);
        assert!(m.log_odds(&h.vectorize(vec![("x", 1.0)])) > 0.0);
    }

    #[test]
    fn empty_training_does_not_panic() {
        let m = NaiveBayes::train(&[]);
        let h = FeatureHasher::new(8);
        let _ = m.predict(&h.vectorize(vec![("a", 1.0)]));
    }
}
