//! Word embeddings and cosine similarity.
//!
//! The paper uses "a pre-trained Word2Vec embedding to compute the cosine
//! similarities" of the semantic-merging step (Eq. 1) and of the
//! interest-point / disambiguation objectives. A pre-trained model is not
//! shippable here, so two substitutes are provided (see DESIGN.md):
//!
//! * [`LexiconEmbedding`] — deterministic vectors where words of the same
//!   lexicon [`Topic`](crate::lexicon::Topic) share a topic centroid, so
//!   "same semantic field ⇒ high cosine" holds by construction. This is
//!   the default embedder of the reproduction.
//! * [`TrainedEmbedding`] — a PPMI + orthogonal-iteration factorisation
//!   trained on a corpus (the holdout corpus in practice), demonstrating
//!   the full learn-from-text path.

use crate::lexicon::{self, Topic, ALL_TOPICS};
use std::collections::HashMap;

/// Embedding dimensionality.
pub const DIM: usize = 32;

/// A dense embedding vector.
pub type Vector = [f64; DIM];

/// Anything that can map a word to a vector.
pub trait Embedder {
    /// Embeds a single (lower-cased) word.
    fn embed(&self, word: &str) -> Vector;

    /// Embeds a bag of words as the L2-normalised mean of the word
    /// vectors; the zero vector for an empty bag.
    fn embed_text<'a, I: IntoIterator<Item = &'a str>>(&self, words: I) -> Vector
    where
        Self: Sized,
    {
        let mut acc = [0.0; DIM];
        let mut n = 0usize;
        for w in words {
            let v = self.embed(w);
            for i in 0..DIM {
                acc[i] += v[i];
            }
            n += 1;
        }
        if n == 0 {
            return acc;
        }
        normalize(&mut acc);
        acc
    }
}

/// Cosine similarity of two vectors; 0 when either is the zero vector.
pub fn cosine(a: &Vector, b: &Vector) -> f64 {
    let (mut dot, mut na, mut nb) = (0.0, 0.0, 0.0);
    for i in 0..DIM {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    if na <= 0.0 || nb <= 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

fn normalize(v: &mut Vector) {
    let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

/// SplitMix64 — deterministic pseudo-random stream for hash vectors.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deterministic unit vector derived from a seed.
fn hash_vector(seed: u64) -> Vector {
    let mut state = seed;
    let mut v = [0.0; DIM];
    for x in v.iter_mut() {
        // Map to [-1, 1).
        *x = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0;
    }
    normalize(&mut v);
    v
}

/// The default embedder: topic centroid blended with per-word noise.
///
/// Words sharing a lexicon topic get cosine ≈ `1 - 2·MIX` with each other
/// and ≈ 0 with other topics (random 32-dimensional centroids are nearly
/// orthogonal). Out-of-lexicon words embed as pure hash noise. Numeric
/// tokens share a dedicated pseudo-topic so digit strings cluster.
#[derive(Debug, Clone, Copy, Default)]
pub struct LexiconEmbedding;

/// Weight of the per-word component in a topic word's vector.
const MIX: f64 = 0.25;

/// Mutually orthonormal topic centroids (plus one extra for the numeric
/// pseudo-topic), built once by Gram-Schmidt over hash-seeded vectors so
/// cross-topic cosine is exactly zero before the per-word noise is mixed
/// in.
fn topic_centroids() -> &'static Vec<Vector> {
    use std::sync::OnceLock;
    static CENTROIDS: OnceLock<Vec<Vector>> = OnceLock::new();
    CENTROIDS.get_or_init(|| {
        let n = ALL_TOPICS.len() + 1;
        assert!(n <= DIM, "more topics than embedding dimensions");
        let mut out: Vec<Vector> = Vec::with_capacity(n);
        let mut seed = 0x5EED_0000_0000_0000u64;
        while out.len() < n {
            let mut v = hash_vector(seed);
            seed = seed.wrapping_add(0x9E3779B97F4A7C15);
            for prev in &out {
                let dot: f64 = (0..DIM).map(|i| v[i] * prev[i]).sum();
                for i in 0..DIM {
                    v[i] -= dot * prev[i];
                }
            }
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-6 {
                for x in v.iter_mut() {
                    *x /= norm;
                }
                out.push(v);
            }
        }
        out
    })
}

impl LexiconEmbedding {
    fn centroid_of(topic: Topic) -> Vector {
        let idx = ALL_TOPICS.iter().position(|t| *t == topic).unwrap_or(0);
        topic_centroids()[idx]
    }

    fn numeric_centroid() -> Vector {
        topic_centroids()[ALL_TOPICS.len()]
    }
}

impl Embedder for LexiconEmbedding {
    fn embed(&self, word: &str) -> Vector {
        // Lower only when needed: block transcriptions are mostly
        // already-normalised lower-case words, so the common case is
        // zero-alloc.
        let needs_lowering = !word.is_ascii() || word.bytes().any(|b| b.is_ascii_uppercase());
        let lowered;
        let w: &str = if needs_lowering {
            lowered = word.to_lowercase();
            &lowered
        } else {
            word
        };
        let word_noise = hash_vector(fnv1a(w));
        let centroid = if w
            .chars()
            .all(|c| c.is_ascii_digit() || c == ',' || c == '.')
            && w.chars().any(|c| c.is_ascii_digit())
        {
            Some(Self::numeric_centroid())
        } else {
            lexicon::topic_of_fuzzy(w).map(Self::centroid_of)
        };
        match centroid {
            Some(c) => {
                let mut v = [0.0; DIM];
                for i in 0..DIM {
                    v[i] = (1.0 - MIX) * c[i] + MIX * word_noise[i];
                }
                normalize(&mut v);
                v
            }
            None => word_noise,
        }
    }
}

/// An embedding learned from a corpus by PPMI factorisation.
///
/// Construction: count co-occurrences in a symmetric window, build the
/// positive pointwise-mutual-information matrix, then extract the top
/// [`DIM`] spectral directions by orthogonal (subspace) iteration. Word
/// vectors are the projections onto that basis. Out-of-vocabulary words
/// fall back to hash vectors so similarity queries never fail.
#[derive(Debug, Clone)]
pub struct TrainedEmbedding {
    vocab: HashMap<String, usize>,
    vectors: Vec<Vector>,
}

impl TrainedEmbedding {
    /// Trains on tokenised sentences with the given co-occurrence window.
    ///
    /// Deterministic: the subspace iteration starts from hash-seeded
    /// vectors. Vocabulary is every distinct word in the corpus.
    pub fn train(sentences: &[Vec<String>], window: usize) -> Self {
        let mut vocab: HashMap<String, usize> = HashMap::new();
        for s in sentences {
            for w in s {
                let next = vocab.len();
                vocab.entry(w.to_lowercase()).or_insert(next);
            }
        }
        let n = vocab.len();
        if n == 0 {
            return Self {
                vocab,
                vectors: Vec::new(),
            };
        }

        // Co-occurrence counts.
        let mut counts = vec![0.0f64; n * n];
        let mut word_count = vec![0.0f64; n];
        let mut total = 0.0f64;
        for s in sentences {
            let ids: Vec<usize> = s.iter().map(|w| vocab[&w.to_lowercase()]).collect();
            for (i, &a) in ids.iter().enumerate() {
                let hi = (i + window + 1).min(ids.len());
                for &b in &ids[i + 1..hi] {
                    counts[a * n + b] += 1.0;
                    counts[b * n + a] += 1.0;
                    word_count[a] += 1.0;
                    word_count[b] += 1.0;
                    total += 2.0;
                }
            }
        }
        if total == 0.0 {
            total = 1.0;
        }

        // PPMI.
        let mut m = vec![0.0f64; n * n];
        for a in 0..n {
            for b in 0..n {
                let c = counts[a * n + b];
                if c > 0.0 {
                    let pmi = ((c * total) / (word_count[a] * word_count[b]).max(1e-12)).ln();
                    if pmi > 0.0 {
                        m[a * n + b] = pmi;
                    }
                }
            }
        }

        // Orthogonal iteration for the top-DIM eigenspace of the symmetric
        // PPMI matrix.
        let k = DIM.min(n);
        let mut q: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                let v = hash_vector(0xABCD_EF00 ^ j as u64);
                let mut col = vec![0.0; n];
                for (i, slot) in col.iter_mut().enumerate() {
                    *slot = v[i % DIM] + 1e-3 * (i as f64 + 1.0) / n as f64;
                }
                col
            })
            .collect();
        for _ in 0..12 {
            // Z = M * Q
            let mut z: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
            for (j, zj) in z.iter_mut().enumerate() {
                for row in 0..n {
                    let mut acc = 0.0;
                    for col in 0..n {
                        acc += m[row * n + col] * q[j][col];
                    }
                    zj[row] = acc;
                }
            }
            // Q = orth(Z) by modified Gram-Schmidt.
            for j in 0..k {
                for prev in 0..j {
                    let (head, tail) = z.split_at_mut(j);
                    let prev_row = &head[prev];
                    let row = &mut tail[0];
                    let dot: f64 = row.iter().zip(prev_row).map(|(x, y)| x * y).sum();
                    for (x, y) in row.iter_mut().zip(prev_row) {
                        *x -= dot * y;
                    }
                }
                let norm: f64 = z[j].iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm > 1e-12 {
                    for x in z[j].iter_mut() {
                        *x /= norm;
                    }
                } else {
                    // Degenerate direction — reseed deterministically.
                    let v = hash_vector(0xFEED_0000 ^ j as u64);
                    for (i, slot) in z[j].iter_mut().enumerate() {
                        *slot = v[i % DIM];
                    }
                }
            }
            q = z;
        }

        // Word vectors: rows of M projected onto the basis.
        let mut vectors = vec![[0.0f64; DIM]; n];
        for (w, vec) in vectors.iter_mut().enumerate() {
            for (j, qj) in q.iter().enumerate().take(k) {
                let mut acc = 0.0;
                for col in 0..n {
                    acc += m[w * n + col] * qj[col];
                }
                vec[j] = acc;
            }
            normalize(vec);
        }
        Self { vocab, vectors }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// `true` when the word was seen during training.
    pub fn contains(&self, word: &str) -> bool {
        self.vocab.contains_key(&word.to_lowercase())
    }
}

impl Embedder for TrainedEmbedding {
    fn embed(&self, word: &str) -> Vector {
        match self.vocab.get(&word.to_lowercase()) {
            Some(&i) => self.vectors[i],
            None => hash_vector(fnv1a(&word.to_lowercase())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basics() {
        let a = hash_vector(1);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
        let zero = [0.0; DIM];
        assert_eq!(cosine(&a, &zero), 0.0);
    }

    #[test]
    fn hash_vectors_are_deterministic_and_spread() {
        assert_eq!(hash_vector(42), hash_vector(42));
        let a = hash_vector(1);
        let b = hash_vector(2);
        assert!(
            cosine(&a, &b).abs() < 0.6,
            "random vectors nearly orthogonal"
        );
    }

    #[test]
    fn same_topic_words_are_similar() {
        let e = LexiconEmbedding;
        let sim_same = cosine(&e.embed("concert"), &e.embed("workshop"));
        let sim_diff = cosine(&e.embed("concert"), &e.embed("acres"));
        assert!(sim_same > 0.7, "same-topic sim = {sim_same}");
        assert!(sim_diff < 0.5, "cross-topic sim = {sim_diff}");
        assert!(sim_same > sim_diff + 0.3);
    }

    #[test]
    fn numbers_cluster_together() {
        let e = LexiconEmbedding;
        let sim = cosine(&e.embed("1,250"), &e.embed("43210"));
        assert!(sim > 0.7, "numeric sim = {sim}");
    }

    #[test]
    fn unknown_words_are_dissimilar() {
        let e = LexiconEmbedding;
        let sim = cosine(&e.embed("zorblax"), &e.embed("vonkarma"));
        assert!(sim.abs() < 0.6);
    }

    #[test]
    fn case_insensitive() {
        let e = LexiconEmbedding;
        assert_eq!(e.embed("Concert"), e.embed("concert"));
    }

    #[test]
    fn embed_text_mean() {
        let e = LexiconEmbedding;
        let v = e.embed_text(["concert", "workshop"]);
        assert!(cosine(&v, &e.embed("festival")) > 0.6);
        let empty = e.embed_text(std::iter::empty());
        assert_eq!(empty, [0.0; DIM]);
    }

    fn toy_corpus() -> Vec<Vec<String>> {
        let mut corpus = Vec::new();
        for _ in 0..30 {
            corpus.push(
                "the concert starts at seven tonight"
                    .split_whitespace()
                    .map(String::from)
                    .collect(),
            );
            corpus.push(
                "the workshop starts at nine tonight"
                    .split_whitespace()
                    .map(String::from)
                    .collect(),
            );
            corpus.push(
                "spacious warehouse with parking available"
                    .split_whitespace()
                    .map(String::from)
                    .collect(),
            );
            corpus.push(
                "spacious office with parking available"
                    .split_whitespace()
                    .map(String::from)
                    .collect(),
            );
        }
        corpus
    }

    #[test]
    fn trained_embedding_learns_distributional_similarity() {
        let emb = TrainedEmbedding::train(&toy_corpus(), 3);
        assert!(emb.vocab_size() >= 10);
        assert!(emb.contains("concert"));
        // "concert" and "workshop" appear in identical contexts;
        // "warehouse" lives in a different context family.
        let cw = cosine(&emb.embed("concert"), &emb.embed("workshop"));
        let ch = cosine(&emb.embed("concert"), &emb.embed("warehouse"));
        assert!(
            cw > ch,
            "distributional: concert~workshop {cw} vs ~warehouse {ch}"
        );
    }

    #[test]
    fn trained_embedding_is_deterministic() {
        let a = TrainedEmbedding::train(&toy_corpus(), 3);
        let b = TrainedEmbedding::train(&toy_corpus(), 3);
        assert_eq!(a.embed("concert"), b.embed("concert"));
    }

    #[test]
    fn trained_embedding_oov_fallback() {
        let emb = TrainedEmbedding::train(&toy_corpus(), 3);
        assert!(!emb.contains("zorblax"));
        let v = emb.embed("zorblax");
        assert!(v.iter().any(|x| *x != 0.0));
    }

    #[test]
    fn empty_corpus() {
        let emb = TrainedEmbedding::train(&[], 3);
        assert_eq!(emb.vocab_size(), 0);
        let v = emb.embed("anything");
        assert!(v.iter().any(|x| *x != 0.0));
    }
}
