//! Stopword filtering.
//!
//! VS2 removes stopwords from the transcribed text of each logical block
//! before semantic operations (§5.2). The list is the lexicon's `Generic`
//! pool — the same function words the generators sprinkle into documents.

use crate::lexicon::{self, Topic};
use crate::token::Token;

/// `true` for function words that carry no semantic contribution.
pub fn is_stopword(word: &str) -> bool {
    lexicon::topic_of(&word.to_lowercase()) == Some(Topic::Generic)
}

/// Removes stopword tokens (and bare punctuation) from a token sequence.
pub fn remove_stopwords(tokens: &[Token]) -> Vec<Token> {
    tokens
        .iter()
        .filter(|t| !t.norm.is_empty() && !is_stopword(&t.norm))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "a", "and", "of", "is", "The", "AND"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not_stopwords() {
        for w in ["concert", "broker", "wages", "columbus"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn remove_stopwords_filters_punctuation_too() {
        let toks = tokenize("The concert, and the gala!");
        let kept = remove_stopwords(&toks);
        let kept: Vec<&str> = kept.iter().map(|t| &*t.norm).collect();
        assert_eq!(kept, vec!["concert", "gala"]);
    }
}
