//! A compact Porter-style suffix-stripping stemmer.
//!
//! Pattern learning compares lexical features across holdout-corpus entries
//! (§5.2.1); stemming collapses inflectional variants ("hosted", "hosting",
//! "hosts" → "host") so mined patterns generalise. This is a pragmatic
//! subset of Porter's algorithm — steps 1a/1b/1c plus a few common
//! derivational suffixes — which is all the synthetic vocabulary needs.

use std::cell::Cell;

thread_local! {
    static STEM_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// Number of [`stem`] invocations on this thread since it started.
/// Conformance tests diff this across a pipeline call to pin
/// once-per-distinct-token stemming on the interned path.
pub fn stem_call_count() -> u64 {
    STEM_CALLS.with(Cell::get)
}

fn is_vowel(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => true,
        b'y' => i > 0 && !is_vowel(bytes, i - 1),
        _ => false,
    }
}

fn has_vowel(word: &str) -> bool {
    let b = word.as_bytes();
    (0..b.len()).any(|i| is_vowel(b, i))
}

/// Measure `m` of Porter's algorithm: the number of vowel→consonant
/// transitions ("VC" sequences) in the word.
fn measure(word: &str) -> usize {
    let b = word.as_bytes();
    let mut m = 0;
    let mut prev_vowel = false;
    for i in 0..b.len() {
        let v = is_vowel(b, i);
        if prev_vowel && !v {
            m += 1;
        }
        prev_vowel = v;
    }
    m
}

fn ends_double_consonant(word: &str) -> bool {
    let b = word.as_bytes();
    let n = b.len();
    n >= 2 && b[n - 1] == b[n - 2] && !is_vowel(b, n - 1)
}

/// Stems a lower-cased word. Words of three characters or fewer, and words
/// containing non-alphabetic characters, pass through unchanged.
pub fn stem(word: &str) -> String {
    STEM_CALLS.with(|c| c.set(c.get() + 1));
    if word.len() <= 3 || !word.chars().all(|c| c.is_ascii_alphabetic()) {
        return word.to_string();
    }
    let mut w = word.to_string();

    // Step 1a — plurals.
    if let Some(s) = w.strip_suffix("sses") {
        w = format!("{s}ss");
    } else if let Some(s) = w.strip_suffix("ies") {
        w = format!("{s}i");
    } else if w.ends_with("ss") {
        // keep
    } else if let Some(s) = w.strip_suffix('s') {
        if has_vowel(s) {
            w = s.to_string();
        }
    }

    // Step 1b — -ed / -ing.
    let mut restore = false;
    if let Some(s) = w.strip_suffix("eed") {
        if measure(s) > 0 {
            w.truncate(w.len() - 1);
        }
    } else if let Some(s) = w.strip_suffix("ed") {
        if has_vowel(s) {
            w.truncate(w.len() - 2);
            restore = true;
        }
    } else if let Some(s) = w.strip_suffix("ing") {
        if has_vowel(s) {
            w.truncate(w.len() - 3);
            restore = true;
        }
    }
    if restore {
        if w.ends_with("at") || w.ends_with("bl") || w.ends_with("iz") {
            w.push('e');
        } else if ends_double_consonant(&w)
            && !w.ends_with('l')
            && !w.ends_with('s')
            && !w.ends_with('z')
        {
            w.truncate(w.len() - 1);
        } else if measure(&w) == 1 && ends_cvc(&w) {
            w.push('e');
        }
    }

    // Step 1c — terminal y.
    if w.ends_with('y') && has_vowel(&w[..w.len() - 1]) {
        w.truncate(w.len() - 1);
        w.push('i');
    }

    // A few derivational suffixes (subset of steps 2-4).
    for (suffix, replacement) in [
        ("ization", "ize"),
        ("ational", "ate"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("iveness", "ive"),
        ("tional", "tion"),
        ("ation", "ate"),
        ("ment", ""),
        ("ness", ""),
    ] {
        if let Some(s) = w.strip_suffix(suffix) {
            if measure(s) > 0 {
                w = format!("{s}{replacement}");
                break;
            }
        }
    }
    w
}

fn ends_cvc(word: &str) -> bool {
    let b = word.as_bytes();
    let n = b.len();
    if n < 3 {
        return false;
    }
    !is_vowel(b, n - 3)
        && is_vowel(b, n - 2)
        && !is_vowel(b, n - 1)
        && !matches!(b[n - 1], b'w' | b'x' | b'y')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plural_stripping() {
        assert_eq!(stem("caresses"), "caress");
        assert_eq!(stem("ponies"), "poni");
        assert_eq!(stem("cats"), "cat");
        assert_eq!(stem("grass"), "grass");
    }

    #[test]
    fn ed_ing_stripping() {
        assert_eq!(stem("hosted"), "host");
        assert_eq!(stem("hosting"), "host");
        assert_eq!(stem("hopping"), "hop");
        assert_eq!(stem("agreed"), "agree");
        assert_eq!(stem("conflated"), "conflate");
    }

    #[test]
    fn inflections_collapse_to_same_stem() {
        let forms = ["organized", "organizes", "organizing"];
        let stems: Vec<String> = forms.iter().map(|f| stem(f)).collect();
        assert!(stems.windows(2).all(|w| w[0] == w[1]), "{stems:?}");
    }

    #[test]
    fn y_to_i() {
        assert_eq!(stem("happy"), "happi");
        assert_eq!(stem("sky"), "sky"); // no vowel before y — unchanged
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(stem("the"), "the");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("be"), "be");
    }

    #[test]
    fn non_alpha_passes_through() {
        assert_eq!(stem("555-0175"), "555-0175");
        assert_eq!(stem("p.m"), "p.m");
    }

    #[test]
    fn derivational_suffixes() {
        assert_eq!(stem("organization"), "organize");
        assert_eq!(stem("payment"), "pay");
    }

    #[test]
    fn measure_counts_vc_sequences() {
        assert_eq!(measure("tr"), 0);
        assert_eq!(measure("trouble"), 1);
        assert_eq!(measure("troubles"), 2);
    }
}
