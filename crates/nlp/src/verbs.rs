//! A VerbNet-lite verb-sense lexicon.
//!
//! Stand-in for VerbNet (the paper's reference [38]): the *Event
//! Organizer* pattern of Table 3 requires a "verb phrase with
//! captain / create / reflexive_appearance verb-senses". Verbs are mapped
//! to those sense classes (plus the auxiliary classes the other patterns
//! touch) after stemming.

use crate::stem::stem;

/// VerbNet-style sense class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerbSense {
    /// Leading / hosting / directing (VerbNet `captain-29.8`-like).
    Captain,
    /// Creating / producing / organising (VerbNet `create-26.4`-like).
    Create,
    /// Appearing / featuring (VerbNet `reflexive_appearance-48.1.2`-like).
    ReflexiveAppearance,
    /// Transfer / offering (`give`-like); used by listing patterns.
    Transfer,
    /// Communication (`contact`, `call` …).
    Communicate,
    /// Motion / attendance (`join`, `attend` …).
    Motion,
}

impl VerbSense {
    /// Short label used in pattern dumps and tree-mining node labels.
    pub fn label(&self) -> &'static str {
        match self {
            VerbSense::Captain => "captain",
            VerbSense::Create => "create",
            VerbSense::ReflexiveAppearance => "reflexive_appearance",
            VerbSense::Transfer => "transfer",
            VerbSense::Communicate => "communicate",
            VerbSense::Motion => "motion",
        }
    }
}

const CAPTAIN: &[&str] = &[
    "host", "direct", "lead", "led", "manag", "chair", "curat", "teach", "taught",
];
const CREATE: &[&str] = &[
    "organ", "produc", "creat", "present", "sponsor", "brought", "bring", "found", "arrang",
];
const REFLEXIVE: &[&str] = &["featur", "appear", "star", "perform", "speak", "spoke"];
const TRANSFER: &[&str] = &["offer", "list", "sell", "sold", "rent", "leas", "provid"];
const COMMUNICATE: &[&str] = &[
    "contact", "call", "email", "rsvp", "regist", "visit", "inquir",
];
const MOTION: &[&str] = &["join", "attend", "come", "arriv", "meet"];

/// Senses of a verb form (any inflection). A verb may belong to several
/// classes; an empty result means the verb is outside the lexicon.
pub fn senses_of(verb: &str) -> Vec<VerbSense> {
    let w = verb.to_lowercase();
    let s = stem(&w);
    let mut out = Vec::new();
    let matches = |pool: &[&str]| pool.iter().any(|p| s.starts_with(p) || w.starts_with(p));
    if matches(CAPTAIN) {
        out.push(VerbSense::Captain);
    }
    if matches(CREATE) {
        out.push(VerbSense::Create);
    }
    if matches(REFLEXIVE) {
        out.push(VerbSense::ReflexiveAppearance);
    }
    if matches(TRANSFER) {
        out.push(VerbSense::Transfer);
    }
    if matches(COMMUNICATE) {
        out.push(VerbSense::Communicate);
    }
    if matches(MOTION) {
        out.push(VerbSense::Motion);
    }
    out
}

/// `true` when the verb carries one of the organiser senses required by
/// the Event Organizer pattern (Table 3).
pub fn is_organizer_sense(verb: &str) -> bool {
    senses_of(verb).iter().any(|s| {
        matches!(
            s,
            VerbSense::Captain | VerbSense::Create | VerbSense::ReflexiveAppearance
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn organizer_verbs() {
        for v in [
            "hosted",
            "hosting",
            "organized",
            "presents",
            "sponsored",
            "featuring",
        ] {
            assert!(is_organizer_sense(v), "{v} should be an organizer verb");
        }
    }

    #[test]
    fn non_organizer_verbs() {
        for v in ["call", "join", "offered", "running"] {
            assert!(
                !is_organizer_sense(v),
                "{v} should not be an organizer verb"
            );
        }
    }

    #[test]
    fn inflections_share_senses() {
        assert_eq!(senses_of("hosts"), senses_of("hosted"));
        assert_eq!(senses_of("organize"), senses_of("organizing"));
    }

    #[test]
    fn sense_classes() {
        assert_eq!(senses_of("hosted"), vec![VerbSense::Captain]);
        assert_eq!(senses_of("listed"), vec![VerbSense::Transfer]);
        assert_eq!(senses_of("contact"), vec![VerbSense::Communicate]);
        assert_eq!(senses_of("attend"), vec![VerbSense::Motion]);
        assert!(senses_of("zorblaxing").is_empty());
    }

    #[test]
    fn labels() {
        assert_eq!(
            VerbSense::ReflexiveAppearance.label(),
            "reflexive_appearance"
        );
    }
}
