//! Geocode-lite: postal-address validation.
//!
//! Stand-in for the Google Maps geocoding API (the paper's reference
//! [24]): named entities of category *Location* are "further augmented
//! with a geocode tag". Tables 3 and 4 require "noun phrases with valid
//! geocode tags" for *Event Place* and *Property Address*. A span earns a
//! geocode tag when it parses as a street address or a city/state pair.

use crate::lexicon::{self, Topic};

/// A parsed address with whatever components were present.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Geocode {
    /// Street number, when present.
    pub street_number: Option<String>,
    /// Street name words (without the suffix).
    pub street_name: Vec<String>,
    /// Street-type suffix (`st`, `ave`, …), when present.
    pub street_suffix: Option<String>,
    /// City name, when present.
    pub city: Option<String>,
    /// State name or abbreviation, when present.
    pub state: Option<String>,
    /// 5-digit ZIP code, when present.
    pub zip: Option<String>,
}

impl Geocode {
    /// Confidence in `[0, 1]`: how many address components were resolved.
    pub fn confidence(&self) -> f64 {
        let mut score = 0.0;
        if self.street_number.is_some() {
            score += 0.25;
        }
        if !self.street_name.is_empty() && self.street_suffix.is_some() {
            score += 0.35;
        }
        if self.city.is_some() {
            score += 0.2;
        }
        if self.state.is_some() {
            score += 0.1;
        }
        if self.zip.is_some() {
            score += 0.1;
        }
        score
    }
}

fn is_zip(w: &str) -> bool {
    w.len() == 5 && w.chars().all(|c| c.is_ascii_digit())
}

fn is_street_number(w: &str) -> bool {
    (1..=6).contains(&w.len()) && w.chars().all(|c| c.is_ascii_digit())
}

/// Attempts to geocode a textual span. Returns `None` when the span lacks
/// both a street-address shape and a city/state mention.
pub fn geocode(text: &str) -> Option<Geocode> {
    let words: Vec<String> = text
        .split_whitespace()
        .map(|w| {
            w.trim_matches(|c: char| matches!(c, ',' | '.' | '!' | '?' | '(' | ')' | '#'))
                .to_lowercase()
        })
        .filter(|w| !w.is_empty())
        .collect();
    if words.is_empty() {
        return None;
    }

    let mut g = Geocode::default();
    let mut i = 0;

    // Optional leading street number.
    if is_street_number(&words[0]) && words.len() > 1 {
        g.street_number = Some(words[0].clone());
        i = 1;
    }

    // Street name words up to a street suffix.
    let mut name_acc: Vec<String> = Vec::new();
    let mut j = i;
    while j < words.len() {
        let w = &words[j];
        if lexicon::topic_of(w) == Some(Topic::StreetSuffix) && !name_acc.is_empty() {
            g.street_name = std::mem::take(&mut name_acc);
            g.street_suffix = Some(w.clone());
            j += 1;
            break;
        }
        if matches!(lexicon::topic_of(w), Some(Topic::City | Topic::State)) || is_zip(w) {
            break;
        }
        if w.chars().all(|c| c.is_ascii_alphabetic()) {
            name_acc.push(w.clone());
            j += 1;
        } else {
            break;
        }
    }

    // Trailing city / state / zip in any order.
    for w in &words[j..] {
        match lexicon::topic_of(w) {
            Some(Topic::City) if g.city.is_none() => g.city = Some(w.clone()),
            Some(Topic::State) if g.state.is_none() => g.state = Some(w.clone()),
            _ if is_zip(w) && g.zip.is_none() => g.zip = Some(w.clone()),
            _ => {}
        }
    }

    let has_street = g.street_number.is_some() && g.street_suffix.is_some();
    let has_locality = g.city.is_some() || (g.state.is_some() && g.zip.is_some());
    if has_street || has_locality {
        Some(g)
    } else {
        None
    }
}

/// Sound zero-allocation prefilter for [`geocode`]: every accepted span
/// contains a street-suffix, city or state lexicon word (`has_street`
/// needs the suffix, `has_locality` needs city or state). Words the
/// stack buffer cannot lower-case without allocating (non-ASCII or very
/// long) conservatively pass the span through to the full parse.
fn might_geocode(text: &str) -> bool {
    let mut buf = [0u8; 24];
    for w in text.split_whitespace() {
        let t = w.trim_matches(|c: char| matches!(c, ',' | '.' | '!' | '?' | '(' | ')' | '#'));
        if t.is_empty() {
            continue;
        }
        if !t.is_ascii() || t.len() > buf.len() {
            return true;
        }
        let b = &mut buf[..t.len()];
        b.copy_from_slice(t.as_bytes());
        b.make_ascii_lowercase();
        let lowered = std::str::from_utf8(b).expect("ascii stays utf-8");
        if matches!(
            lexicon::topic_of(lowered),
            Some(Topic::StreetSuffix | Topic::City | Topic::State)
        ) {
            return true;
        }
    }
    false
}

/// `true` when the span earns a geocode tag — the validity test used by
/// the Event Place / Property Address patterns.
pub fn is_valid_geocode(text: &str) -> bool {
    might_geocode(text) && geocode(text).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_street_address() {
        let g = geocode("1458 Maple Avenue Columbus OH 43210").unwrap();
        assert_eq!(g.street_number.as_deref(), Some("1458"));
        assert_eq!(g.street_name, vec!["maple"]);
        assert_eq!(g.street_suffix.as_deref(), Some("avenue"));
        assert_eq!(g.city.as_deref(), Some("columbus"));
        assert_eq!(g.state.as_deref(), Some("oh"));
        assert_eq!(g.zip.as_deref(), Some("43210"));
        assert!(g.confidence() > 0.9);
    }

    #[test]
    fn street_only() {
        let g = geocode("22 Oak St").unwrap();
        assert_eq!(g.street_number.as_deref(), Some("22"));
        assert_eq!(g.street_suffix.as_deref(), Some("st"));
        assert!(g.city.is_none());
    }

    #[test]
    fn multiword_street_name() {
        let g = geocode("901 North High Street").unwrap();
        assert_eq!(g.street_name, vec!["north", "high"]);
    }

    #[test]
    fn city_state_without_street() {
        let g = geocode("Columbus, Ohio").unwrap();
        assert_eq!(g.city.as_deref(), Some("columbus"));
        assert_eq!(g.state.as_deref(), Some("ohio"));
    }

    #[test]
    fn rejects_non_addresses() {
        assert!(geocode("live jazz concert tonight").is_none());
        assert!(geocode("call 614-555-0175").is_none());
        assert!(geocode("").is_none());
        // A bare number with no suffix or locality is not an address.
        assert!(geocode("1458 maple").is_none());
    }

    #[test]
    fn validity_predicate() {
        assert!(is_valid_geocode("99 Broad Blvd Dayton"));
        assert!(!is_valid_geocode("grand annual gala"));
    }

    #[test]
    fn confidence_ordering() {
        let full = geocode("1458 Maple Ave Columbus OH 43210").unwrap();
        let partial = geocode("Columbus Ohio").unwrap();
        assert!(full.confidence() > partial.confidence());
    }
}
