//! Lesk-style word-sense disambiguation.
//!
//! The paper's text-only baseline resolves conflicting entity matches
//! with Lesk (reference [3]), a gloss-overlap disambiguator, and §6.5's
//! ablation A4 swaps VS2's multimodal disambiguation for exactly this.
//! Senses are glossed by bags of words; a candidate context is scored by
//! its (stemmed, stopword-free) overlap with each gloss.

use crate::lexicon::{self, Topic};
use crate::stem::stem;
use crate::stopwords::is_stopword;
use std::collections::{HashMap, HashSet};

/// A gloss-overlap disambiguator with named senses.
#[derive(Debug, Clone, Default)]
pub struct Lesk {
    glosses: HashMap<String, HashSet<String>>,
}

fn gloss_set<'a, I: IntoIterator<Item = &'a str>>(words: I) -> HashSet<String> {
    words
        .into_iter()
        .map(|w| w.to_lowercase())
        .filter(|w| !w.is_empty() && !is_stopword(w))
        .map(|w| stem(&w))
        .collect()
}

impl Lesk {
    /// Creates an empty disambiguator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a disambiguator whose senses are the lexicon topics,
    /// glossed by their word pools — the generic inventory the text-only
    /// baseline uses when nothing task-specific is available.
    pub fn from_lexicon() -> Self {
        let mut l = Self::new();
        for t in lexicon::ALL_TOPICS {
            if t == Topic::Generic {
                continue;
            }
            l.add_gloss(
                format!("{t:?}").to_lowercase(),
                lexicon::words_of(t).iter().copied(),
            );
        }
        l
    }

    /// Adds (or extends) a sense gloss.
    pub fn add_gloss<'a, I: IntoIterator<Item = &'a str>>(
        &mut self,
        sense: impl Into<String>,
        words: I,
    ) {
        self.glosses
            .entry(sense.into())
            .or_default()
            .extend(gloss_set(words));
    }

    /// Number of senses.
    pub fn sense_count(&self) -> usize {
        self.glosses.len()
    }

    /// Overlap score of a context against one sense's gloss: the number of
    /// shared stems divided by the context size (0 when either is empty,
    /// or the sense is unknown).
    pub fn score<'a, I: IntoIterator<Item = &'a str>>(&self, sense: &str, context: I) -> f64 {
        let Some(gloss) = self.glosses.get(sense) else {
            return 0.0;
        };
        let ctx = gloss_set(context);
        if ctx.is_empty() || gloss.is_empty() {
            return 0.0;
        }
        let overlap = ctx.iter().filter(|w| gloss.contains(*w)).count();
        overlap as f64 / ctx.len() as f64
    }

    /// Best-scoring sense for a context; `None` when no sense overlaps at
    /// all. Ties break lexicographically for determinism.
    pub fn best_sense<'a, I: IntoIterator<Item = &'a str> + Clone>(
        &self,
        context: I,
    ) -> Option<(String, f64)> {
        let mut best: Option<(String, f64)> = None;
        let mut senses: Vec<&String> = self.glosses.keys().collect();
        senses.sort();
        for sense in senses {
            let s = self.score(sense, context.clone());
            if s > 0.0 && best.as_ref().is_none_or(|(_, bs)| s > *bs) {
                best = Some((sense.clone(), s));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_counts_stemmed_overlap() {
        let mut l = Lesk::new();
        l.add_gloss("events", ["concert", "festival", "tickets"]);
        // "concerts" stems to "concert".
        let s = l.score("events", ["concerts", "tonight"]);
        assert!(s > 0.0 && s <= 1.0);
        assert_eq!(l.score("missing", ["concert"]), 0.0);
    }

    #[test]
    fn stopwords_do_not_inflate_scores() {
        let mut l = Lesk::new();
        l.add_gloss("g", ["broker", "the", "and"]);
        let s = l.score("g", ["the", "and", "broker"]);
        assert_eq!(s, 1.0, "context reduces to the single content word");
    }

    #[test]
    fn best_sense_picks_highest() {
        let mut l = Lesk::new();
        l.add_gloss("estate", ["broker", "listing", "acres"]);
        l.add_gloss("events", ["concert", "festival", "stage"]);
        let (sense, _) = l.best_sense(["broker", "listing", "stage"]).unwrap();
        assert_eq!(sense, "estate");
        assert!(l.best_sense(["zzz", "qqq"]).is_none());
    }

    #[test]
    fn lexicon_inventory() {
        let l = Lesk::from_lexicon();
        assert!(l.sense_count() >= 15);
        let (sense, _) = l.best_sense(["acres", "sqft", "beds"]).unwrap();
        assert_eq!(sense, "measure");
    }

    #[test]
    fn deterministic_tie_break() {
        let mut l = Lesk::new();
        l.add_gloss("a", ["word"]);
        l.add_gloss("b", ["word"]);
        let (sense, _) = l.best_sense(["word"]).unwrap();
        assert_eq!(sense, "a");
    }
}
