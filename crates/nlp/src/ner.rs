//! Gazetteer- and rule-based named-entity recognition.
//!
//! Stand-in for the Stanford NER used by the paper (Fig. 3): recognises
//! the categories the extraction patterns of Tables 3 and 4 consume.
//! Like the original, it over-generates on capitalised word runs — which
//! is precisely the behaviour the paper exploits to show why ill-defined
//! context boundaries in a raw transcription produce false positives.

use crate::lexicon::{self, Topic};
use crate::pos::PosTag;
use crate::token::Token;

/// Entity category assigned to a token span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NerTag {
    /// A person's name.
    Person,
    /// An organisation.
    Organization,
    /// A location (city, state or street address fragment).
    Location,
    /// A calendar date.
    Date,
    /// A clock time.
    Time,
    /// A monetary amount.
    Money,
    /// An e-mail address.
    Email,
    /// A telephone number.
    Phone,
}

/// A token span `[start, end)` with its entity tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NerSpan {
    /// Entity category.
    pub tag: NerTag,
    /// First token index (inclusive).
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
}

impl NerSpan {
    /// Creates a span.
    pub fn new(tag: NerTag, start: usize, end: usize) -> Self {
        Self { tag, start, end }
    }

    /// Span length in tokens.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for an empty span (never produced by the recogniser).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// `true` when the token is an RFC-5322-flavoured e-mail address: exactly
/// one `@`, non-empty local part, and a dotted domain.
pub fn is_email(token: &str) -> bool {
    let mut parts = token.split('@');
    let (Some(local), Some(domain), None) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    if local.is_empty() || domain.len() < 3 || !domain.contains('.') {
        return false;
    }
    let ok_local = local
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-' | '+'));
    let ok_domain = domain
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '-'))
        && !domain.starts_with('.')
        && !domain.ends_with('.');
    ok_local && ok_domain
}

/// `true` when the token is a phone-number fragment of `d{3}-d{4}` or
/// longer dashed/dotted digit groups (`614-555-0175`, `555.0175`).
pub fn is_phone_fragment(token: &str) -> bool {
    let mut groups = 0usize;
    let mut digits = 0usize;
    for g in token.split(['-', '.']) {
        if g.is_empty() || !g.chars().all(|c| c.is_ascii_digit()) {
            return false;
        }
        groups += 1;
        digits += g.len();
    }
    groups >= 2 && (7..=11).contains(&digits)
}

/// `true` when the token is a date written with separators
/// (`04/01/2019`, `4/1`, `2019-04-01`). The groups must satisfy calendar
/// semantics (month ≤ 12, day ≤ 31, plausible year) so phone numbers like
/// `614-555-0175` are not mistaken for dates.
pub fn is_slashed_date(token: &str) -> bool {
    let seps = token.chars().filter(|c| *c == '/' || *c == '-').count();
    if !(1..=2).contains(&seps) {
        return false;
    }
    // `seps` ∈ {1, 2} so the split yields 2 or 3 groups — a stack buffer
    // holds them without allocating.
    let mut groups = [""; 3];
    let mut k = 0usize;
    for g in token.split(['/', '-']) {
        if g.is_empty() || g.len() > 4 || !g.chars().all(|c| c.is_ascii_digit()) {
            return false;
        }
        groups[k] = g;
        k += 1;
    }
    let num = |i: usize| groups[i].parse::<u32>().unwrap();
    let plausible_year = |y: u32, len: usize| (len == 2) || (1900..=2100).contains(&y);
    match k {
        2 => (1..=12).contains(&num(0)) && (1..=31).contains(&num(1)),
        3 if groups[0].len() == 4 => {
            (1900..=2100).contains(&num(0))
                && (1..=12).contains(&num(1))
                && (1..=31).contains(&num(2))
        }
        3 => {
            (1..=12).contains(&num(0))
                && (1..=31).contains(&num(1))
                && plausible_year(num(2), groups[2].len())
        }
        _ => false,
    }
}

/// `true` when the token is a clock time (`7:30`, `19:00`).
pub fn is_clock_time(token: &str) -> bool {
    let mut parts = token.split(':');
    let (Some(h), Some(m)) = (parts.next(), parts.next()) else {
        return false;
    };
    if parts.next().is_some() {
        return false;
    }
    h.parse::<u8>().map(|h| h < 24).unwrap_or(false)
        && m.len() == 2
        && m.parse::<u8>().map(|m| m < 60).unwrap_or(false)
}

fn topic(tok: &Token) -> Option<Topic> {
    lexicon::topic_of(&tok.norm)
}

/// Recognises entity spans over a tagged token sequence. Spans do not
/// overlap; earlier (longer, more specific) matches win.
pub fn recognize(tokens: &[Token], pos: &[PosTag]) -> Vec<NerSpan> {
    assert_eq!(tokens.len(), pos.len(), "tokens and tags must align");
    let n = tokens.len();
    let mut spans: Vec<NerSpan> = Vec::new();
    let mut used = vec![false; n];

    let claim = |spans: &mut Vec<NerSpan>, used: &mut Vec<bool>, s: NerSpan| {
        if (s.start..s.end).any(|i| used[i]) {
            return;
        }
        for slot in &mut used[s.start..s.end] {
            *slot = true;
        }
        spans.push(s);
    };

    // Single-token unambiguous classes first.
    for (i, t) in tokens.iter().enumerate() {
        if is_email(&t.raw) {
            claim(&mut spans, &mut used, NerSpan::new(NerTag::Email, i, i + 1));
        } else if is_slashed_date(&t.raw) {
            claim(&mut spans, &mut used, NerSpan::new(NerTag::Date, i, i + 1));
        } else if t.raw.starts_with('$') && t.raw.len() > 1 {
            claim(&mut spans, &mut used, NerSpan::new(NerTag::Money, i, i + 1));
        }
    }

    // Phone numbers: `(` AAA `)` BBB-CCCC | AAA-BBB-CCCC | plain fragment.
    for i in 0..n {
        if used[i] {
            continue;
        }
        if &*tokens[i].raw == "("
            && i + 3 < n
            && tokens[i + 1].raw.len() == 3
            && tokens[i + 1].raw.chars().all(|c| c.is_ascii_digit())
            && &*tokens[i + 2].raw == ")"
            && is_phone_fragment(&tokens[i + 3].raw)
        {
            claim(&mut spans, &mut used, NerSpan::new(NerTag::Phone, i, i + 4));
        } else if is_phone_fragment(&tokens[i].raw) && tokens[i].raw.len() >= 8 {
            claim(&mut spans, &mut used, NerSpan::new(NerTag::Phone, i, i + 1));
        }
    }

    // Times: clock tokens, optional am/pm; `7 pm`; `7pm`.
    for i in 0..n {
        if used[i] {
            continue;
        }
        let is_ampm = |j: usize| j < n && matches!(&*tokens[j].norm, "am" | "pm" | "a.m" | "p.m");
        if is_clock_time(&tokens[i].raw) {
            let end = if is_ampm(i + 1) { i + 2 } else { i + 1 };
            claim(&mut spans, &mut used, NerSpan::new(NerTag::Time, i, end));
        } else if pos[i] == PosTag::Cd && is_ampm(i + 1) {
            claim(&mut spans, &mut used, NerSpan::new(NerTag::Time, i, i + 2));
        } else if tokens[i].is_alphanumeric_mix()
            && (tokens[i].norm.ends_with("am") || tokens[i].norm.ends_with("pm"))
            && tokens[i].norm.len() <= 4
        {
            claim(&mut spans, &mut used, NerSpan::new(NerTag::Time, i, i + 1));
        }
    }

    // Dates: Month CD (, CD)? | Weekday.
    for i in 0..n {
        if used[i] {
            continue;
        }
        match topic(&tokens[i]) {
            Some(Topic::Month) => {
                let mut end = i + 1;
                if end < n && pos[end] == PosTag::Cd && !used[end] {
                    end += 1;
                    if end + 1 < n
                        && &*tokens[end].raw == ","
                        && pos[end + 1] == PosTag::Cd
                        && !used[end + 1]
                    {
                        end += 2;
                    }
                }
                if end > i + 1 {
                    claim(&mut spans, &mut used, NerSpan::new(NerTag::Date, i, end));
                }
            }
            Some(Topic::Weekday) => {
                claim(&mut spans, &mut used, NerSpan::new(NerTag::Date, i, i + 1));
            }
            _ => {}
        }
    }

    // Organisations: NNP run ending in an Organization-topic word.
    for i in 0..n {
        if used[i] || !pos[i].is_noun() {
            continue;
        }
        let mut j = i;
        while j < n && !used[j] && (pos[j].is_noun() || pos[j] == PosTag::Jj) {
            j += 1;
        }
        if j > i
            && topic(&tokens[j - 1]) == Some(Topic::Organization)
            && (j - i >= 2 || tokens[i].is_capitalized())
        {
            claim(
                &mut spans,
                &mut used,
                NerSpan::new(NerTag::Organization, i, j),
            );
        }
    }

    // Persons: first-name (+ last-name / capitalised follower), or a
    // capitalised word followed by a known last name, or — the deliberate
    // over-generation — two adjacent capitalised NNPs.
    for i in 0..n {
        if used[i] {
            continue;
        }
        let t0 = topic(&tokens[i]);
        let next_free = i + 1 < n && !used[i + 1];
        if t0 == Some(Topic::PersonFirst) {
            let end = if next_free && tokens[i + 1].is_capitalized() && pos[i + 1].is_noun() {
                i + 2
            } else {
                i + 1
            };
            claim(&mut spans, &mut used, NerSpan::new(NerTag::Person, i, end));
        } else if next_free
            && tokens[i].is_capitalized()
            && (topic(&tokens[i + 1]) == Some(Topic::PersonLast)
                || (pos[i] == PosTag::Nnp
                    && pos[i + 1] == PosTag::Nnp
                    && tokens[i + 1].is_capitalized()
                    && t0.is_none()
                    && topic(&tokens[i + 1]).is_none()))
        {
            claim(
                &mut spans,
                &mut used,
                NerSpan::new(NerTag::Person, i, i + 2),
            );
        }
    }

    // Locations: city/state gazetteer words (possibly a run). Two-letter
    // state abbreviations only count when capitalised ("OH", not "oh").
    let is_loc_word = |t: &Token| match topic(t) {
        Some(Topic::City) => true,
        Some(Topic::State) => t.norm.len() > 2 || t.is_all_caps(),
        _ => false,
    };
    for i in 0..n {
        if used[i] {
            continue;
        }
        if is_loc_word(&tokens[i]) {
            let mut j = i + 1;
            while j < n && !used[j] && is_loc_word(&tokens[j]) {
                j += 1;
            }
            claim(&mut spans, &mut used, NerSpan::new(NerTag::Location, i, j));
        }
    }

    spans.sort_by_key(|s| (s.start, s.end));
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::tag;
    use crate::token::tokenize;

    fn spans_of(text: &str) -> Vec<(NerTag, String)> {
        let toks = tokenize(text);
        let pos = tag(&toks);
        recognize(&toks, &pos)
            .into_iter()
            .map(|s| {
                let words: Vec<&str> = (s.start..s.end).map(|i| &*toks[i].raw).collect();
                (s.tag, words.join(" "))
            })
            .collect()
    }

    #[test]
    fn emails() {
        assert!(is_email("bob@example.com"));
        assert!(is_email("a.b-c+d@mail.example.org"));
        assert!(!is_email("bob@com"));
        assert!(!is_email("@example.com"));
        assert!(!is_email("a@b@c.com"));
        let s = spans_of("contact bob@example.com today");
        assert!(s.contains(&(NerTag::Email, "bob@example.com".into())));
    }

    #[test]
    fn phones() {
        assert!(is_phone_fragment("555-0175"));
        assert!(is_phone_fragment("614-555-0175"));
        assert!(!is_phone_fragment("2019-04"));
        assert!(!is_phone_fragment("hello-world"));
        let s = spans_of("call ( 614 ) 555-0175 now");
        assert_eq!(s[0].0, NerTag::Phone);
        assert_eq!(s[0].1, "( 614 ) 555-0175");
        let s = spans_of("call 614-555-0175 now");
        assert_eq!(s[0], (NerTag::Phone, "614-555-0175".into()));
    }

    #[test]
    fn times() {
        assert!(is_clock_time("7:30"));
        assert!(is_clock_time("19:00"));
        assert!(!is_clock_time("25:00"));
        assert!(!is_clock_time("7:3"));
        let s = spans_of("doors 7:30 pm");
        assert_eq!(s[0], (NerTag::Time, "7:30 pm".into()));
        let s = spans_of("starts 7 pm sharp");
        assert_eq!(s[0], (NerTag::Time, "7 pm".into()));
        let s = spans_of("at 7pm tonight");
        assert!(s.contains(&(NerTag::Time, "7pm".into())));
    }

    #[test]
    fn dates() {
        assert!(is_slashed_date("04/01/2019"));
        assert!(is_slashed_date("4/1"));
        assert!(!is_slashed_date("a/b"));
        let s = spans_of("April 5 , 2019");
        assert_eq!(s[0], (NerTag::Date, "April 5 , 2019".into()));
        let s = spans_of("every Saturday morning");
        assert_eq!(s[0], (NerTag::Date, "Saturday".into()));
    }

    #[test]
    fn money() {
        let s = spans_of("only $25 admission");
        assert_eq!(s[0], (NerTag::Money, "$25".into()));
    }

    #[test]
    fn persons_from_gazetteer() {
        let s = spans_of("hosted by James Wilson");
        assert!(
            s.contains(&(NerTag::Person, "James Wilson".into())),
            "{s:?}"
        );
        let s = spans_of("with Priya tonight");
        assert!(s.contains(&(NerTag::Person, "Priya".into())));
    }

    #[test]
    fn organizations() {
        let s = spans_of("presented by Riverside Realty LLC");
        assert!(
            s.iter()
                .any(|(t, w)| *t == NerTag::Organization && w.contains("LLC")),
            "{s:?}"
        );
        let s = spans_of("the Ohio State University");
        assert!(s.iter().any(|(t, _)| *t == NerTag::Organization), "{s:?}");
    }

    #[test]
    fn locations() {
        let s = spans_of("in Columbus Ohio this week");
        assert!(
            s.contains(&(NerTag::Location, "Columbus Ohio".into())),
            "{s:?}"
        );
    }

    #[test]
    fn capitalized_bigram_overgenerates_person() {
        // Unknown capitalised bigram — the deliberate false-positive source
        // demonstrated in the paper's Fig. 3.
        let s = spans_of("meet Zorblax Vonkarma there");
        assert!(
            s.contains(&(NerTag::Person, "Zorblax Vonkarma".into())),
            "{s:?}"
        );
    }

    #[test]
    fn spans_do_not_overlap() {
        let toks = tokenize("James Wilson of Riverside Realty LLC in Columbus Ohio 7:30 pm");
        let pos = tag(&toks);
        let spans = recognize(&toks, &pos);
        let mut seen = vec![false; toks.len()];
        for s in &spans {
            for (off, slot) in seen[s.start..s.end].iter_mut().enumerate() {
                assert!(!*slot, "overlap at {}: {spans:?}", s.start + off);
                *slot = true;
            }
        }
    }

    #[test]
    fn span_helpers() {
        let s = NerSpan::new(NerTag::Person, 2, 4);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
