//! Shallow phrase chunking.
//!
//! The pattern vocabulary of Tables 3 and 4 is phrase-level: *verb
//! phrase*, *noun phrase with numeric (CD) or textual (JJ) modifiers*,
//! and *SVO*. This chunker performs greedy finite-state grouping of POS
//! tags into those phrase types, and marks SVO triples where a noun
//! phrase, a verb phrase and another noun phrase appear in sequence.

use crate::pos::PosTag;
use crate::token::Token;

/// Kind of a shallow phrase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhraseKind {
    /// Noun phrase.
    Np,
    /// Verb phrase.
    Vp,
    /// A subject–verb–object triple (spans an NP + VP + NP sequence).
    Svo,
}

/// A phrase over token span `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phrase {
    /// Phrase kind.
    pub kind: PhraseKind,
    /// First token index.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
    /// `true` when the phrase contains a cardinal-number (CD) modifier.
    pub has_cd: bool,
    /// `true` when the phrase contains an adjectival (JJ) modifier.
    pub has_jj: bool,
}

impl Phrase {
    /// Phrase length in tokens.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for a zero-length phrase (never produced by the chunker).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Chunks a tagged token sequence into NP/VP phrases, then overlays SVO
/// triples. Phrases of one kind never overlap; SVO spans overlap the
/// NP/VP phrases they are built from.
pub fn chunk(tokens: &[Token], pos: &[PosTag]) -> Vec<Phrase> {
    assert_eq!(tokens.len(), pos.len(), "tokens and tags must align");
    let n = tokens.len();
    let mut phrases: Vec<Phrase> = Vec::new();
    let mut i = 0;
    while i < n {
        match pos[i] {
            // NP: (DT)? (JJ|CD)* (NN|NNS|NNP)+ (CD)?
            PosTag::Dt | PosTag::Jj | PosTag::Cd | PosTag::Nn | PosTag::Nns | PosTag::Nnp => {
                let start = i;
                let mut has_cd = false;
                let mut has_jj = false;
                if pos[i] == PosTag::Dt {
                    i += 1;
                }
                while i < n && matches!(pos[i], PosTag::Jj | PosTag::Cd) {
                    has_cd |= pos[i] == PosTag::Cd;
                    has_jj |= pos[i] == PosTag::Jj;
                    i += 1;
                }
                let noun_start = i;
                while i < n && pos[i].is_noun() {
                    i += 1;
                }
                if i < n && pos[i] == PosTag::Cd && i > noun_start {
                    has_cd = true;
                    i += 1;
                }
                if i > noun_start {
                    // At least one noun head.
                    phrases.push(Phrase {
                        kind: PhraseKind::Np,
                        start,
                        end: i,
                        has_cd,
                        has_jj,
                    });
                } else if has_cd && i > start {
                    // A bare number run still forms a (numeric) NP — poster
                    // fragments like "$25" or "2,465" act as noun phrases.
                    phrases.push(Phrase {
                        kind: PhraseKind::Np,
                        start,
                        end: i,
                        has_cd,
                        has_jj,
                    });
                } else if i == start {
                    i += 1; // lone DT/JJ with no head — skip
                }
            }
            // VP: (RB)? (VB|VBD|VBG)+
            PosTag::Vb | PosTag::Vbd | PosTag::Vbg | PosTag::Rb => {
                let start = i;
                if pos[i] == PosTag::Rb {
                    i += 1;
                }
                let verb_start = i;
                while i < n && pos[i].is_verb() {
                    i += 1;
                }
                if i > verb_start {
                    phrases.push(Phrase {
                        kind: PhraseKind::Vp,
                        start,
                        end: i,
                        has_cd: false,
                        has_jj: false,
                    });
                } else {
                    i += 1; // lone adverb
                }
            }
            _ => i += 1,
        }
    }

    // SVO overlay: NP VP NP with nothing but function words between.
    let mut svos = Vec::new();
    for w in 0..phrases.len() {
        if phrases[w].kind != PhraseKind::Np {
            continue;
        }
        let Some(vp) = phrases[w + 1..]
            .iter()
            .take(2)
            .find(|p| p.kind == PhraseKind::Vp)
        else {
            continue;
        };
        let Some(obj) = phrases
            .iter()
            .find(|p| p.kind == PhraseKind::Np && p.start >= vp.end && p.start - vp.end <= 2)
        else {
            continue;
        };
        svos.push(Phrase {
            kind: PhraseKind::Svo,
            start: phrases[w].start,
            end: obj.end,
            has_cd: phrases[w].has_cd || obj.has_cd,
            has_jj: phrases[w].has_jj || obj.has_jj,
        });
    }
    phrases.extend(svos);
    phrases.sort_by_key(|p| (p.start, p.end));
    phrases.dedup();
    phrases
}

/// Convenience: the phrases of a given kind.
pub fn phrases_of_kind(phrases: &[Phrase], kind: PhraseKind) -> Vec<Phrase> {
    phrases.iter().filter(|p| p.kind == kind).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::tag;
    use crate::token::tokenize;

    fn phrases(text: &str) -> Vec<(PhraseKind, String)> {
        let toks = tokenize(text);
        let pos = tag(&toks);
        chunk(&toks, &pos)
            .into_iter()
            .map(|p| {
                let words: Vec<&str> = (p.start..p.end).map(|i| &*toks[i].raw).collect();
                (p.kind, words.join(" "))
            })
            .collect()
    }

    #[test]
    fn simple_np() {
        let ps = phrases("the grand concert");
        assert!(
            ps.contains(&(PhraseKind::Np, "the grand concert".into())),
            "{ps:?}"
        );
    }

    #[test]
    fn np_with_modifiers_sets_flags() {
        let toks = tokenize("4 beds");
        let pos = tag(&toks);
        let ps = chunk(&toks, &pos);
        let np = ps.iter().find(|p| p.kind == PhraseKind::Np).unwrap();
        assert!(np.has_cd);
        assert!(!np.has_jj);

        let toks = tokenize("spacious warehouse");
        let pos = tag(&toks);
        let ps = chunk(&toks, &pos);
        let np = ps.iter().find(|p| p.kind == PhraseKind::Np).unwrap();
        assert!(np.has_jj);
    }

    #[test]
    fn trailing_number_joins_np() {
        let toks = tokenize("suite 200");
        let pos = tag(&toks);
        let ps = chunk(&toks, &pos);
        let np = ps.iter().find(|p| p.kind == PhraseKind::Np).unwrap();
        assert_eq!((np.start, np.end), (0, 2));
        assert!(np.has_cd);
    }

    #[test]
    fn verb_phrases() {
        let ps = phrases("hosted by the club");
        assert!(ps.contains(&(PhraseKind::Vp, "hosted".into())), "{ps:?}");
    }

    #[test]
    fn svo_detection() {
        let ps = phrases("the society presents a concert");
        assert!(
            ps.iter()
                .any(|(k, s)| *k == PhraseKind::Svo && s.contains("presents")),
            "{ps:?}"
        );
    }

    #[test]
    fn no_svo_without_object() {
        let ps = phrases("the concert tonight");
        assert!(ps.iter().all(|(k, _)| *k != PhraseKind::Svo));
    }

    #[test]
    fn numeric_only_np() {
        let ps = phrases("$25");
        assert!(!ps.is_empty());
    }

    #[test]
    fn kind_filter() {
        let toks = tokenize("the club hosts a gala");
        let pos = tag(&toks);
        let all = chunk(&toks, &pos);
        let nps = phrases_of_kind(&all, PhraseKind::Np);
        assert!(nps.len() >= 2);
        assert!(nps.iter().all(|p| p.kind == PhraseKind::Np));
    }

    #[test]
    fn empty_input_yields_no_phrases() {
        assert!(phrases("").is_empty());
    }
}
