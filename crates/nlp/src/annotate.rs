//! The combined annotation pipeline.
//!
//! §5.2: "the transcribed text within the document is normalized, its
//! stopwords are removed, dependency trees are constructed, and named
//! entities are recognized." [`annotate`] runs tokenisation → POS →
//! chunking → NER over a transcription and returns everything the
//! pattern matcher and tree builder consume.

use crate::chunk::{chunk, Phrase};
use crate::ner::{recognize, NerSpan};
use crate::pos::{tag, PosTag};
use crate::stopwords::is_stopword;
use crate::token::{tokenize, Token};

/// A fully annotated text: tokens with POS tags, shallow phrases and NER
/// spans, all index-aligned.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotated {
    /// The tokens.
    pub tokens: Vec<Token>,
    /// POS tag per token.
    pub pos: Vec<PosTag>,
    /// Shallow phrases (NP/VP/SVO).
    pub phrases: Vec<Phrase>,
    /// Named-entity spans.
    pub ner: Vec<NerSpan>,
}

impl Annotated {
    /// Raw text of the token span `[start, end)`.
    pub fn span_text(&self, start: usize, end: usize) -> String {
        let mut out = String::new();
        self.span_text_into(start, end, &mut out);
        out
    }

    /// Writes the raw text of the token span `[start, end)` into `out`
    /// (cleared first). Lets hot loops reuse one buffer instead of
    /// allocating a `Vec` + `String` per probed span.
    pub fn span_text_into(&self, start: usize, end: usize, out: &mut String) {
        out.clear();
        for (i, t) in self.tokens[start..end.min(self.tokens.len())]
            .iter()
            .enumerate()
        {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&t.raw);
        }
    }

    /// Normalised content words of the whole text (stopwords and bare
    /// punctuation removed) — the bag the semantic operations work on.
    pub fn content_words(&self) -> Vec<&str> {
        self.tokens
            .iter()
            .filter(|t| !t.norm.is_empty() && !is_stopword(&t.norm))
            .map(|t| &*t.norm)
            .collect()
    }

    /// Token count.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// `true` for an empty annotation.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// NER spans whose range lies within `[start, end)`.
    pub fn ner_within(&self, start: usize, end: usize) -> Vec<&NerSpan> {
        self.ner
            .iter()
            .filter(|s| s.start >= start && s.end <= end)
            .collect()
    }
}

/// Annotates a text with the full pipeline.
pub fn annotate(text: &str) -> Annotated {
    let tokens = tokenize(text);
    let pos = tag(&tokens);
    let phrases = chunk(&tokens, &pos);
    let ner = recognize(&tokens, &pos);
    Annotated {
        tokens,
        pos,
        phrases,
        ner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::PhraseKind;
    use crate::ner::NerTag;

    #[test]
    fn end_to_end_annotation() {
        let ann = annotate("Jazz concert hosted by James Wilson at 7 pm");
        assert!(!ann.is_empty());
        assert_eq!(ann.tokens.len(), ann.pos.len());
        assert!(ann.phrases.iter().any(|p| p.kind == PhraseKind::Np));
        assert!(ann.phrases.iter().any(|p| p.kind == PhraseKind::Vp));
        assert!(ann.ner.iter().any(|s| s.tag == NerTag::Person));
        assert!(ann.ner.iter().any(|s| s.tag == NerTag::Time));
    }

    #[test]
    fn span_text_roundtrip() {
        let ann = annotate("hello brave world");
        assert_eq!(ann.span_text(1, 3), "brave world");
        assert_eq!(ann.span_text(0, 99), "hello brave world");
    }

    #[test]
    fn content_words_drop_stopwords() {
        let ann = annotate("the concert and the gala");
        assert_eq!(ann.content_words(), vec!["concert", "gala"]);
    }

    #[test]
    fn ner_within_filters_by_range() {
        let ann = annotate("James Wilson spoke then Mary Davis left");
        let all = ann.ner.len();
        assert!(all >= 2);
        let first_half = ann.ner_within(0, 3);
        assert!(first_half.len() < all);
    }

    #[test]
    fn empty_text() {
        let ann = annotate("");
        assert!(ann.is_empty());
        assert!(ann.phrases.is_empty());
        assert!(ann.ner.is_empty());
    }
}
