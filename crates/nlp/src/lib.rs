//! # vs2-nlp
//!
//! The miniature natural-language stack of the VS2 reproduction.
//!
//! The paper (Sarkhel & Nandi, SIGMOD 2019) consumes a collection of
//! off-the-shelf NLP tools as black-box annotators: a tokenizer and POS
//! tagger, shallow chunking and dependency parses, the Stanford NER,
//! SUTime (TIMEX3), the Google geocoding API, WordNet hypernyms, VerbNet
//! senses, a pre-trained Word2Vec embedding, and the Lesk word-sense
//! disambiguator. None of those are available as offline pure-Rust
//! artefacts, so this crate reimplements each at the fidelity the VS2
//! pipeline actually uses (see DESIGN.md for the substitution table):
//!
//! | module | stands in for |
//! |---|---|
//! | [`token`], [`stopwords`], [`stem`] | tokenisation / normalisation |
//! | [`lexicon`] | gazetteers + topical vocabulary |
//! | [`pos`], [`chunk`] | POS tagging and shallow parsing |
//! | [`ner`] | Stanford NER |
//! | [`timex`] | SUTime / TIMEX3 |
//! | [`geocode`] | Google Maps geocoding |
//! | [`hypernym`] | WordNet hypernym tree |
//! | [`verbs`] | VerbNet senses |
//! | [`embedding`] | pre-trained Word2Vec |
//! | [`wsd`] | Lesk disambiguation |
//! | [`deptree`] | dependency parses fed to TreeMiner |
//! | [`annotate`] | the combined annotation pipeline |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotate;
pub mod chunk;
pub mod deptree;
pub mod embedding;
pub mod geocode;
pub mod hypernym;
pub mod lexicon;
pub mod ner;
pub mod pos;
pub mod stem;
pub mod stopwords;
pub mod timex;
pub mod token;
pub mod verbs;
pub mod wsd;

pub use annotate::{annotate, Annotated};
pub use chunk::{Phrase, PhraseKind};
pub use deptree::DepNode;
pub use embedding::{cosine, Embedder, LexiconEmbedding, TrainedEmbedding, Vector, DIM};
pub use ner::{NerSpan, NerTag};
pub use pos::PosTag;
pub use token::{tokenize, tokenize_call_count, tokenize_each, Token};

#[cfg(test)]
mod proptests {
    use crate::embedding::{cosine, Embedder, LexiconEmbedding};
    use crate::stem::stem;
    use crate::token::tokenize;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn tokenize_never_panics(s in "\\PC{0,200}") {
            let _ = tokenize(&s);
        }

        #[test]
        fn tokenize_preserves_word_count(words in proptest::collection::vec("[a-z]{1,10}", 0..20)) {
            let text = words.join(" ");
            let toks = tokenize(&text);
            prop_assert_eq!(toks.len(), words.len());
        }

        #[test]
        fn stem_reaches_a_fixed_point(w in "[a-z]{4,12}") {
            let once = stem(&w);
            let twice = stem(&once);
            prop_assert_eq!(stem(&twice), twice);
        }

        #[test]
        fn embedding_cosine_bounded(a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
            let e = LexiconEmbedding;
            let c = cosine(&e.embed(&a), &e.embed(&b));
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        }

        #[test]
        fn self_similarity_is_one(a in "[a-z]{1,12}") {
            let e = LexiconEmbedding;
            let c = cosine(&e.embed(&a), &e.embed(&a));
            prop_assert!((c - 1.0).abs() < 1e-9);
        }

        #[test]
        fn annotate_never_panics(s in "\\PC{0,200}") {
            let _ = crate::annotate::annotate(&s);
        }
    }
}
