//! Rule-based part-of-speech tagging.
//!
//! The paper annotates holdout-corpus text and block transcriptions with
//! POS tags (noun/verb phrases, `CD`/`JJ` modifiers — Tables 3 and 4) via
//! "publicly available NLP tools". This tagger reproduces the Penn-style
//! tag subset those patterns consume, using lexicon lookup plus
//! morphological heuristics.

use crate::lexicon::{self, Topic};
use crate::token::Token;

/// Penn-Treebank-style tag subset used by the pattern language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PosTag {
    /// Singular or mass noun.
    Nn,
    /// Plural noun.
    Nns,
    /// Proper noun.
    Nnp,
    /// Verb, base/present form.
    Vb,
    /// Verb, past tense.
    Vbd,
    /// Verb, gerund/present participle.
    Vbg,
    /// Adjective.
    Jj,
    /// Cardinal number (also ordinal-ish mixes like `3rd`, `7pm`).
    Cd,
    /// Determiner.
    Dt,
    /// Preposition / subordinating conjunction.
    In,
    /// Coordinating conjunction.
    Cc,
    /// Personal pronoun.
    Prp,
    /// Adverb.
    Rb,
    /// Symbol (currency marks, standalone `@`, `#`, `$` …).
    Sym,
    /// Punctuation.
    Punct,
}

impl PosTag {
    /// `true` for any noun tag.
    pub fn is_noun(&self) -> bool {
        matches!(self, PosTag::Nn | PosTag::Nns | PosTag::Nnp)
    }

    /// `true` for any verb tag.
    pub fn is_verb(&self) -> bool {
        matches!(self, PosTag::Vb | PosTag::Vbd | PosTag::Vbg)
    }

    /// Short label used by pattern dumps and tree-mining labels.
    pub fn label(&self) -> &'static str {
        match self {
            PosTag::Nn => "NN",
            PosTag::Nns => "NNS",
            PosTag::Nnp => "NNP",
            PosTag::Vb => "VB",
            PosTag::Vbd => "VBD",
            PosTag::Vbg => "VBG",
            PosTag::Jj => "JJ",
            PosTag::Cd => "CD",
            PosTag::Dt => "DT",
            PosTag::In => "IN",
            PosTag::Cc => "CC",
            PosTag::Prp => "PRP",
            PosTag::Rb => "RB",
            PosTag::Sym => "SYM",
            PosTag::Punct => "PUNCT",
        }
    }
}

const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "all", "some", "no", "every", "each",
];
const PREPOSITIONS: &[&str] = &[
    "of", "to", "in", "on", "at", "by", "for", "with", "from", "as", "into", "over", "under",
    "near", "per", "until", "till",
];
const CONJUNCTIONS: &[&str] = &["and", "or", "but", "nor"];
const PRONOUNS: &[&str] = &[
    "it", "you", "we", "they", "he", "she", "i", "your", "our", "their", "his", "her", "its",
];
const BE_VERBS: &[&str] = &["is", "are", "was", "were", "be", "been", "am"];

/// Tags a single token given whether it starts a sentence (sentence-initial
/// capitalisation is not evidence of a proper noun).
pub fn tag_token(tok: &Token, sentence_initial: bool) -> PosTag {
    let norm: &str = &tok.norm;
    if norm.is_empty() {
        return if tok
            .raw
            .chars()
            .all(|c| matches!(c, '$' | '#' | '@' | '%' | '&' | '+' | '-' | '*' | '/'))
            && !tok.raw.is_empty()
        {
            PosTag::Sym
        } else {
            PosTag::Punct
        };
    }
    if tok.is_numeric() {
        return PosTag::Cd;
    }
    if tok.is_alphanumeric_mix() {
        return PosTag::Cd;
    }
    if DETERMINERS.contains(&norm) {
        return PosTag::Dt;
    }
    if PREPOSITIONS.contains(&norm) {
        return PosTag::In;
    }
    if CONJUNCTIONS.contains(&norm) {
        return PosTag::Cc;
    }
    if PRONOUNS.contains(&norm) {
        return PosTag::Prp;
    }
    if BE_VERBS.contains(&norm) {
        return PosTag::Vb;
    }
    match lexicon::topic_of(norm) {
        Some(Topic::ActionVerb) => {
            return if norm.ends_with("ing") {
                PosTag::Vbg
            } else if norm.ends_with("ed") {
                PosTag::Vbd
            } else {
                PosTag::Vb
            };
        }
        Some(Topic::Descriptive) => return PosTag::Jj,
        Some(
            Topic::PersonFirst
            | Topic::PersonLast
            | Topic::Organization
            | Topic::City
            | Topic::State
            | Topic::Month
            | Topic::Weekday,
        ) => return PosTag::Nnp,
        Some(
            Topic::Event
            | Topic::Place
            | Topic::Measure
            | Topic::Estate
            | Topic::Structure
            | Topic::Contact
            | Topic::Price
            | Topic::Time
            | Topic::Tax
            | Topic::StreetSuffix,
        ) => {
            return if norm.ends_with('s') && norm.len() > 3 {
                PosTag::Nns
            } else {
                PosTag::Nn
            };
        }
        _ => {}
    }
    // Morphological heuristics for out-of-lexicon words.
    if norm.ends_with("ly") {
        return PosTag::Rb;
    }
    if norm.ends_with("ing") && norm.len() > 4 {
        return PosTag::Vbg;
    }
    if norm.ends_with("ed") && norm.len() > 3 {
        return PosTag::Vbd;
    }
    if ["ous", "ful", "ive", "ble"]
        .iter()
        .any(|s| norm.ends_with(s))
        || (norm.ends_with("al") && norm.len() > 4)
    {
        return PosTag::Jj;
    }
    if tok.is_capitalized() && !sentence_initial {
        return PosTag::Nnp;
    }
    if norm.ends_with('s') && norm.len() > 3 {
        return PosTag::Nns;
    }
    if tok.is_capitalized() {
        // Sentence-initial capitalised unknown word: prefer NNP in
        // poster-like text where most lines are fragments, not sentences.
        return PosTag::Nnp;
    }
    PosTag::Nn
}

/// Tags a token sequence. The first token, and each token following
/// sentence-final punctuation, is considered sentence-initial.
pub fn tag(tokens: &[Token]) -> Vec<PosTag> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut sentence_initial = true;
    for t in tokens {
        out.push(tag_token(t, sentence_initial));
        sentence_initial = matches!(&*t.raw, "." | "!" | "?");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn tags_of(text: &str) -> Vec<PosTag> {
        tag(&tokenize(text))
    }

    #[test]
    fn numbers_and_mixes_are_cd() {
        assert_eq!(tags_of("2,465"), vec![PosTag::Cd]);
        assert_eq!(tags_of("7pm"), vec![PosTag::Cd]);
        assert_eq!(tags_of("3.5"), vec![PosTag::Cd]);
    }

    #[test]
    fn lexicon_verbs() {
        assert_eq!(tags_of("hosted")[0], PosTag::Vbd);
        assert_eq!(tags_of("featuring")[0], PosTag::Vbg);
        assert_eq!(tags_of("host")[0], PosTag::Vb);
    }

    #[test]
    fn proper_nouns_from_gazetteers() {
        assert_eq!(tags_of("columbus")[0], PosTag::Nnp);
        assert_eq!(tags_of("james")[0], PosTag::Nnp);
        assert_eq!(tags_of("january")[0], PosTag::Nnp);
    }

    #[test]
    fn common_nouns_with_plurals() {
        assert_eq!(tags_of("acres")[0], PosTag::Nns);
        assert_eq!(tags_of("building")[0], PosTag::Nn);
        assert_eq!(tags_of("concert")[0], PosTag::Nn);
    }

    #[test]
    fn function_words() {
        let t = tags_of("the concert at noon and");
        assert_eq!(
            t,
            vec![PosTag::Dt, PosTag::Nn, PosTag::In, PosTag::Nn, PosTag::Cc]
        );
    }

    #[test]
    fn capitalization_mid_sentence_is_nnp() {
        let t = tags_of("meet Zorblax tomorrow");
        assert_eq!(t[1], PosTag::Nnp);
    }

    #[test]
    fn morphology_for_unknown_words() {
        assert_eq!(tags_of("quickly")[0], PosTag::Rb);
        assert_eq!(tags_of("glimmering")[0], PosTag::Vbg);
        assert_eq!(tags_of("fabulous")[0], PosTag::Jj);
    }

    #[test]
    fn punctuation_and_symbols() {
        let toks = tokenize("free ! $");
        let t = tag(&toks);
        assert_eq!(t[1], PosTag::Punct);
        assert_eq!(t[2], PosTag::Sym);
    }

    #[test]
    fn sentence_boundary_resets_initial_flag() {
        // After ".", a capitalised known-generic word is not NNP.
        let t = tags_of("end . The concert");
        assert_eq!(t[2], PosTag::Dt);
    }

    #[test]
    fn predicates() {
        assert!(PosTag::Nnp.is_noun());
        assert!(PosTag::Vbg.is_verb());
        assert!(!PosTag::Jj.is_noun());
        assert_eq!(PosTag::Cd.label(), "CD");
    }
}
