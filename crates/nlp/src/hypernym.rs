//! A miniature hypernym taxonomy.
//!
//! Stand-in for the WordNet-style hypernym tree of the paper's reference
//! [42]: noun POS tags in the holdout corpus are "annotated with their
//! respective Hypernym senses", and the *Property Size* pattern of Table 4
//! requires "noun POS tags with senses measure / structure / estate in the
//! Hypernym Tree". The taxonomy maps the reproduction's noun vocabulary to
//! short hypernym chains rooted at `entity`.

use crate::lexicon::{self, Topic};
use crate::stem::stem;

/// A coarse hypernym sense — the first step of a word's hypernym chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Quantities and units (`acre`, `sqft`, `beds` …).
    Measure,
    /// Built structures (`building`, `floor`, `suite` …).
    Structure,
    /// Property / possession (`listing`, `lease`, `parcel` …).
    Estate,
    /// Social gatherings (`concert`, `workshop` …).
    Event,
    /// People (`broker`, `agent`, first names …).
    Person,
    /// Groups and institutions.
    Group,
    /// Places and regions.
    Location,
    /// Temporal entities.
    TimeEntity,
    /// Financial instruments and amounts.
    Money,
    /// Communication channels.
    Communication,
    /// Anything else.
    Entity,
}

impl Sense {
    /// Short label used in patterns and tree-mining node labels.
    pub fn label(&self) -> &'static str {
        match self {
            Sense::Measure => "measure",
            Sense::Structure => "structure",
            Sense::Estate => "estate",
            Sense::Event => "event",
            Sense::Person => "person",
            Sense::Group => "group",
            Sense::Location => "location",
            Sense::TimeEntity => "time",
            Sense::Money => "money",
            Sense::Communication => "communication",
            Sense::Entity => "entity",
        }
    }
}

/// Hypernym chain of a sense up to the root (`entity`), most specific
/// first.
pub fn chain(sense: Sense) -> &'static [Sense] {
    match sense {
        Sense::Measure => &[Sense::Measure, Sense::Entity],
        Sense::Structure => &[Sense::Structure, Sense::Location, Sense::Entity],
        Sense::Estate => &[Sense::Estate, Sense::Money, Sense::Entity],
        Sense::Event => &[Sense::Event, Sense::Entity],
        Sense::Person => &[Sense::Person, Sense::Entity],
        Sense::Group => &[Sense::Group, Sense::Entity],
        Sense::Location => &[Sense::Location, Sense::Entity],
        Sense::TimeEntity => &[Sense::TimeEntity, Sense::Entity],
        Sense::Money => &[Sense::Money, Sense::Entity],
        Sense::Communication => &[Sense::Communication, Sense::Entity],
        Sense::Entity => &[Sense::Entity],
    }
}

const PERSON_ROLES: &[&str] = &[
    "broker",
    "agent",
    "owner",
    "tenant",
    "landlord",
    "speaker",
    "organizer",
    "host",
    "artist",
    "performer",
    "instructor",
    "teacher",
    "professor",
    "taxpayer",
    "spouse",
    "dependent",
];

/// Primary hypernym sense of a (lower-cased) noun. Stems the word first so
/// inflectional variants resolve identically.
pub fn sense_of(word: &str) -> Sense {
    let w = word.to_lowercase();
    let stemmed = stem(&w);
    if PERSON_ROLES.contains(&w.as_str()) || PERSON_ROLES.contains(&stemmed.as_str()) {
        return Sense::Person;
    }
    let topic = lexicon::topic_of(&w)
        .or_else(|| lexicon::topic_of(&stemmed))
        .or_else(|| lexicon::topic_of_fuzzy(&w));
    match topic {
        Some(Topic::Measure) => Sense::Measure,
        Some(Topic::Structure) => Sense::Structure,
        Some(Topic::Estate) => Sense::Estate,
        Some(Topic::Event) => Sense::Event,
        Some(Topic::PersonFirst | Topic::PersonLast) => Sense::Person,
        Some(Topic::Organization) => Sense::Group,
        Some(Topic::City | Topic::State | Topic::Place | Topic::StreetSuffix) => Sense::Location,
        Some(Topic::Time | Topic::Month | Topic::Weekday) => Sense::TimeEntity,
        Some(Topic::Price | Topic::Tax) => Sense::Money,
        Some(Topic::Contact) => Sense::Communication,
        _ => Sense::Entity,
    }
}

/// `true` when `word`'s hypernym chain passes through `target` — the
/// membership test the Table 4 patterns use.
pub fn has_sense(word: &str, target: Sense) -> bool {
    chain(sense_of(word)).contains(&target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_words() {
        assert_eq!(sense_of("acres"), Sense::Measure);
        assert_eq!(sense_of("sqft"), Sense::Measure);
        assert_eq!(sense_of("beds"), Sense::Measure);
    }

    #[test]
    fn structure_and_estate() {
        assert_eq!(sense_of("building"), Sense::Structure);
        assert_eq!(sense_of("warehouse"), Sense::Structure);
        assert_eq!(sense_of("listing"), Sense::Estate);
        assert_eq!(sense_of("lease"), Sense::Estate);
    }

    #[test]
    fn person_roles() {
        assert_eq!(sense_of("broker"), Sense::Person);
        assert_eq!(sense_of("james"), Sense::Person);
        assert_eq!(sense_of("Brokers"), Sense::Person, "stemming applies");
    }

    #[test]
    fn chains_end_at_entity() {
        for s in [
            Sense::Measure,
            Sense::Structure,
            Sense::Estate,
            Sense::Person,
            Sense::Entity,
        ] {
            assert_eq!(*chain(s).last().unwrap(), Sense::Entity);
            assert_eq!(chain(s)[0], s);
        }
    }

    #[test]
    fn has_sense_walks_the_chain() {
        assert!(has_sense("building", Sense::Structure));
        assert!(has_sense("building", Sense::Location), "via chain");
        assert!(has_sense("building", Sense::Entity));
        assert!(!has_sense("building", Sense::Measure));
    }

    #[test]
    fn unknown_words_are_plain_entities() {
        assert_eq!(sense_of("zorblax"), Sense::Entity);
        assert!(has_sense("zorblax", Sense::Entity));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Sense::Measure.label(), "measure");
        assert_eq!(Sense::Estate.label(), "estate");
    }
}
