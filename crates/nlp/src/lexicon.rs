//! The shared lexical database of the reproduction.
//!
//! The paper leans on several external lexical resources — gazetteers
//! behind the Stanford NER, WordNet hypernyms, VerbNet senses, and the
//! vocabulary implicitly covered by the pre-trained Word2Vec embedding.
//! This module is their offline stand-in: a topic-organised vocabulary
//! that simultaneously drives (a) the gazetteer NER, (b) the lexicon-topic
//! embedding (words of one topic embed near each other), and (c) the
//! synthetic document generators in `vs2-synth`, which draw their surface
//! text from these same pools so the annotators and the generators agree
//! on the vocabulary.

use std::collections::HashMap;
use std::sync::OnceLock;

/// Semantic topic of a lexicon word. Topics are deliberately coarse — they
/// correspond to the semantic fields that the paper's entities live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Topic {
    /// Given names of people.
    PersonFirst,
    /// Family names of people.
    PersonLast,
    /// Organisation names and suffixes (Inc, LLC, University …).
    Organization,
    /// Event-domain nouns (concert, workshop, seminar …).
    Event,
    /// Time-of-day and scheduling words (pm, noon, doors …).
    Time,
    /// Month names.
    Month,
    /// Weekday names.
    Weekday,
    /// Street-type suffixes (St, Ave, Blvd …).
    StreetSuffix,
    /// City names.
    City,
    /// US state names and postal abbreviations.
    State,
    /// Venue / place nouns (hall, center, park …).
    Place,
    /// Units of measure (acres, sqft, beds …).
    Measure,
    /// Real-estate domain nouns (listing, property, lease …).
    Estate,
    /// Building/structure nouns (building, floor, suite …).
    Structure,
    /// Contact-channel words (phone, email, call …).
    Contact,
    /// Price and money words (price, rent, USD …).
    Price,
    /// Descriptive adjectives used in flyers and posters.
    Descriptive,
    /// Verbs of organising/presenting (VerbNet-like senses live here).
    ActionVerb,
    /// Tax-form vocabulary (wages, deduction, filing …).
    Tax,
    /// Function words and everything else.
    Generic,
}

/// All topics, in a stable order (used to allocate embedding centroids).
pub const ALL_TOPICS: [Topic; 20] = [
    Topic::PersonFirst,
    Topic::PersonLast,
    Topic::Organization,
    Topic::Event,
    Topic::Time,
    Topic::Month,
    Topic::Weekday,
    Topic::StreetSuffix,
    Topic::City,
    Topic::State,
    Topic::Place,
    Topic::Measure,
    Topic::Estate,
    Topic::Structure,
    Topic::Contact,
    Topic::Price,
    Topic::Descriptive,
    Topic::ActionVerb,
    Topic::Tax,
    Topic::Generic,
];

/// Given names (a deliberately diverse, fixed pool).
pub const PERSON_FIRST: &[&str] = &[
    "james",
    "mary",
    "robert",
    "patricia",
    "john",
    "jennifer",
    "michael",
    "linda",
    "david",
    "elizabeth",
    "william",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "carlos",
    "karen",
    "daniel",
    "lisa",
    "matthew",
    "nancy",
    "anthony",
    "betty",
    "aisha",
    "sandra",
    "rahul",
    "ashley",
    "wei",
    "emily",
    "omar",
    "donna",
    "yuki",
    "michelle",
    "priya",
    "carol",
    "diego",
    "amanda",
    "fatima",
    "melissa",
    "ivan",
    "deborah",
    "chen",
    "stephanie",
    "amara",
    "rebecca",
    "kofi",
    "laura",
];

/// Family names.
pub const PERSON_LAST: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
    "walker",
    "young",
    "allen",
    "king",
    "wright",
    "scott",
    "torres",
    "nguyen",
    "hill",
    "flores",
    "green",
    "adams",
    "nelson",
    "baker",
    "hall",
    "rivera",
    "campbell",
    "mitchell",
    "carter",
    "roberts",
    "sarkhel",
    "nandi",
];

/// Organisation head nouns and suffixes.
pub const ORGANIZATION: &[&str] = &[
    "inc",
    "llc",
    "ltd",
    "corp",
    "corporation",
    "company",
    "group",
    "university",
    "college",
    "institute",
    "society",
    "association",
    "foundation",
    "club",
    "council",
    "committee",
    "department",
    "laboratory",
    "realty",
    "properties",
    "brokerage",
    "holdings",
    "partners",
    "agency",
    "bureau",
    "center",
    "chamber",
    "coalition",
    "consortium",
    "guild",
    "league",
    "ministry",
    "network",
    "office",
    "trust",
    "union",
    "ventures",
    "enterprises",
    "studios",
];

/// Event-domain nouns.
pub const EVENT: &[&str] = &[
    "event",
    "concert",
    "workshop",
    "seminar",
    "lecture",
    "meetup",
    "festival",
    "conference",
    "symposium",
    "talk",
    "class",
    "course",
    "session",
    "hackathon",
    "fundraiser",
    "gala",
    "exhibition",
    "fair",
    "show",
    "screening",
    "recital",
    "performance",
    "tournament",
    "webinar",
    "bootcamp",
    "orientation",
    "ceremony",
    "celebration",
    "parade",
    "marathon",
    "auction",
    "tasting",
    "retreat",
    "panel",
    "keynote",
    "premiere",
    "launch",
    "openhouse",
];

/// Time-of-day and scheduling words.
pub const TIME: &[&str] = &[
    "am",
    "pm",
    "a.m",
    "p.m",
    "noon",
    "midnight",
    "morning",
    "afternoon",
    "evening",
    "night",
    "doors",
    "oclock",
    "o'clock",
    "sharp",
    "daily",
    "weekly",
    "hourly",
    "schedule",
    "time",
    "starts",
    "ends",
    "until",
    "till",
    "today",
    "tonight",
    "tomorrow",
];

/// Month names and their usual abbreviations.
pub const MONTH: &[&str] = &[
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
    "jan",
    "feb",
    "mar",
    "apr",
    "jun",
    "jul",
    "aug",
    "sep",
    "sept",
    "oct",
    "nov",
    "dec",
];

/// Weekday names and abbreviations.
pub const WEEKDAY: &[&str] = &[
    "monday",
    "tuesday",
    "wednesday",
    "thursday",
    "friday",
    "saturday",
    "sunday",
    "mon",
    "tue",
    "tues",
    "wed",
    "thu",
    "thur",
    "thurs",
    "fri",
    "sat",
    "sun",
];

/// Street-type suffixes (with and without periods normalised away).
pub const STREET_SUFFIX: &[&str] = &[
    "street",
    "st",
    "avenue",
    "ave",
    "boulevard",
    "blvd",
    "road",
    "rd",
    "drive",
    "dr",
    "lane",
    "ln",
    "court",
    "ct",
    "place",
    "pl",
    "way",
    "terrace",
    "ter",
    "circle",
    "cir",
    "parkway",
    "pkwy",
    "highway",
    "hwy",
    "square",
    "sq",
    "trail",
    "trl",
    "alley",
];

/// City names (midwestern-flavoured, as in the paper's D3).
pub const CITY: &[&str] = &[
    "columbus",
    "cleveland",
    "cincinnati",
    "dayton",
    "toledo",
    "akron",
    "dublin",
    "westerville",
    "gahanna",
    "hilliard",
    "grandview",
    "bexley",
    "worthington",
    "delaware",
    "newark",
    "springfield",
    "lancaster",
    "marion",
    "mansfield",
    "zanesville",
    "chicago",
    "pittsburgh",
    "indianapolis",
    "louisville",
    "detroit",
    "buffalo",
    "rochester",
    "albany",
    "syracuse",
    "brooklyn",
    "queens",
    "manhattan",
];

/// US state names and postal abbreviations. `in` (Indiana) is omitted
/// deliberately — it is unresolvably ambiguous with the preposition.
pub const STATE: &[&str] = &[
    "ohio",
    "oh",
    "newyork",
    "ny",
    "michigan",
    "mi",
    "indiana",
    "kentucky",
    "ky",
    "pennsylvania",
    "pa",
    "illinois",
    "il",
    "wisconsin",
    "wi",
    "westvirginia",
    "wv",
    "california",
    "ca",
    "texas",
    "tx",
    "florida",
    "fl",
];

/// Venue / place nouns.
pub const PLACE: &[&str] = &[
    "hall",
    "auditorium",
    "theater",
    "theatre",
    "stadium",
    "arena",
    "park",
    "plaza",
    "campus",
    "library",
    "museum",
    "gallery",
    "church",
    "temple",
    "ballroom",
    "pavilion",
    "gym",
    "gymnasium",
    "cafeteria",
    "lounge",
    "rooftop",
    "garden",
    "courtyard",
    "atrium",
    "venue",
    "room",
    "location",
    "address",
    "downtown",
];

/// Units of measure and size attributes.
pub const MEASURE: &[&str] = &[
    "acres",
    "acre",
    "sqft",
    "sf",
    "feet",
    "ft",
    "foot",
    "beds",
    "bed",
    "baths",
    "bath",
    "bedrooms",
    "bedroom",
    "bathrooms",
    "bathroom",
    "stories",
    "story",
    "units",
    "unit",
    "spaces",
    "space",
    "miles",
    "mile",
    "yards",
    "meters",
    "hectares",
    "rooms",
    "parking",
];

/// Real-estate domain nouns.
pub const ESTATE: &[&str] = &[
    "property",
    "listing",
    "lease",
    "sale",
    "rent",
    "rental",
    "estate",
    "realty",
    "zoned",
    "zoning",
    "commercial",
    "residential",
    "retail",
    "industrial",
    "land",
    "lot",
    "parcel",
    "acreage",
    "investment",
    "tenant",
    "landlord",
    "owner",
    "broker",
    "agent",
    "mls",
    "available",
    "occupancy",
    "vacancy",
    "frontage",
];

/// Building / structure nouns.
pub const STRUCTURE: &[&str] = &[
    "building",
    "floor",
    "suite",
    "warehouse",
    "office",
    "storefront",
    "basement",
    "garage",
    "roof",
    "lobby",
    "elevator",
    "tower",
    "complex",
    "condo",
    "condominium",
    "apartment",
    "duplex",
    "townhouse",
    "house",
    "home",
    "barn",
    "shed",
    "facility",
    "structure",
    "wing",
    "storage",
    "dock",
    "loft",
];

/// Contact-channel words.
pub const CONTACT: &[&str] = &[
    "phone",
    "tel",
    "telephone",
    "call",
    "email",
    "e-mail",
    "mail",
    "contact",
    "fax",
    "cell",
    "mobile",
    "office",
    "direct",
    "info",
    "rsvp",
    "register",
    "registration",
    "tickets",
    "website",
    "web",
    "visit",
    "inquiries",
];

/// Price and money words.
pub const PRICE: &[&str] = &[
    "price",
    "cost",
    "fee",
    "free",
    "admission",
    "rent",
    "deposit",
    "usd",
    "dollars",
    "dollar",
    "month",
    "year",
    "annual",
    "monthly",
    "negotiable",
    "asking",
    "offer",
    "discount",
    "sale",
    "pricing",
    "rate",
    "per",
];

/// Descriptive adjectives used in posters and flyers.
pub const DESCRIPTIVE: &[&str] = &[
    "new",
    "grand",
    "annual",
    "live",
    "special",
    "exclusive",
    "prime",
    "spacious",
    "modern",
    "renovated",
    "historic",
    "beautiful",
    "stunning",
    "excellent",
    "premier",
    "famous",
    "amazing",
    "unique",
    "rare",
    "huge",
    "cozy",
    "bright",
    "quiet",
    "busy",
    "local",
    "international",
    "community",
    "public",
    "private",
    "open",
    "great",
    "ideal",
    "perfect",
    "convenient",
    "affordable",
    "luxurious",
    "charming",
];

/// Verbs of organising / presenting / appearing.
pub const ACTION_VERB: &[&str] = &[
    "hosted",
    "hosts",
    "host",
    "organized",
    "organizes",
    "organize",
    "presented",
    "presents",
    "present",
    "sponsored",
    "sponsors",
    "sponsor",
    "featuring",
    "features",
    "featured",
    "brought",
    "brings",
    "bring",
    "offered",
    "offers",
    "offer",
    "listed",
    "lists",
    "list",
    "managed",
    "manages",
    "manage",
    "directed",
    "directs",
    "produced",
    "produces",
    "curated",
    "join",
    "joins",
    "attend",
    "attends",
    "perform",
    "performs",
    "performing",
    "speaks",
    "speaking",
    "led",
    "leads",
    "teaches",
    "taught",
    "contact",
    "call",
    "visit",
    "appears",
    "appearing",
];

/// Tax-form vocabulary.
pub const TAX: &[&str] = &[
    "wages",
    "salaries",
    "tips",
    "income",
    "interest",
    "dividends",
    "refund",
    "owed",
    "deduction",
    "deductions",
    "exemption",
    "exemptions",
    "filing",
    "status",
    "dependent",
    "dependents",
    "taxable",
    "withheld",
    "withholding",
    "credit",
    "credits",
    "adjusted",
    "gross",
    "schedule",
    "form",
    "line",
    "amount",
    "total",
    "spouse",
    "employer",
    "social",
    "security",
    "pension",
    "annuity",
    "royalties",
    "alimony",
    "business",
    "capital",
    "gain",
    "loss",
    "ira",
    "unemployment",
    "compensation",
    "estimated",
    "payments",
    "penalty",
    "signature",
    "occupation",
    "taxpayer",
];

/// Generic function words (also the stopword list's backbone).
pub const GENERIC: &[&str] = &[
    "the",
    "a",
    "an",
    "and",
    "or",
    "but",
    "of",
    "to",
    "in",
    "on",
    "at",
    "by",
    "for",
    "with",
    "from",
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "this",
    "that",
    "these",
    "those",
    "it",
    "its",
    "as",
    "all",
    "more",
    "most",
    "other",
    "some",
    "such",
    "no",
    "not",
    "only",
    "own",
    "same",
    "so",
    "than",
    "too",
    "very",
    "can",
    "will",
    "just",
    "your",
    "our",
    "their",
    "his",
    "her",
    "you",
    "we",
    "they",
    "please",
    "welcome",
    "details",
    "information",
];

fn topic_pools() -> &'static [(Topic, &'static [&'static str])] {
    &[
        (Topic::PersonFirst, PERSON_FIRST),
        (Topic::PersonLast, PERSON_LAST),
        (Topic::Organization, ORGANIZATION),
        (Topic::Event, EVENT),
        (Topic::Time, TIME),
        (Topic::Month, MONTH),
        (Topic::Weekday, WEEKDAY),
        (Topic::StreetSuffix, STREET_SUFFIX),
        (Topic::City, CITY),
        (Topic::State, STATE),
        (Topic::Place, PLACE),
        (Topic::Measure, MEASURE),
        (Topic::Estate, ESTATE),
        (Topic::Structure, STRUCTURE),
        (Topic::Contact, CONTACT),
        (Topic::Price, PRICE),
        (Topic::Descriptive, DESCRIPTIVE),
        (Topic::ActionVerb, ACTION_VERB),
        (Topic::Tax, TAX),
        (Topic::Generic, GENERIC),
    ]
}

fn index() -> &'static HashMap<&'static str, Topic> {
    static INDEX: OnceLock<HashMap<&'static str, Topic>> = OnceLock::new();
    INDEX.get_or_init(|| {
        let mut m = HashMap::new();
        // Earlier pools win on collision, so order pools from most to least
        // specific; Generic never overrides a content topic.
        for (topic, words) in topic_pools() {
            for w in *words {
                m.entry(*w).or_insert(*topic);
            }
        }
        m
    })
}

/// Topic of a (lower-cased) word, when it is in the lexicon.
pub fn topic_of(word: &str) -> Option<Topic> {
    index().get(word).copied()
}

/// `true` when two words are within edit distance one (one substitution,
/// insertion or deletion) — the OCR channel's typical corruption.
pub fn within_edit_one(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let (la, lb) = (a.len(), b.len());
    if la.abs_diff(lb) > 1 {
        return false;
    }
    if la == lb {
        // Substitution only.
        let mut diffs = 0;
        for i in 0..la {
            if a[i] != b[i] {
                diffs += 1;
                if diffs > 1 {
                    return false;
                }
            }
        }
        true
    } else {
        // One insertion/deletion: align the longer against the shorter.
        let (long, short) = if la > lb { (a, b) } else { (b, a) };
        let mut i = 0;
        let mut j = 0;
        let mut skipped = false;
        while i < long.len() && j < short.len() {
            if long[i] == short[j] {
                i += 1;
                j += 1;
            } else if !skipped {
                skipped = true;
                i += 1;
            } else {
                return false;
            }
        }
        true
    }
}

/// Topic of a word allowing one OCR-style edit (substitution, insertion
/// or deletion) for words of five or more characters — the transcription
/// noise channel's most common corruption. Exact matches win; fuzzy
/// matches scan the content pools only (never `Generic`, where "the" and
/// "she" would collide).
pub fn topic_of_fuzzy(word: &str) -> Option<Topic> {
    if let Some(t) = topic_of(word) {
        return Some(t);
    }
    if word.len() < 5 || !word.chars().all(|c| c.is_ascii_alphanumeric()) {
        return None;
    }
    // Normalise the classic digit confusions before scanning.
    let normalised: String = word
        .chars()
        .map(|c| match c {
            '0' => 'o',
            '1' => 'l',
            '5' => 's',
            '6' => 'b',
            _ => c,
        })
        .collect();
    if let Some(t) = topic_of(&normalised) {
        return Some(t);
    }
    for (topic, words) in topic_pools() {
        if *topic == Topic::Generic {
            continue;
        }
        for w in *words {
            if w.len() >= 5 && within_edit_one(&normalised, w) {
                return Some(*topic);
            }
        }
    }
    None
}

/// Words belonging to a topic.
pub fn words_of(topic: Topic) -> &'static [&'static str] {
    topic_pools()
        .iter()
        .find(|(t, _)| *t == topic)
        .map(|(_, w)| *w)
        .unwrap_or(&[])
}

/// `true` when the word appears in any pool.
pub fn contains(word: &str) -> bool {
    index().contains_key(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_topic_has_a_pool() {
        for t in ALL_TOPICS {
            assert!(!words_of(t).is_empty(), "topic {t:?} has no words");
        }
    }

    #[test]
    fn lookup_returns_expected_topics() {
        assert_eq!(topic_of("concert"), Some(Topic::Event));
        assert_eq!(topic_of("acres"), Some(Topic::Measure));
        assert_eq!(topic_of("columbus"), Some(Topic::City));
        assert_eq!(topic_of("hosted"), Some(Topic::ActionVerb));
        assert_eq!(topic_of("wages"), Some(Topic::Tax));
        assert_eq!(topic_of("qwertyuiop"), None);
    }

    #[test]
    fn collisions_resolve_to_most_specific_pool() {
        // "office" appears in ORGANIZATION, STRUCTURE and CONTACT; the
        // first pool in declaration order wins.
        assert_eq!(topic_of("office"), Some(Topic::Organization));
        // "the" is generic.
        assert_eq!(topic_of("the"), Some(Topic::Generic));
    }

    #[test]
    fn pools_are_lowercase() {
        for (t, words) in [
            (Topic::PersonFirst, PERSON_FIRST),
            (Topic::Event, EVENT),
            (Topic::Tax, TAX),
        ] {
            for w in words {
                assert_eq!(*w, w.to_lowercase(), "{t:?} word {w} not lowercase");
            }
        }
    }

    #[test]
    fn contains_is_consistent_with_topic_of() {
        assert!(contains("january"));
        assert!(!contains("zzzz"));
    }
}
