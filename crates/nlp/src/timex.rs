//! TIMEX3-lite time-expression normalisation.
//!
//! Stand-in for SUTime (the paper's reference [5]): Table 3 requires "noun
//! phrases with valid TIMEX3 tags" for the *Event Time* entity. A span is
//! considered TIMEX3-valid exactly when this module can normalise it.

use crate::lexicon::{self, Topic};

/// Kind of a normalised time expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimexKind {
    /// A clock time.
    Time,
    /// A calendar date (possibly underspecified).
    Date,
}

/// A normalised TIMEX3-style value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timex {
    /// Whether the expression denotes a time or a date.
    pub kind: TimexKind,
    /// ISO-flavoured normal form, e.g. `T19:00`, `2019-04-05`, `XXXX-WXX-6`.
    pub value: String,
}

fn month_number(word: &str) -> Option<u32> {
    const MONTHS: [(&str, u32); 12] = [
        ("jan", 1),
        ("feb", 2),
        ("mar", 3),
        ("apr", 4),
        ("may", 5),
        ("jun", 6),
        ("jul", 7),
        ("aug", 8),
        ("sep", 9),
        ("oct", 10),
        ("nov", 11),
        ("dec", 12),
    ];
    let w = word.to_lowercase();
    MONTHS
        .iter()
        .find(|(prefix, _)| w.starts_with(prefix))
        .map(|(_, n)| *n)
}

fn weekday_number(word: &str) -> Option<u32> {
    const DAYS: [(&str, u32); 7] = [
        ("mon", 1),
        ("tue", 2),
        ("wed", 3),
        ("thu", 4),
        ("fri", 5),
        ("sat", 6),
        ("sun", 7),
    ];
    let w = word.to_lowercase();
    DAYS.iter()
        .find(|(prefix, _)| w.starts_with(prefix))
        .map(|(_, n)| *n)
}

fn parse_clock(tok: &str) -> Option<(u32, u32)> {
    if let Some((h, m)) = tok.split_once(':') {
        let h: u32 = h.parse().ok()?;
        let m: u32 = m.parse().ok()?;
        if h < 24 && m < 60 {
            return Some((h, m));
        }
        return None;
    }
    let h: u32 = tok.parse().ok()?;
    if (1..=12).contains(&h) {
        Some((h, 0))
    } else {
        None
    }
}

/// Attempts to normalise a textual span into a TIMEX3 value.
///
/// Recognised forms: `7 pm`, `7:30 am`, `7pm`, `19:00`, `noon`, `midnight`,
/// `April 5`, `April 5 2019`, `04/01/2019`, `2019-04-01`, weekday names.
pub fn normalize(text: &str) -> Option<Timex> {
    let words: Vec<String> = text
        .split_whitespace()
        .map(|w| {
            w.trim_matches(|c: char| matches!(c, ',' | '.' | '!' | '?' | '(' | ')'))
                .to_lowercase()
        })
        .filter(|w| !w.is_empty())
        .collect();
    if words.is_empty() {
        return None;
    }

    // Fixed anchors.
    if words.len() == 1 {
        match words[0].as_str() {
            "noon" => {
                return Some(Timex {
                    kind: TimexKind::Time,
                    value: "T12:00".into(),
                })
            }
            "midnight" => {
                return Some(Timex {
                    kind: TimexKind::Time,
                    value: "T00:00".into(),
                })
            }
            _ => {}
        }
    }

    // Weekday.
    if let Some(d) = words
        .first()
        .filter(|w| lexicon::topic_of(w) == Some(Topic::Weekday))
        .and_then(|w| weekday_number(w))
    {
        return Some(Timex {
            kind: TimexKind::Date,
            value: format!("XXXX-WXX-{d}"),
        });
    }

    // Month day (, year)?
    if lexicon::topic_of(&words[0]) == Some(Topic::Month) {
        let m = month_number(&words[0])?;
        let day: Option<u32> = words
            .get(1)
            .and_then(|w| w.parse().ok())
            .filter(|d| (1..=31).contains(d));
        let year: Option<u32> = words
            .get(2)
            .and_then(|w| w.parse().ok())
            .filter(|y| (1900..=2100).contains(y));
        return match (day, year) {
            (Some(d), Some(y)) => Some(Timex {
                kind: TimexKind::Date,
                value: format!("{y:04}-{m:02}-{d:02}"),
            }),
            (Some(d), None) => Some(Timex {
                kind: TimexKind::Date,
                value: format!("XXXX-{m:02}-{d:02}"),
            }),
            _ => Some(Timex {
                kind: TimexKind::Date,
                value: format!("XXXX-{m:02}"),
            }),
        };
    }

    // Slashed / dashed numeric dates.
    if words.len() == 1 && (words[0].contains('/') || words[0].matches('-').count() == 2) {
        let groups: Vec<&str> = words[0].split(['/', '-']).collect();
        if groups.len() >= 2
            && groups
                .iter()
                .all(|g| g.chars().all(|c| c.is_ascii_digit()) && !g.is_empty())
        {
            let nums: Vec<u32> = groups.iter().filter_map(|g| g.parse().ok()).collect();
            if nums.len() == groups.len() {
                // year-first or month-first
                if nums[0] >= 1900 && nums.len() == 3 {
                    if nums[1] >= 1 && nums[1] <= 12 && nums[2] >= 1 && nums[2] <= 31 {
                        return Some(Timex {
                            kind: TimexKind::Date,
                            value: format!("{:04}-{:02}-{:02}", nums[0], nums[1], nums[2]),
                        });
                    }
                    return None;
                } else if nums[0] >= 1 && nums[0] <= 12 && nums[1] >= 1 && nums[1] <= 31 {
                    let year = nums.get(2).copied();
                    return Some(Timex {
                        kind: TimexKind::Date,
                        value: match year {
                            Some(y) if y >= 1900 => format!("{y:04}-{:02}-{:02}", nums[0], nums[1]),
                            Some(y) => format!("20{y:02}-{:02}-{:02}", nums[0], nums[1]),
                            None => format!("XXXX-{:02}-{:02}", nums[0], nums[1]),
                        },
                    });
                }
            }
        }
        return None;
    }

    // Clock forms: `<clock>` [am|pm] or fused `7pm`.
    let (clock_word, meridiem) =
        if words.len() >= 2 && matches!(words[1].as_str(), "am" | "pm" | "a.m" | "p.m") {
            (words[0].as_str(), Some(words[1].starts_with('p')))
        } else if words.len() == 1 {
            let w = words[0].as_str();
            if let Some(body) = w.strip_suffix("pm").or_else(|| w.strip_suffix("p.m")) {
                (body, Some(true))
            } else if let Some(body) = w.strip_suffix("am").or_else(|| w.strip_suffix("a.m")) {
                (body, Some(false))
            } else {
                (w, None)
            }
        } else {
            return None;
        };
    let clock_word = clock_word.trim();
    if clock_word.is_empty() {
        return None;
    }
    // Bare `19:00` is unambiguous; a bare hour without meridiem is not a
    // time expression.
    if meridiem.is_none() && !clock_word.contains(':') {
        return None;
    }
    let (mut h, m) = parse_clock(clock_word)?;
    if let Some(pm) = meridiem {
        if pm && h < 12 {
            h += 12;
        }
        if !pm && h == 12 {
            h = 0;
        }
    }
    Some(Timex {
        kind: TimexKind::Time,
        value: format!("T{h:02}:{m:02}"),
    })
}

/// Sound zero-allocation prefilter for [`normalize`]: every form it
/// accepts either contains an ASCII digit (clock times, numeric dates,
/// month-day forms) or opens with an anchor / weekday / month word, all
/// of which are keyed by their first three letters. A span rejected here
/// can never normalise; a span passing here still runs the full parse.
fn might_normalize(text: &str) -> bool {
    if text.bytes().any(|b| b.is_ascii_digit()) {
        return true;
    }
    const KEYS: [&str; 21] = [
        "noo", "mid", "mon", "tue", "wed", "thu", "fri", "sat", "sun", "jan", "feb", "mar", "apr",
        "may", "jun", "jul", "aug", "sep", "oct", "nov", "dec",
    ];
    text.split_whitespace()
        .find_map(|w| {
            let t = w.trim_matches(|c: char| matches!(c, ',' | '.' | '!' | '?' | '(' | ')'));
            (!t.is_empty()).then_some(t)
        })
        .is_some_and(|w| {
            w.len() >= 3
                && KEYS
                    .iter()
                    .any(|k| w.as_bytes()[..3].eq_ignore_ascii_case(k.as_bytes()))
        })
}

/// `true` when the span normalises to a TIMEX3 value — the validity test
/// used by the Event Time pattern of Table 3.
pub fn is_valid_timex(text: &str) -> bool {
    might_normalize(text) && normalize(text).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(text: &str) -> String {
        normalize(text).unwrap().value
    }

    #[test]
    fn clock_times() {
        assert_eq!(v("7 pm"), "T19:00");
        assert_eq!(v("7:30 am"), "T07:30");
        assert_eq!(v("12 am"), "T00:00");
        assert_eq!(v("12 pm"), "T12:00");
        assert_eq!(v("19:00"), "T19:00");
        assert_eq!(v("7pm"), "T19:00");
    }

    #[test]
    fn anchors() {
        assert_eq!(v("noon"), "T12:00");
        assert_eq!(v("midnight"), "T00:00");
    }

    #[test]
    fn month_dates() {
        assert_eq!(v("April 5, 2019"), "2019-04-05");
        assert_eq!(v("April 5"), "XXXX-04-05");
        assert_eq!(v("September"), "XXXX-09");
        assert_eq!(v("Sept 12"), "XXXX-09-12");
    }

    #[test]
    fn numeric_dates() {
        assert_eq!(v("04/01/2019"), "2019-04-01");
        assert_eq!(v("4/1"), "XXXX-04-01");
        assert_eq!(v("2019-04-01"), "2019-04-01");
        assert_eq!(v("04/01/19"), "2019-04-01");
    }

    #[test]
    fn weekdays() {
        assert_eq!(v("Saturday"), "XXXX-WXX-6");
        assert_eq!(v("mon"), "XXXX-WXX-1");
    }

    #[test]
    fn invalid_forms() {
        assert!(normalize("25:00").is_none());
        assert!(normalize("hello world").is_none());
        assert!(normalize("7").is_none(), "bare hour is ambiguous");
        assert!(normalize("99/99").is_none());
        assert!(normalize("").is_none());
        assert!(!is_valid_timex("broker"));
        assert!(is_valid_timex("7:30 pm"));
    }
}
