//! Tokenisation of transcribed document text.
//!
//! VS2-Select normalises the transcription of every logical block before
//! pattern search (§5.2): tokens are split on whitespace, punctuation is
//! detached, and a lower-cased normal form is retained alongside the raw
//! surface form (the raw form drives capitalisation cues in the POS tagger
//! and NER).

/// A single token with its surface and normalised forms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// Surface form exactly as transcribed.
    pub raw: String,
    /// Lower-cased form with surrounding punctuation stripped.
    pub norm: String,
}

impl Token {
    /// Creates a token, deriving the normal form.
    pub fn new(raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let norm = raw
            .trim_matches(|c: char| !c.is_alphanumeric())
            .to_lowercase();
        Self { raw, norm }
    }

    /// `true` when the surface form starts with an uppercase letter.
    pub fn is_capitalized(&self) -> bool {
        self.raw.chars().next().is_some_and(|c| c.is_uppercase())
    }

    /// `true` when the surface form is entirely uppercase letters.
    pub fn is_all_caps(&self) -> bool {
        let mut has_alpha = false;
        for c in self.raw.chars() {
            if c.is_alphabetic() {
                has_alpha = true;
                if !c.is_uppercase() {
                    return false;
                }
            }
        }
        has_alpha
    }

    /// `true` when the normal form parses as a number (integers, decimals
    /// and digit groups like `2,465`).
    pub fn is_numeric(&self) -> bool {
        let cleaned: String = self.norm.chars().filter(|c| *c != ',').collect();
        !cleaned.is_empty() && cleaned.parse::<f64>().is_ok()
    }

    /// `true` when the token mixes digits and letters (e.g. `7pm`, `3rd`).
    pub fn is_alphanumeric_mix(&self) -> bool {
        let has_digit = self.norm.chars().any(|c| c.is_ascii_digit());
        let has_alpha = self.norm.chars().any(|c| c.is_alphabetic());
        has_digit && has_alpha
    }
}

/// Splits text into word tokens. Whitespace separates tokens; sentence
/// punctuation (`.,;:!?"()[]{}`) is split off into its own tokens, while
/// word-internal punctuation (hyphens, apostrophes, `@`, `/`, `$`) is kept
/// so emails, phone numbers, prices and dates survive as single tokens.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut out = Vec::new();
    for chunk in text.split_whitespace() {
        // Strip leading detachable punctuation.
        let mut s = chunk;
        while let Some(c) = s.chars().next() {
            if is_detachable(c) {
                out.push(Token::new(c.to_string()));
                s = &s[c.len_utf8()..];
            } else {
                break;
            }
        }
        // Strip trailing detachable punctuation (collected then reversed).
        let mut trailing = Vec::new();
        while let Some(c) = s.chars().last() {
            if is_detachable(c) && !keeps_trailing(s, c) {
                trailing.push(Token::new(c.to_string()));
                s = &s[..s.len() - c.len_utf8()];
            } else {
                break;
            }
        }
        if !s.is_empty() {
            out.push(Token::new(s));
        }
        out.extend(trailing.into_iter().rev());
    }
    out
}

fn is_detachable(c: char) -> bool {
    matches!(
        c,
        '.' | ',' | ';' | ':' | '!' | '?' | '"' | '\'' | '(' | ')' | '[' | ']' | '{' | '}'
    )
}

/// A trailing `.` stays attached when the token looks like an abbreviation
/// or decimal (`p.m.`, `St.`, `2.5`), i.e. it contains another `.` or a
/// digit right before it.
fn keeps_trailing(s: &str, c: char) -> bool {
    if c != '.' {
        return false;
    }
    let body = &s[..s.len() - 1];
    body.contains('.') || body.chars().last().is_some_and(|p| p.is_ascii_digit())
}

/// Joins tokens back into a normalised string (lower-cased words separated
/// by single spaces, punctuation dropped). Used for cosine-similarity text
/// comparisons where punctuation is noise.
pub fn normalize_join(tokens: &[Token]) -> String {
    tokens
        .iter()
        .filter(|t| !t.norm.is_empty())
        .map(|t| t.norm.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norms(text: &str) -> Vec<String> {
        tokenize(text).into_iter().map(|t| t.raw).collect()
    }

    #[test]
    fn splits_on_whitespace() {
        assert_eq!(norms("hello world"), vec!["hello", "world"]);
    }

    #[test]
    fn detaches_sentence_punctuation() {
        assert_eq!(norms("Hello, world!"), vec!["Hello", ",", "world", "!"]);
        assert_eq!(norms("(free)"), vec!["(", "free", ")"]);
    }

    #[test]
    fn keeps_emails_and_phones_whole() {
        assert_eq!(norms("bob@example.com"), vec!["bob@example.com"]);
        assert_eq!(norms("(614) 555-0175"), vec!["(", "614", ")", "555-0175"]);
    }

    #[test]
    fn keeps_decimals_and_abbreviations() {
        assert_eq!(norms("2.5 acres"), vec!["2.5", "acres"]);
        assert_eq!(norms("7 p.m."), vec!["7", "p.m."]);
    }

    #[test]
    fn detaches_final_period_of_sentence() {
        assert_eq!(norms("the end."), vec!["the", "end", "."]);
    }

    #[test]
    fn token_predicates() {
        assert!(Token::new("Hello").is_capitalized());
        assert!(!Token::new("hello").is_capitalized());
        assert!(Token::new("NASA").is_all_caps());
        assert!(!Token::new("NaSA").is_all_caps());
        assert!(Token::new("2,465").is_numeric());
        assert!(Token::new("3.14").is_numeric());
        assert!(!Token::new("pi").is_numeric());
        assert!(Token::new("7pm").is_alphanumeric_mix());
        assert!(!Token::new("seven").is_alphanumeric_mix());
    }

    #[test]
    fn norm_strips_punctuation_and_lowercases() {
        assert_eq!(Token::new("\"Hello\"").norm, "hello");
        assert_eq!(Token::new("p.m.").norm, "p.m");
    }

    #[test]
    fn normalize_join_drops_bare_punctuation() {
        let toks = tokenize("Hello, World!");
        assert_eq!(normalize_join(&toks), "hello world");
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }
}
