//! Tokenisation of transcribed document text.
//!
//! VS2-Select normalises the transcription of every logical block before
//! pattern search (§5.2): tokens are split on whitespace, punctuation is
//! detached, and a lower-cased normal form is retained alongside the raw
//! surface form (the raw form drives capitalisation cues in the POS tagger
//! and NER).
//!
//! Two entry points share one splitting core:
//!
//! * [`tokenize`] materialises owned [`Token`]s — the historical API.
//! * [`tokenize_each`] streams `(raw, norm)` string slices into a sink
//!   without allocating per token, so an interner can deduplicate them
//!   into a per-document arena (`vs2_docmodel::arena`).
//!
//! Both bump a thread-local call counter ([`tokenize_call_count`]) used
//! by conformance tests to pin how many times a pipeline path
//! re-tokenises the same text.

use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    static TOKENIZE_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// Number of `tokenize`/`tokenize_each` invocations on this thread since
/// it started. Conformance tests diff this across a pipeline call to pin
/// single-tokenisation guarantees.
pub fn tokenize_call_count() -> u64 {
    TOKENIZE_CALLS.with(Cell::get)
}

/// A single token with its surface and normalised forms.
///
/// Both forms are shared `Arc<str>` slices: cloning a token (or a column
/// of tokens) is a pair of reference-count bumps, not string copies, so
/// interned per-document token tables can hand out cheap copies.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// Surface form exactly as transcribed.
    pub raw: Arc<str>,
    /// Lower-cased form with surrounding punctuation stripped.
    pub norm: Arc<str>,
}

impl Token {
    /// Creates a token, deriving the normal form.
    pub fn new(raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let norm = raw
            .trim_matches(|c: char| !c.is_alphanumeric())
            .to_lowercase();
        Self {
            raw: Arc::from(raw.as_str()),
            norm: Arc::from(norm.as_str()),
        }
    }

    /// Creates a token from already-derived parts (e.g. an interner that
    /// computed the normal form once per distinct surface string).
    pub fn from_parts(raw: Arc<str>, norm: Arc<str>) -> Self {
        Self { raw, norm }
    }

    /// `true` when the surface form starts with an uppercase letter.
    pub fn is_capitalized(&self) -> bool {
        self.raw.chars().next().is_some_and(|c| c.is_uppercase())
    }

    /// `true` when the surface form is entirely uppercase letters.
    pub fn is_all_caps(&self) -> bool {
        let mut has_alpha = false;
        for c in self.raw.chars() {
            if c.is_alphabetic() {
                has_alpha = true;
                if !c.is_uppercase() {
                    return false;
                }
            }
        }
        has_alpha
    }

    /// `true` when the normal form parses as a number (integers, decimals
    /// and digit groups like `2,465`).
    pub fn is_numeric(&self) -> bool {
        let cleaned: String = self.norm.chars().filter(|c| *c != ',').collect();
        !cleaned.is_empty() && cleaned.parse::<f64>().is_ok()
    }

    /// `true` when the token mixes digits and letters (e.g. `7pm`, `3rd`).
    pub fn is_alphanumeric_mix(&self) -> bool {
        let has_digit = self.norm.chars().any(|c| c.is_ascii_digit());
        let has_alpha = self.norm.chars().any(|c| c.is_alphabetic());
        has_digit && has_alpha
    }
}

/// Splits text into word tokens. Whitespace separates tokens; sentence
/// punctuation (`.,;:!?"()[]{}`) is split off into its own tokens, while
/// word-internal punctuation (hyphens, apostrophes, `@`, `/`, `$`) is kept
/// so emails, phone numbers, prices and dates survive as single tokens.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut scratch = String::new();
    tokenize_each(text, &mut scratch, |raw, norm| {
        out.push(Token {
            raw: Arc::from(raw),
            norm: Arc::from(norm),
        });
    });
    out
}

/// Streams the tokens of `text` into `sink` as `(raw, norm)` slices
/// without allocating per token. `raw` always borrows from `text`; `norm`
/// borrows from `text` when normalisation is the identity, or from
/// `scratch` (a caller-owned reusable buffer) when lowering was needed.
///
/// The split and the normal form are byte-identical to [`tokenize`]: the
/// two share this routine.
pub fn tokenize_each(text: &str, scratch: &mut String, mut sink: impl FnMut(&str, &str)) {
    TOKENIZE_CALLS.with(|c| c.set(c.get() + 1));
    for chunk in text.split_whitespace() {
        // Strip leading detachable punctuation; detachables are never
        // alphanumeric, so their normal form is always empty.
        let mut s = chunk;
        while let Some(c) = s.chars().next() {
            if is_detachable(c) {
                sink(&s[..c.len_utf8()], "");
                s = &s[c.len_utf8()..];
            } else {
                break;
            }
        }
        // Locate where trailing detachable punctuation starts. The
        // `keeps_trailing` check runs against each progressively shorter
        // prefix, exactly as the historical strip-loop did.
        let mut end = s.len();
        loop {
            let tail = &s[..end];
            match tail.chars().last() {
                Some(c) if is_detachable(c) && !keeps_trailing(tail, c) => {
                    end -= c.len_utf8();
                }
                _ => break,
            }
        }
        let body = &s[..end];
        if !body.is_empty() {
            sink(body, norm_of(body, scratch));
        }
        // Emit the detached trailing punctuation left-to-right (the
        // historical path collected right-to-left, then reversed).
        let mut rest = &s[end..];
        while let Some(c) = rest.chars().next() {
            sink(&rest[..c.len_utf8()], "");
            rest = &rest[c.len_utf8()..];
        }
    }
}

/// Derives the normal form of `raw` into either a subslice of `raw`
/// itself (ASCII, already lower-case — the common case, zero-alloc) or
/// `scratch`. Matches `raw.trim_matches(!alphanumeric).to_lowercase()`
/// byte for byte, including full Unicode lowering on the non-ASCII path.
fn norm_of<'a>(raw: &'a str, scratch: &'a mut String) -> &'a str {
    let trimmed = raw.trim_matches(|c: char| !c.is_alphanumeric());
    if trimmed.is_ascii() {
        if trimmed.bytes().any(|b| b.is_ascii_uppercase()) {
            scratch.clear();
            scratch.push_str(trimmed);
            scratch.make_ascii_lowercase();
            scratch.as_str()
        } else {
            trimmed
        }
    } else {
        // Full `str::to_lowercase` for exact parity (final sigma,
        // titlecase chars); rare enough that the allocation is noise.
        let lowered = trimmed.to_lowercase();
        scratch.clear();
        scratch.push_str(&lowered);
        scratch.as_str()
    }
}

fn is_detachable(c: char) -> bool {
    matches!(
        c,
        '.' | ',' | ';' | ':' | '!' | '?' | '"' | '\'' | '(' | ')' | '[' | ']' | '{' | '}'
    )
}

/// A trailing `.` stays attached when the token looks like an abbreviation
/// or decimal (`p.m.`, `St.`, `2.5`), i.e. it contains another `.` or a
/// digit right before it.
fn keeps_trailing(s: &str, c: char) -> bool {
    if c != '.' {
        return false;
    }
    let body = &s[..s.len() - 1];
    body.contains('.') || body.chars().last().is_some_and(|p| p.is_ascii_digit())
}

/// Joins tokens back into a normalised string (lower-cased words separated
/// by single spaces, punctuation dropped). Used for cosine-similarity text
/// comparisons where punctuation is noise.
pub fn normalize_join(tokens: &[Token]) -> String {
    tokens
        .iter()
        .filter(|t| !t.norm.is_empty())
        .map(|t| &*t.norm)
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norms(text: &str) -> Vec<String> {
        tokenize(text)
            .into_iter()
            .map(|t| t.raw.to_string())
            .collect()
    }

    #[test]
    fn splits_on_whitespace() {
        assert_eq!(norms("hello world"), vec!["hello", "world"]);
    }

    #[test]
    fn detaches_sentence_punctuation() {
        assert_eq!(norms("Hello, world!"), vec!["Hello", ",", "world", "!"]);
        assert_eq!(norms("(free)"), vec!["(", "free", ")"]);
    }

    #[test]
    fn keeps_emails_and_phones_whole() {
        assert_eq!(norms("bob@example.com"), vec!["bob@example.com"]);
        assert_eq!(norms("(614) 555-0175"), vec!["(", "614", ")", "555-0175"]);
    }

    #[test]
    fn keeps_decimals_and_abbreviations() {
        assert_eq!(norms("2.5 acres"), vec!["2.5", "acres"]);
        assert_eq!(norms("7 p.m."), vec!["7", "p.m."]);
    }

    #[test]
    fn detaches_final_period_of_sentence() {
        assert_eq!(norms("the end."), vec!["the", "end", "."]);
    }

    #[test]
    fn token_predicates() {
        assert!(Token::new("Hello").is_capitalized());
        assert!(!Token::new("hello").is_capitalized());
        assert!(Token::new("NASA").is_all_caps());
        assert!(!Token::new("NaSA").is_all_caps());
        assert!(Token::new("2,465").is_numeric());
        assert!(Token::new("3.14").is_numeric());
        assert!(!Token::new("pi").is_numeric());
        assert!(Token::new("7pm").is_alphanumeric_mix());
        assert!(!Token::new("seven").is_alphanumeric_mix());
    }

    #[test]
    fn norm_strips_punctuation_and_lowercases() {
        assert_eq!(&*Token::new("\"Hello\"").norm, "hello");
        assert_eq!(&*Token::new("p.m.").norm, "p.m");
    }

    #[test]
    fn normalize_join_drops_bare_punctuation() {
        let toks = tokenize("Hello, World!");
        assert_eq!(normalize_join(&toks), "hello world");
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn streamed_tokens_match_owned_tokenize() {
        let cases = [
            "Hello, world! Visit bob@example.com at 7 p.m. (RSVP).",
            "Σίσυφος ΣΊΣΥΦΟΣ \"ΤΈΛΟΣ\" 2,465 acres... {x} 'y' [z]:",
            "...  ..a.. 3.14. p.m.. !!",
            "",
        ];
        for text in cases {
            let owned = tokenize(text);
            let mut streamed = Vec::new();
            let mut scratch = String::new();
            tokenize_each(text, &mut scratch, |raw, norm| {
                streamed.push((raw.to_string(), norm.to_string()));
            });
            let owned: Vec<(String, String)> = owned
                .into_iter()
                .map(|t| (t.raw.to_string(), t.norm.to_string()))
                .collect();
            assert_eq!(owned, streamed, "split/norm divergence on {text:?}");
        }
    }

    #[test]
    fn call_counter_counts_each_invocation() {
        let before = tokenize_call_count();
        tokenize("a b c");
        let mut scratch = String::new();
        tokenize_each("d e", &mut scratch, |_, _| {});
        assert_eq!(tokenize_call_count(), before + 2);
    }
}
