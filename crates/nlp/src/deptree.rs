//! Dependency-lite parse trees.
//!
//! §5.2.1: holdout-corpus entries are chunked, "dependency parse trees
//! were obtained", the chunks annotated with NER / geocode / hypernym /
//! VerbNet features, and "the maximal frequent subtrees across the chunks
//! were obtained" with TreeMiner. This module builds those labelled
//! ordered trees; `vs2-treemine` mines them.
//!
//! The tree is two-levelled: a sentence root, phrase nodes (`NP`, `VP`,
//! `SVO`), and feature leaves (`CD`, `JJ`, `NER:person`, `SENSE:measure`,
//! `TIMEX`, `GEO`, `VSENSE:create`, `STEM:…`). Frequent subtrees over
//! this label vocabulary *are* the lexico-syntactic patterns of Tables 3
//! and 4.

use crate::annotate::Annotated;
use crate::chunk::PhraseKind;
use crate::hypernym;
use crate::ner::NerTag;
use crate::stem::stem;
use crate::stopwords::is_stopword;
use crate::timex;
use crate::verbs;

/// A labelled ordered tree node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DepNode {
    /// Node label.
    pub label: String,
    /// Ordered children.
    pub children: Vec<DepNode>,
}

impl DepNode {
    /// Creates a leaf.
    pub fn leaf(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            children: Vec::new(),
        }
    }

    /// Creates an internal node.
    pub fn node(label: impl Into<String>, children: Vec<DepNode>) -> Self {
        Self {
            label: label.into(),
            children,
        }
    }

    /// Total number of nodes in the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(DepNode::size).sum::<usize>()
    }

    /// Canonical bracketed form, e.g. `S(NP(NER:person) VP(VSENSE:captain))`.
    pub fn bracketed(&self) -> String {
        if self.children.is_empty() {
            self.label.clone()
        } else {
            format!(
                "{}({})",
                self.label,
                self.children
                    .iter()
                    .map(DepNode::bracketed)
                    .collect::<Vec<_>>()
                    .join(" ")
            )
        }
    }
}

fn ner_label(tag: NerTag) -> &'static str {
    match tag {
        NerTag::Person => "NER:person",
        NerTag::Organization => "NER:org",
        NerTag::Location => "NER:location",
        NerTag::Date => "NER:date",
        NerTag::Time => "NER:time",
        NerTag::Money => "NER:money",
        NerTag::Email => "NER:email",
        NerTag::Phone => "NER:phone",
    }
}

/// Builds the dependency-lite tree for an annotated text.
///
/// Every phrase becomes a child of the sentence root; phrase children are
/// the semantic feature leaves of the tokens the phrase covers, in order:
/// NER tags win over POS-derived features; nouns additionally emit their
/// hypernym sense; verbs emit their VerbNet-lite senses; content-word
/// stems are kept so lexical anchors can be mined too.
pub fn build_tree(ann: &Annotated) -> DepNode {
    let mut root_children = Vec::new();
    for phrase in &ann.phrases {
        // SVO spans duplicate their constituent NP/VP material; mine them
        // as a bare marker instead of repeating the leaves.
        if phrase.kind == PhraseKind::Svo {
            root_children.push(DepNode::leaf("SVO"));
            continue;
        }
        let mut leaves: Vec<DepNode> = Vec::new();
        if phrase.has_cd {
            leaves.push(DepNode::leaf("CD"));
        }
        if phrase.has_jj {
            leaves.push(DepNode::leaf("JJ"));
        }
        let phrase_text = ann.span_text(phrase.start, phrase.end);
        if timex::is_valid_timex(&phrase_text) {
            leaves.push(DepNode::leaf("TIMEX"));
        }
        if crate::geocode::is_valid_geocode(&phrase_text) {
            leaves.push(DepNode::leaf("GEO"));
        }
        // NER spans intersecting the phrase window (a span may start on
        // punctuation the chunker excluded, e.g. the "(" of a phone
        // number).
        for span in &ann.ner {
            if span.start < phrase.end && span.end > phrase.start {
                leaves.push(DepNode::leaf(ner_label(span.tag)));
            }
        }
        let mut i = phrase.start;
        while i < phrase.end {
            if let Some(span) = ann.ner.iter().find(|s| s.start <= i && i < s.end) {
                // Covered by a NER span whose leaf was already emitted.
                i = span.end.max(i + 1);
                continue;
            }
            let tok = &ann.tokens[i];
            let pos = ann.pos[i];
            if pos.is_verb() {
                for sense in verbs::senses_of(&tok.norm) {
                    leaves.push(DepNode::leaf(format!("VSENSE:{}", sense.label())));
                }
            } else if pos.is_noun() {
                let sense = hypernym::sense_of(&tok.norm);
                if sense != hypernym::Sense::Entity {
                    leaves.push(DepNode::leaf(format!("SENSE:{}", sense.label())));
                }
            }
            if !tok.norm.is_empty() && !is_stopword(&tok.norm) && !tok.is_numeric() {
                leaves.push(DepNode::leaf(format!("STEM:{}", stem(&tok.norm))));
            }
            i += 1;
        }
        let label = match phrase.kind {
            PhraseKind::Np => "NP",
            PhraseKind::Vp => "VP",
            PhraseKind::Svo => unreachable!("handled above"),
        };
        root_children.push(DepNode::node(label, leaves));
    }
    DepNode::node("S", root_children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate;

    #[test]
    fn tree_shape_for_organizer_phrase() {
        let ann = annotate("hosted by James Wilson");
        let tree = build_tree(&ann);
        assert_eq!(tree.label, "S");
        let s = tree.bracketed();
        assert!(s.contains("VSENSE:captain"), "{s}");
        assert!(s.contains("NER:person"), "{s}");
    }

    #[test]
    fn measure_sense_leaves() {
        let ann = annotate("4 beds 2,465 acres");
        let tree = build_tree(&ann);
        let s = tree.bracketed();
        assert!(s.contains("SENSE:measure"), "{s}");
        assert!(s.contains("CD"), "{s}");
    }

    #[test]
    fn timex_and_geo_leaves() {
        let ann = annotate("April 5, 2019");
        let s = build_tree(&ann).bracketed();
        assert!(s.contains("TIMEX") || s.contains("NER:date"), "{s}");

        let ann = annotate("1458 Maple Avenue Columbus");
        let s = build_tree(&ann).bracketed();
        assert!(s.contains("GEO"), "{s}");
    }

    #[test]
    fn svo_marker() {
        let ann = annotate("the society presents a concert");
        let s = build_tree(&ann).bracketed();
        assert!(s.contains("SVO"), "{s}");
    }

    #[test]
    fn size_and_bracketing() {
        let t = DepNode::node(
            "S",
            vec![
                DepNode::node("NP", vec![DepNode::leaf("CD")]),
                DepNode::leaf("SVO"),
            ],
        );
        assert_eq!(t.size(), 4);
        assert_eq!(t.bracketed(), "S(NP(CD) SVO)");
    }

    #[test]
    fn stems_appear_for_content_words() {
        let ann = annotate("spacious warehouse");
        let s = build_tree(&ann).bracketed();
        assert!(
            s.contains("STEM:warehous") || s.contains("STEM:warehouse"),
            "{s}"
        );
    }
}
