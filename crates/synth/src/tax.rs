//! Dataset D1 stand-in: synthetic structured tax forms.
//!
//! The paper's D1 is the NIST Special Database 6: 5,595 scanned 1988 IRS
//! 1040 forms over 20 fixed form faces with 1,369 labelled form fields.
//! The IE task is to extract the filled value of every form field; VS2
//! matches field *descriptors* by exact string match against the holdout
//! corpus (§5.2.1). The generator reproduces the structural properties
//! that drive D1's results: 20 fixed faces, grid-aligned label/value
//! rows, uniform typography and light scan noise.

use crate::render::{place_text, TextStyle};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use vs2_docmodel::{AnnotatedDocument, Document, EntityAnnotation};
use vs2_nlp::lexicon::{self, Topic};

const PAGE_W: f64 = 612.0;
const PAGE_H: f64 = 792.0;
const MARGIN: f64 = 36.0;

/// Number of form faces, as in NIST SD6.
pub const FACES: usize = 20;
/// Fields per face. (NIST SD6 defines 1,369 fields over 20 faces; we use
/// a smaller per-face count against the same structure — see DESIGN.md.)
pub const FIELDS_PER_FACE: usize = 24;

/// Entity key of a form field.
pub fn field_key(face: usize, idx: usize) -> String {
    format!("field_f{face:02}_{idx:02}")
}

/// The fixed descriptor text of a form field. Deterministic in
/// `(face, idx)` — this is the string the holdout corpus maps the entity
/// to and that VS2 exact-matches inside logical blocks.
pub fn field_descriptor(face: usize, idx: usize) -> String {
    let mut rng = StdRng::seed_from_u64(0x7A_0000 + (face * 1000 + idx) as u64);
    let pool = lexicon::words_of(Topic::Tax);
    let cap = |w: &str| {
        let mut cs = w.chars();
        match cs.next() {
            Some(f) => f.to_uppercase().collect::<String>() + cs.as_str(),
            None => String::new(),
        }
    };
    let a = pool[rng.gen_range(0..pool.len())];
    let b = pool[rng.gen_range(0..pool.len())];
    match idx % 4 {
        0 => format!("{} {} {}", cap(a), b, "amount"),
        1 => format!("Total {a} {b}"),
        2 => format!("{} {} line {}", cap(a), b, idx + 1),
        _ => format!("{} {} this year", cap(a), b),
    }
}

/// Whether a field holds a monetary value (most do) or a text value.
fn field_is_monetary(face: usize, idx: usize) -> bool {
    !(face + idx).is_multiple_of(5)
}

/// A filled value for a field.
fn field_value(face: usize, idx: usize, rng: &mut StdRng) -> String {
    if field_is_monetary(face, idx) {
        let dollars = rng.gen_range(0..99999);
        let cents = rng.gen_range(0..100);
        if dollars >= 1000 {
            format!("{},{:03}.{cents:02}", dollars / 1000, dollars % 1000)
        } else {
            format!("{dollars}.{cents:02}")
        }
    } else {
        crate::textgen::person_name(rng)
    }
}

/// Generates one filled form of face `id % FACES`.
pub fn generate_form(id: usize, seed: u64) -> AnnotatedDocument {
    let face = id % FACES;
    let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0xC2B2AE3D27D4EB4F));
    let mut doc = Document::new(format!("d1-{id:05}"), PAGE_W, PAGE_H);
    let mut annotations = Vec::new();

    // Header: fixed per face.
    let header = format!(
        "Form 1040 Schedule {} Department of the Treasury Internal Revenue Service 1988",
        (b'A' + face as u8) as char
    );
    let header_style = TextStyle::body(13.0);
    let placed = place_text(
        &mut doc,
        &header,
        MARGIN,
        MARGIN,
        PAGE_W - 2.0 * MARGIN,
        &header_style,
    );
    let mut y = placed.bbox.bottom() + 18.0;

    // Field grid: two columns of label/value rows.
    let label_style = TextStyle::body(8.5);
    let value_style = TextStyle::body(9.5);
    let col_w = (PAGE_W - 2.0 * MARGIN - 24.0) / 2.0;
    let row_h = 26.0;
    let rows = FIELDS_PER_FACE / 2;
    for idx in 0..FIELDS_PER_FACE {
        let col = idx / rows;
        let row = idx % rows;
        let x = MARGIN + col as f64 * (col_w + 24.0);
        let ry = y + row as f64 * row_h;
        if ry > PAGE_H - MARGIN {
            break;
        }
        let descriptor = field_descriptor(face, idx);
        let label = place_text(&mut doc, &descriptor, x, ry, col_w * 0.62, &label_style);
        let value = field_value(face, idx, &mut rng);
        // The value box adjoins its descriptor (as on the printed 1040
        // forms): the intra-field gap must stay below delimiter strength
        // so a field row is one visual unit.
        let vplaced = place_text(
            &mut doc,
            &value,
            label.bbox.right() + 8.0,
            ry,
            col_w * 0.34,
            &value_style,
        );
        // The entity *text* is the filled value; the annotated bounding
        // box is the full label+value row. Blocks are what segmentation
        // proposals and the IoU protocol compare (§6.2), and a form
        // field's visual unit is its whole row.
        annotations.push(EntityAnnotation::new(
            field_key(face, idx),
            label.bbox.union(&vplaced.bbox),
            vplaced.text.clone(),
        ));
    }

    // Signature strip at the bottom (no entities).
    y = PAGE_H - MARGIN - 14.0;
    let _ = place_text(
        &mut doc,
        "Signature Date Occupation Under penalties of perjury I declare this return is correct",
        MARGIN,
        y,
        PAGE_W - 2.0 * MARGIN,
        &TextStyle::body(7.5),
    );

    AnnotatedDocument { doc, annotations }
}

/// Generates `n` filled forms cycling over the 20 faces.
pub fn generate(n: usize, seed: u64) -> Vec<AnnotatedDocument> {
    (0..n).map(|i| generate_form(i, seed)).collect()
}

/// Every `(entity key, descriptor)` pair across all faces — the content
/// of D1's holdout corpus ("20 tables, each with two columns, an
/// identifier of the named entity … and its corresponding field
/// descriptor").
pub fn all_field_descriptors() -> Vec<(String, String)> {
    let mut out = Vec::with_capacity(FACES * FIELDS_PER_FACE);
    for face in 0..FACES {
        for idx in 0..FIELDS_PER_FACE {
            out.push((field_key(face, idx), field_descriptor(face, idx)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn form_has_expected_fields() {
        let f = generate_form(0, 42);
        assert_eq!(f.annotations.len(), FIELDS_PER_FACE);
    }

    #[test]
    fn descriptors_are_stable_and_distinct_within_face() {
        assert_eq!(field_descriptor(3, 5), field_descriptor(3, 5));
        let mut ds: Vec<String> = (0..FIELDS_PER_FACE)
            .map(|i| field_descriptor(0, i))
            .collect();
        let n = ds.len();
        ds.sort();
        ds.dedup();
        assert_eq!(ds.len(), n, "descriptors collide within a face");
    }

    #[test]
    fn same_face_shares_descriptors_different_faces_differ() {
        let a = generate_form(1, 42); // face 1
        let b = generate_form(1 + FACES, 42); // face 1 again
        let c = generate_form(2, 42); // face 2
        let keys = |d: &AnnotatedDocument| -> Vec<String> {
            d.annotations.iter().map(|a| a.entity.clone()).collect()
        };
        assert_eq!(keys(&a), keys(&b));
        assert_ne!(keys(&a), keys(&c));
    }

    #[test]
    fn values_differ_between_documents_of_same_face() {
        let a = generate_form(1, 42);
        let b = generate_form(1 + FACES, 42);
        let va: Vec<&str> = a.annotations.iter().map(|x| x.text.as_str()).collect();
        let vb: Vec<&str> = b.annotations.iter().map(|x| x.text.as_str()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn descriptor_appears_in_transcription() {
        let f = generate_form(4, 42);
        let text = f.doc.transcribe_all();
        for idx in 0..3 {
            let d = field_descriptor(4 % FACES, idx);
            assert!(text.contains(&d), "descriptor missing: {d}");
        }
    }

    #[test]
    fn all_descriptor_table_size() {
        let all = all_field_descriptors();
        assert_eq!(all.len(), FACES * FIELDS_PER_FACE);
        let mut keys: Vec<&String> = all.iter().map(|(k, _)| k).collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n);
    }

    #[test]
    fn value_annotations_cover_words() {
        let f = generate_form(3, 42);
        for a in &f.annotations {
            assert!(
                !f.doc.elements_intersecting(&a.bbox).is_empty(),
                "value annotation {} covers nothing",
                a.entity
            );
        }
    }

    #[test]
    fn monetary_values_look_monetary() {
        let f = generate_form(0, 7);
        let monetary = f
            .annotations
            .iter()
            .filter(|a| a.text.contains('.'))
            .count();
        assert!(monetary > FIELDS_PER_FACE / 2);
    }
}
