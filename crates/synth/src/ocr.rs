//! The OCR noise channel.
//!
//! The paper transcribes documents with Tesseract and attributes most
//! end-to-end errors to transcription noise: "low-quality transcription
//! … inhibiting semantic merging at later iterations" (§6.3, §6.4). This
//! channel reproduces those failure modes synthetically: character
//! confusions, dropped words, merged and split words, bounding-box jitter
//! and page rotation (§5.1.2 claims robustness to rotation up to 45°).

use rand::rngs::StdRng;
use rand::Rng;
use vs2_docmodel::{AnnotatedDocument, BBox, Document, Point, TextElement};

/// Noise-channel parameters. All rates are per-opportunity probabilities.
#[derive(Debug, Clone, Copy)]
pub struct OcrConfig {
    /// Per-character substitution probability.
    pub char_sub_rate: f64,
    /// Per-word drop probability.
    pub word_drop_rate: f64,
    /// Probability of merging a word with its successor on the same line.
    pub word_merge_rate: f64,
    /// Probability of splitting a word (≥ 6 chars) in two.
    pub word_split_rate: f64,
    /// Maximum absolute bounding-box jitter in document units.
    pub bbox_jitter: f64,
    /// Page rotation in degrees (rotates both the observed document and
    /// the ground-truth annotations, as a skewed scan would).
    pub rotation_deg: f64,
}

impl OcrConfig {
    /// No noise at all — digital-native documents.
    pub fn clean() -> Self {
        Self {
            char_sub_rate: 0.0,
            word_drop_rate: 0.0,
            word_merge_rate: 0.0,
            word_split_rate: 0.0,
            bbox_jitter: 0.0,
            rotation_deg: 0.0,
        }
    }

    /// Light noise — flatbed scans of 1988 forms (dataset D1): clean
    /// glyphs but a small feed skew, the dominant artefact of the era's
    /// sheet-fed scanners.
    pub fn light() -> Self {
        Self {
            char_sub_rate: 0.01,
            word_drop_rate: 0.005,
            word_merge_rate: 0.01,
            word_split_rate: 0.005,
            bbox_jitter: 1.0,
            rotation_deg: 0.4,
        }
    }

    /// Heavy noise — mobile captures (most of dataset D2).
    pub fn heavy() -> Self {
        Self {
            char_sub_rate: 0.025,
            word_drop_rate: 0.02,
            word_merge_rate: 0.04,
            word_split_rate: 0.02,
            bbox_jitter: 1.2,
            rotation_deg: 2.0,
        }
    }
}

/// Visually confusable character pairs (both directions where sensible).
const CONFUSIONS: &[(char, char)] = &[
    ('o', '0'),
    ('0', 'o'),
    ('l', '1'),
    ('1', 'l'),
    ('i', 'l'),
    ('e', 'c'),
    ('s', '5'),
    ('5', 's'),
    ('b', '6'),
    ('a', 'o'),
    ('u', 'v'),
    ('m', 'n'),
    ('g', 'q'),
    ('t', 'f'),
];

fn corrupt_word(word: &str, rate: f64, rng: &mut StdRng) -> String {
    if rate <= 0.0 {
        return word.to_string();
    }
    word.chars()
        .map(|c| {
            if rng.gen_bool(rate.min(1.0)) {
                let lower = c.to_ascii_lowercase();
                if let Some((_, to)) = CONFUSIONS.iter().find(|(from, _)| *from == lower) {
                    return if c.is_uppercase() {
                        to.to_ascii_uppercase()
                    } else {
                        *to
                    };
                }
            }
            c
        })
        .collect()
}

fn rotate_bbox(b: &BBox, center: Point, cos: f64, sin: f64) -> BBox {
    // Rotate the centroid; keep the extent axis-aligned (the downstream
    // pipeline works on axis-aligned boxes, as OCR engines emit).
    let c = b.centroid();
    let dx = c.x - center.x;
    let dy = c.y - center.y;
    let nx = center.x + dx * cos - dy * sin;
    let ny = center.y + dx * sin + dy * cos;
    BBox::new(nx - b.w / 2.0, ny - b.h / 2.0, b.w, b.h)
}

/// Passes an annotated document through the OCR channel.
///
/// Geometric distortions (rotation) apply to both the observed document
/// and the annotations — the experts annotated the captured image itself.
/// Textual corruption and jitter apply only to the observed document.
pub fn apply(input: &AnnotatedDocument, cfg: &OcrConfig, rng: &mut StdRng) -> AnnotatedDocument {
    let doc = &input.doc;
    let mut out = Document::new(doc.id.clone(), doc.width, doc.height);
    let center = Point::new(doc.width / 2.0, doc.height / 2.0);
    let theta = cfg.rotation_deg.to_radians();
    let (sin, cos) = theta.sin_cos();

    // Work in reading order so merge candidates are adjacent.
    let order = doc.reading_order(&doc.element_refs());
    let mut texts: Vec<TextElement> = order
        .iter()
        .filter_map(|r| match r {
            vs2_docmodel::ElementRef::Text(i) => Some(doc.texts[*i].clone()),
            vs2_docmodel::ElementRef::Image(_) => None,
        })
        .collect();

    // Merges.
    let mut i = 0;
    while i + 1 < texts.len() {
        let same_line = (texts[i].bbox.y - texts[i + 1].bbox.y).abs() < texts[i].bbox.h * 0.5;
        let adjacent = texts[i + 1].bbox.x >= texts[i].bbox.x
            && texts[i + 1].bbox.x - texts[i].bbox.right() < texts[i].bbox.h;
        if same_line && adjacent && rng.gen_bool(cfg.word_merge_rate.min(1.0)) {
            let next = texts.remove(i + 1);
            let merged = &mut texts[i];
            merged.text.push_str(&next.text);
            merged.bbox = merged.bbox.union(&next.bbox);
        } else {
            i += 1;
        }
    }

    for t in texts {
        if rng.gen_bool(cfg.word_drop_rate.min(1.0)) {
            continue;
        }
        let corrupted = corrupt_word(&t.text, cfg.char_sub_rate, rng);
        let jitter = |rng: &mut StdRng| {
            if cfg.bbox_jitter > 0.0 {
                rng.gen_range(-cfg.bbox_jitter..cfg.bbox_jitter)
            } else {
                0.0
            }
        };
        let mut emit = |text: String, bbox: BBox, rng: &mut StdRng| {
            let b = BBox::new(
                bbox.x + jitter(rng),
                bbox.y + jitter(rng),
                (bbox.w + jitter(rng)).max(1.0),
                (bbox.h + jitter(rng)).max(1.0),
            );
            let b = rotate_bbox(&b, center, cos, sin);
            let mut e = TextElement::word(text, b)
                .with_color(t.color)
                .with_font_size(t.font_size);
            if let Some(m) = t.markup {
                e = e.with_markup(m);
            }
            out.push_text(e);
        };
        let nchars = corrupted.chars().count();
        if nchars >= 6 && rng.gen_bool(cfg.word_split_rate.min(1.0)) {
            let cut = nchars / 2;
            let byte_cut = corrupted
                .char_indices()
                .nth(cut)
                .map(|(b, _)| b)
                .unwrap_or(corrupted.len());
            let (a, b) = corrupted.split_at(byte_cut);
            let frac = cut as f64 / nchars as f64;
            let left = BBox::new(t.bbox.x, t.bbox.y, t.bbox.w * frac, t.bbox.h);
            let right = BBox::new(
                t.bbox.x + t.bbox.w * frac + 1.0,
                t.bbox.y,
                t.bbox.w * (1.0 - frac) - 1.0,
                t.bbox.h,
            );
            emit(a.to_string(), left, rng);
            emit(b.to_string(), right, rng);
        } else {
            emit(corrupted, t.bbox, rng);
        }
    }

    for img in &doc.images {
        let mut im = img.clone();
        im.bbox = rotate_bbox(&im.bbox, center, cos, sin);
        out.push_image(im);
    }

    let annotations = input
        .annotations
        .iter()
        .map(|a| {
            let mut a = a.clone();
            a.bbox = rotate_bbox(&a.bbox, center, cos, sin);
            a
        })
        .collect();

    AnnotatedDocument {
        doc: out,
        annotations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vs2_docmodel::EntityAnnotation;

    fn sample() -> AnnotatedDocument {
        let mut doc = Document::new("s", 200.0, 100.0);
        for (i, w) in ["hello", "beautiful", "world", "tonight"]
            .iter()
            .enumerate()
        {
            doc.push_text(TextElement::word(
                *w,
                BBox::new(10.0 + 40.0 * i as f64, 10.0, 35.0, 10.0),
            ));
        }
        AnnotatedDocument {
            doc,
            annotations: vec![EntityAnnotation::new(
                "x",
                BBox::new(10.0, 10.0, 35.0, 10.0),
                "hello",
            )],
        }
    }

    #[test]
    fn clean_channel_is_identity_on_text() {
        let input = sample();
        let mut rng = StdRng::seed_from_u64(1);
        let out = apply(&input, &OcrConfig::clean(), &mut rng);
        assert_eq!(out.doc.texts.len(), input.doc.texts.len());
        assert_eq!(out.doc.transcribe_all(), input.doc.transcribe_all());
        assert_eq!(out.annotations[0].bbox, input.annotations[0].bbox);
    }

    #[test]
    fn char_noise_changes_some_text() {
        let input = sample();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = OcrConfig {
            char_sub_rate: 0.8,
            ..OcrConfig::clean()
        };
        let out = apply(&input, &cfg, &mut rng);
        assert_ne!(out.doc.transcribe_all(), input.doc.transcribe_all());
        assert_eq!(out.doc.texts.len(), input.doc.texts.len(), "no drops");
    }

    #[test]
    fn drops_remove_words() {
        let input = sample();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = OcrConfig {
            word_drop_rate: 1.0,
            ..OcrConfig::clean()
        };
        let out = apply(&input, &cfg, &mut rng);
        assert!(out.doc.texts.is_empty());
    }

    #[test]
    fn merges_concatenate_adjacent_words() {
        let input = sample();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = OcrConfig {
            word_merge_rate: 1.0,
            ..OcrConfig::clean()
        };
        let out = apply(&input, &cfg, &mut rng);
        assert!(out.doc.texts.len() < input.doc.texts.len());
        let joined: String = out.doc.transcribe_all().split_whitespace().collect();
        assert_eq!(joined, "hellobeautifulworldtonight");
    }

    #[test]
    fn splits_divide_long_words() {
        let input = sample();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = OcrConfig {
            word_split_rate: 1.0,
            ..OcrConfig::clean()
        };
        let out = apply(&input, &cfg, &mut rng);
        // "beautiful" and "tonight" are ≥ 6 chars → split.
        assert_eq!(out.doc.texts.len(), 6);
        let rejoined: String = out.doc.transcribe_all().split_whitespace().collect();
        assert_eq!(rejoined, "hellobeautifulworldtonight");
    }

    #[test]
    fn rotation_moves_doc_and_annotations_together() {
        let input = sample();
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = OcrConfig {
            rotation_deg: 30.0,
            ..OcrConfig::clean()
        };
        let out = apply(&input, &cfg, &mut rng);
        // First word and its annotation still coincide.
        let word_bbox = out.doc.texts[0].bbox;
        let ann_bbox = out.annotations[0].bbox;
        assert!(
            word_bbox.iou(&ann_bbox) > 0.95,
            "{word_bbox:?} vs {ann_bbox:?}"
        );
        // And the page content actually moved.
        assert!((word_bbox.x - input.doc.texts[0].bbox.x).abs() > 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let input = sample();
        let cfg = OcrConfig::heavy();
        let a = apply(&input, &cfg, &mut StdRng::seed_from_u64(9));
        let b = apply(&input, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.doc.transcribe_all(), b.doc.transcribe_all());
    }
}
