//! D4: invoices and receipts — the triage workload.
//!
//! The paper's three datasets are all *heterogeneous*; the triage router
//! (`vs2_core::triage`) exists for the opposite traffic class —
//! whitespace-regular, table-dominated billing documents where full VS2
//! segmentation buys nothing over a recursive XY-cut. D4 models that
//! class: per-vendor template families of line-item invoices (style 0)
//! and two-column receipts (style 1), with header metadata and footer
//! totals around a line-item table of distractor rows.
//!
//! ## Geometry contract
//!
//! Like [`crate::templated`], token boxes are template-fixed: every
//! document of a family has bit-identical clean geometry (only glyph
//! content varies), word centroids are locked to the default fingerprint
//! lattice with at least [`CENTROID_MARGIN`] units of clearance, and the
//! per-line token counts are content-independent. Consequently a family
//! shares one layout fingerprint, the triage features are stable under
//! the [`invoice_ocr`] noise channel, and the plan cache composes with
//! cheap-path routing on this corpus (replay beats XY-cut).
//!
//! The noise channel deliberately excludes rotation: a rotated scan is
//! exactly the case triage must *not* route cheap (the skew gate sends
//! it to full VS2), and D1 already exercises that path. D4's premise is
//! digitally rendered billing PDFs.
//!
//! Entity schema (six keys, [`entities`]): vendor name, invoice number,
//! invoice date, due date, customer name, total due. Line-item rows are
//! unannotated distractors — their amount tokens carry no `$` sign so
//! the total-due patterns stay anchored on the footer keywords.

use crate::ocr::{self, OcrConfig};
use crate::textgen;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use vs2_docmodel::{AnnotatedDocument, BBox, Document, EntityAnnotation, TextElement};
use vs2_nlp::lexicon::Topic;

/// Entity keys of the D4 IE task.
pub mod entities {
    /// The issuing vendor's name (header).
    pub const VENDOR_NAME: &str = "vendor_name";
    /// The invoice / receipt number.
    pub const INVOICE_NUMBER: &str = "invoice_number";
    /// Issue date.
    pub const INVOICE_DATE: &str = "invoice_date";
    /// Payment due date.
    pub const DUE_DATE: &str = "due_date";
    /// The billed customer's name.
    pub const CUSTOMER_NAME: &str = "customer_name";
    /// The footer's total amount due.
    pub const TOTAL_DUE: &str = "total_due";
    /// All six, in layout order.
    pub const ALL: [&str; 6] = [
        VENDOR_NAME,
        INVOICE_NUMBER,
        INVOICE_DATE,
        DUE_DATE,
        CUSTOMER_NAME,
        TOTAL_DUE,
    ];
}

const PAGE_W: f64 = 612.0;
const PAGE_H: f64 = 792.0;
/// Fingerprint-lattice geometry (default `FingerprintConfig`, 16×16).
const FP_GRID: f64 = 16.0;
const COL_STEP: f64 = PAGE_W / FP_GRID; // 38.25
const ROW_STEP: f64 = PAGE_H / FP_GRID; // 49.5
/// Two words per lattice cell, as in `crate::templated`.
const WORD_PITCH: f64 = COL_STEP / 2.0;

/// Number of vendor template families. Even families render the
/// full-page invoice style, odd families the two-column receipt style.
pub const FAMILIES: usize = 8;
/// Minimum distance every clean word centroid keeps from all
/// fingerprint-cell boundaries (same contract as `crate::templated`).
pub const CENTROID_MARGIN: f64 = 4.0;

/// The D4 noise channel: character substitutions and sub-unit box
/// jitter only — digitally rendered billing documents. No rotation (a
/// skewed page must route to full VS2, which D1 covers) and no
/// drops/merges/splits (those change element counts, breaking the
/// family-fingerprint premise the plan-cache composition relies on).
/// The jitter bound matches `crate::templated::template_ocr` and the
/// same skew-estimator rationale: at 0.25 the estimator stays under
/// `SKEW_EPSILON` on essentially every document, so triage routing is
/// decided by the layout features, not by jitter-induced pseudo-skew.
pub fn invoice_ocr() -> OcrConfig {
    OcrConfig {
        char_sub_rate: 0.02,
        word_drop_rate: 0.0,
        word_merge_rate: 0.0,
        word_split_rate: 0.0,
        bbox_jitter: 0.25,
        rotation_deg: 0.0,
    }
}

/// One fixed-geometry text line of a family template.
struct Line {
    row: usize,
    col: usize,
    tokens: Vec<String>,
    /// `Some((entity, value))` when the line carries an annotation; the
    /// annotation box is the whole line, the text is the value alone
    /// (the flyers convention — phase-2 matching is textual).
    annotate: Option<(&'static str, String)>,
}

/// Layout skeleton shared by every document of one family.
#[derive(Debug, Clone, Copy)]
struct FamilySpec {
    x_off: f64,
    y_off: f64,
    word_w: f64,
    word_h: f64,
    /// Left / right / centre lattice start columns.
    col_left: usize,
    col_right: usize,
    col_mid: usize,
    /// Line-item rows in the table.
    n_items: usize,
}

/// `true` for the two-column receipt style (odd families).
pub fn is_receipt(fam: usize) -> bool {
    (fam % FAMILIES) % 2 == 1
}

fn family_spec(fam: usize) -> FamilySpec {
    let mut rng = StdRng::seed_from_u64(0x1DC0_0000 + (fam % FAMILIES) as u64);
    FamilySpec {
        x_off: [6.0, 8.0, 10.0][rng.gen_range(0..3usize)],
        y_off: [10.0, 14.0, 18.0][rng.gen_range(0..3usize)],
        word_w: [15.0, 16.0, 17.0][rng.gen_range(0..3usize)],
        word_h: [11.0, 12.0, 13.0][rng.gen_range(0..3usize)],
        col_left: rng.gen_range(1..=2),
        col_right: rng.gen_range(8..=9),
        col_mid: rng.gen_range(4..=5),
        n_items: if is_receipt(fam) {
            rng.gen_range(5..=7)
        } else {
            rng.gen_range(4..=6)
        },
    }
}

fn split_tokens(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}

/// An unsigned line-item amount, e.g. `12.50` — deliberately without
/// the `$` sign the total-due surface form carries.
fn item_amount(rng: &mut StdRng) -> String {
    format!("{}.{:02}", rng.gen_range(5..400), rng.gen_range(0..100))
}

/// Per-document line content. Token counts per line are fixed given the
/// family, so geometry never depends on the draw.
fn lines(spec: &FamilySpec, receipt: bool, rng: &mut StdRng) -> Vec<Line> {
    let vendor = format!(
        "{} {}",
        textgen::pick_cap(rng, Topic::PersonLast),
        textgen::pick_cap(rng, Topic::Organization)
    );
    let number = textgen::invoice_number(rng);
    let issued = textgen::calendar_date(rng);
    let due = textgen::calendar_date(rng);
    let customer = textgen::person_name(rng);
    let total = textgen::money_amount(rng);
    let subtotal = textgen::money_amount(rng);
    let tax = textgen::money_amount(rng);

    let vendor_tokens = split_tokens(&vendor);
    let number_line = {
        let mut t = vec!["Invoice".to_string(), "No".to_string()];
        t.push(number.clone());
        t
    };
    let date_line = {
        let mut t = vec!["Date".to_string()];
        t.extend(split_tokens(&issued));
        t
    };
    let due_line = {
        let mut t = vec!["Due".to_string()];
        t.extend(split_tokens(&due));
        t
    };
    let customer_line = {
        let mut t = vec!["Bill".to_string(), "To".to_string()];
        t.extend(split_tokens(&customer));
        t
    };
    let total_line = vec!["Total".to_string(), total.clone()];
    let footer = ["Thank", "you", "for", "your", "business"]
        .map(String::from)
        .to_vec();

    let mut out = Vec::new();
    let push = |row: usize,
                col: usize,
                tokens: Vec<String>,
                annotate: Option<(&'static str, String)>,
                out: &mut Vec<Line>| {
        out.push(Line {
            row,
            col,
            tokens,
            annotate,
        });
    };

    if receipt {
        // Two-column receipt: metadata split across the columns, two
        // parallel item columns, centre total, left footer.
        push(
            1,
            spec.col_mid,
            vendor_tokens,
            Some((entities::VENDOR_NAME, vendor)),
            &mut out,
        );
        push(
            2,
            spec.col_left,
            number_line,
            Some((entities::INVOICE_NUMBER, number)),
            &mut out,
        );
        push(
            2,
            spec.col_right,
            date_line,
            Some((entities::INVOICE_DATE, issued)),
            &mut out,
        );
        push(
            3,
            spec.col_left,
            due_line,
            Some((entities::DUE_DATE, due)),
            &mut out,
        );
        push(
            3,
            spec.col_right,
            customer_line,
            Some((entities::CUSTOMER_NAME, customer)),
            &mut out,
        );
        for i in 0..spec.n_items {
            for col in [spec.col_left, spec.col_right] {
                let item = vec![textgen::pick_cap(rng, Topic::Structure), item_amount(rng)];
                push(4 + i, col, item, None, &mut out);
            }
        }
        push(
            12,
            spec.col_mid,
            total_line,
            Some((entities::TOTAL_DUE, total)),
            &mut out,
        );
        push(13, spec.col_left, footer, None, &mut out);
    } else {
        // Full-page invoice: left header/table column, right metadata
        // and totals column, footer row shared between both.
        push(
            1,
            spec.col_left,
            vendor_tokens,
            Some((entities::VENDOR_NAME, vendor)),
            &mut out,
        );
        push(
            2,
            spec.col_right,
            number_line,
            Some((entities::INVOICE_NUMBER, number)),
            &mut out,
        );
        push(
            3,
            spec.col_right,
            date_line,
            Some((entities::INVOICE_DATE, issued)),
            &mut out,
        );
        push(
            4,
            spec.col_right,
            due_line,
            Some((entities::DUE_DATE, due)),
            &mut out,
        );
        push(
            5,
            spec.col_left,
            customer_line,
            Some((entities::CUSTOMER_NAME, customer)),
            &mut out,
        );
        for i in 0..spec.n_items {
            let item = vec![
                rng.gen_range(1..10u32).to_string(),
                textgen::pick_cap(rng, Topic::Structure),
                item_amount(rng),
                item_amount(rng),
            ];
            push(6 + i, spec.col_left, item, None, &mut out);
        }
        push(
            12,
            spec.col_right,
            vec!["Subtotal".to_string(), subtotal],
            None,
            &mut out,
        );
        push(
            13,
            spec.col_right,
            vec!["Tax".to_string(), tax],
            None,
            &mut out,
        );
        push(
            14,
            spec.col_right,
            total_line,
            Some((entities::TOTAL_DUE, total)),
            &mut out,
        );
        push(14, spec.col_left, footer, None, &mut out);
    }
    out
}

/// Builds one clean family document.
fn build(fam: usize, content_index: usize, seed: u64) -> AnnotatedDocument {
    let fam = fam % FAMILIES;
    let spec = family_spec(fam);
    let mut rng = StdRng::seed_from_u64(
        (seed ^ 0x1DC0_1CE5)
            .wrapping_add((content_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    let mut doc = Document::new(format!("inv-{fam}-{content_index:04}"), PAGE_W, PAGE_H);
    let mut annotations = Vec::new();
    for line in lines(&spec, is_receipt(fam), &mut rng) {
        let cy = line.row as f64 * ROW_STEP + spec.y_off;
        let mut boxes = Vec::with_capacity(line.tokens.len());
        for (i, w) in line.tokens.iter().enumerate() {
            let cx = line.col as f64 * COL_STEP + spec.x_off + i as f64 * WORD_PITCH;
            let bbox = BBox::new(
                cx - spec.word_w / 2.0,
                cy - spec.word_h / 2.0,
                spec.word_w,
                spec.word_h,
            );
            doc.push_text(TextElement::word(w.clone(), bbox));
            boxes.push(bbox);
        }
        if let Some((entity, value)) = line.annotate {
            let span = BBox::enclosing(boxes.iter()).expect("line has tokens");
            annotations.push(EntityAnnotation::new(entity, span, value));
        }
    }
    AnnotatedDocument { doc, annotations }
}

/// One clean (noise-free) invoice; family = `doc_index % FAMILIES`.
pub fn generate_clean(doc_index: usize, seed: u64) -> AnnotatedDocument {
    build(doc_index % FAMILIES, doc_index, seed)
}

/// Document `doc_index` of the noised D4 stream — the doc-id-addressable
/// entry point, mirroring `dataset::generate_one`.
pub fn generate_one(doc_index: usize, seed: u64) -> AnnotatedDocument {
    let mut rng = StdRng::seed_from_u64(
        (seed ^ 0x1D0C).wrapping_add((doc_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    ocr::apply(&generate_clean(doc_index, seed), &invoice_ocr(), &mut rng)
}

/// `n` noised invoices, round-robin over the families.
pub fn corpus(n: usize, seed: u64) -> Vec<AnnotatedDocument> {
    (0..n).map(|i| generate_one(i, seed)).collect()
}

/// Vendor template family of a corpus document index.
pub fn family_of(doc_index: usize) -> usize {
    doc_index % FAMILIES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_members_share_clean_geometry() {
        for fam in 0..FAMILIES {
            let a = generate_clean(fam, 7);
            let b = generate_clean(fam + FAMILIES, 7);
            assert_eq!(a.doc.texts.len(), b.doc.texts.len(), "family {fam}");
            for (x, y) in a.doc.texts.iter().zip(&b.doc.texts) {
                assert_eq!(x.bbox, y.bbox, "family {fam} geometry drifted");
            }
            let texts_differ = a
                .doc
                .texts
                .iter()
                .zip(&b.doc.texts)
                .any(|(x, y)| x.text != y.text);
            assert!(texts_differ, "family {fam} content is frozen");
        }
    }

    #[test]
    fn centroids_respect_the_lattice_margin() {
        for fam in 0..FAMILIES {
            let d = generate_clean(fam, 7);
            for t in &d.doc.texts {
                let c = t.bbox.centroid();
                for (v, step) in [(c.x, COL_STEP), (c.y, ROW_STEP)] {
                    let r = v.rem_euclid(step);
                    let margin = r.min(step - r);
                    assert!(
                        margin >= CENTROID_MARGIN,
                        "family {fam}: centroid {v} margin {margin}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_six_entities_annotated_once() {
        for i in 0..FAMILIES {
            let d = generate_one(i, 11);
            for e in entities::ALL {
                assert_eq!(d.annotations_for(e).len(), 1, "doc {i} missing {e}");
            }
        }
    }

    #[test]
    fn annotations_carry_bare_values() {
        let d = generate_clean(0, 3);
        for a in &d.annotations {
            match a.entity.as_str() {
                entities::INVOICE_NUMBER => {
                    assert!(a.text.chars().all(|c| c.is_ascii_digit()), "{}", a.text)
                }
                entities::TOTAL_DUE => assert!(a.text.starts_with('$'), "{}", a.text),
                _ => assert!(!a.text.is_empty()),
            }
            // The label prefix stays out of the annotated value.
            assert!(!a.text.contains("Invoice") && !a.text.contains("Total"));
        }
    }

    #[test]
    fn both_styles_render() {
        let invoice = generate_clean(0, 5); // even family: full-page
        let receipt = generate_clean(1, 5); // odd family: two-column
        assert!(!is_receipt(0) && is_receipt(1));
        // The receipt packs two item columns → more lines share a row.
        assert!(!invoice.doc.texts.is_empty() && !receipt.doc.texts.is_empty());
        let rows = |d: &AnnotatedDocument| {
            let mut ys: Vec<i64> = d.doc.texts.iter().map(|t| t.bbox.y as i64).collect();
            ys.sort();
            ys.dedup();
            ys.len()
        };
        assert!(rows(&receipt) < rows(&invoice) + 5);
    }

    #[test]
    fn corpus_is_deterministic_and_noised() {
        let a = corpus(6, 3);
        let b = corpus(6, 3);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.doc, y.doc);
        }
        let clean = generate_clean(0, 3);
        assert!(a[0]
            .doc
            .texts
            .iter()
            .zip(&clean.doc.texts)
            .any(|(n, c)| n.bbox != c.bbox));
    }

    #[test]
    fn noise_channel_preserves_element_count() {
        // No drops/merges/splits: the family-fingerprint premise.
        for i in 0..8 {
            let clean = generate_clean(i, 9);
            let noised = generate_one(i, 9);
            assert_eq!(clean.doc.texts.len(), noised.doc.texts.len());
        }
    }
}
