//! Dataset assembly: generation + OCR channel + holdout corpus per
//! experimental dataset.

use crate::holdout::{self, HoldoutCorpus};
use crate::ocr::{self, OcrConfig};
use crate::{flyers, invoices, posters, tax, templated};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vs2_docmodel::AnnotatedDocument;

/// The three experimental datasets of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// NIST Tax forms (structured, scanned, markup-free).
    D1,
    /// Event posters (visually ornate, mobile captures + digital).
    D2,
    /// Real-estate flyers (HTML, per-broker templates).
    D3,
    /// Invoices and receipts (`crate::invoices`): whitespace-regular
    /// line-item tables — the triage-routing workload. Not one of the
    /// paper's datasets, so it is excluded from [`DatasetId::ALL`];
    /// it has its own entity schema and holdout corpus.
    D4,
    /// Fixed-geometry template families (`crate::templated`): the
    /// plan-cache workload. Not one of the paper's datasets, so it is
    /// excluded from [`DatasetId::ALL`]; it shares D3's entity schema
    /// and holdout corpus.
    Templated,
}

impl DatasetId {
    /// The paper's three experimental datasets (excludes
    /// [`DatasetId::D4`] and [`DatasetId::Templated`], the
    /// serving-layer workloads).
    pub const ALL: [DatasetId; 3] = [DatasetId::D1, DatasetId::D2, DatasetId::D3];

    /// The paper's datasets plus the D4 invoices corpus — the span the
    /// serving-tier equivalence batteries and the triage experiments
    /// run over.
    pub const EXTENDED: [DatasetId; 4] =
        [DatasetId::D1, DatasetId::D2, DatasetId::D3, DatasetId::D4];

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::D1 => "D1",
            DatasetId::D2 => "D2",
            DatasetId::D3 => "D3",
            DatasetId::D4 => "D4",
            DatasetId::Templated => "Templated",
        }
    }

    /// `true` when documents carry markup hints (required by VIPS-style
    /// baselines; D1 is scanned and has none — "Evidently, A4 could not
    /// be applied on dataset D1").
    pub fn has_markup(&self) -> bool {
        !matches!(self, DatasetId::D1 | DatasetId::D4 | DatasetId::Templated)
    }

    /// Entity keys of the dataset's IE task.
    pub fn entity_types(&self) -> Vec<String> {
        match self {
            DatasetId::D1 => tax::all_field_descriptors()
                .into_iter()
                .map(|(k, _)| k)
                .collect(),
            DatasetId::D2 => posters::entities::ALL
                .iter()
                .map(|s| s.to_string())
                .collect(),
            DatasetId::D3 | DatasetId::Templated => flyers::entities::ALL
                .iter()
                .map(|s| s.to_string())
                .collect(),
            DatasetId::D4 => invoices::entities::ALL
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

// Job specs address datasets by name ("D1"…); see `vs2-serve`.
#[cfg(feature = "serde")]
serde::impl_serde_unit_enum!(DatasetId {
    D1,
    D2,
    D3,
    D4,
    Templated
});

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// Number of documents.
    pub n_docs: usize,
    /// Master seed.
    pub seed: u64,
    /// OCR noise override; `None` selects the per-dataset default
    /// (light scan noise for D1, mixed mobile/digital for D2, clean for
    /// D3's digital HTML).
    pub ocr: Option<OcrConfig>,
}

impl DatasetConfig {
    /// `n_docs` documents with the default noise model.
    pub fn new(n_docs: usize, seed: u64) -> Self {
        Self {
            n_docs,
            seed,
            ocr: None,
        }
    }

    /// Builder-style OCR override.
    pub fn with_ocr(mut self, ocr: OcrConfig) -> Self {
        self.ocr = Some(ocr);
        self
    }
}

/// Generates an annotated, OCR-noised dataset.
///
/// Equivalent to `(0..n_docs).map(|i| generate_one(id, i, config))`: every
/// document derives its own OCR randomness from `(seed, doc_index)`, so
/// any document of the stream can be regenerated in isolation.
pub fn generate(id: DatasetId, config: DatasetConfig) -> Vec<AnnotatedDocument> {
    (0..config.n_docs)
        .map(|i| generate_one(id, i, config))
        .collect()
}

/// Generates document `doc_index` of the dataset stream addressed by
/// `(id, config.seed)` without generating its predecessors — the
/// doc-id-addressable entry point batch-serving job specs rely on.
/// `config.n_docs` is ignored; `doc_index` may lie anywhere in the
/// stream.
pub fn generate_one(id: DatasetId, doc_index: usize, config: DatasetConfig) -> AnnotatedDocument {
    let clean = match id {
        DatasetId::D1 => tax::generate_form(doc_index, config.seed),
        DatasetId::D2 => posters::generate_poster(doc_index, config.seed),
        DatasetId::D3 => flyers::generate_flyer(doc_index, config.seed),
        DatasetId::D4 => invoices::generate_clean(doc_index, config.seed),
        DatasetId::Templated => templated::generate_clean(doc_index, config.seed),
    };
    let noise = config.ocr.unwrap_or_else(|| default_ocr(id, doc_index));
    // Per-document OCR stream: splitting by doc index keeps document i
    // identical whether it is generated alone or as part of a batch.
    let mut rng = StdRng::seed_from_u64(
        (config.seed ^ 0x0C12).wrapping_add((doc_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    ocr::apply(&clean, &noise, &mut rng)
}

/// Per-dataset default OCR noise. D2 mixes mobile captures (heavy noise,
/// ~63% of documents, matching the paper's 1375/2190) with digital PDFs.
pub fn default_ocr(id: DatasetId, doc_index: usize) -> OcrConfig {
    match id {
        DatasetId::D1 => OcrConfig::light(),
        DatasetId::D2 => {
            if doc_index % 8 < 5 {
                OcrConfig::heavy()
            } else {
                OcrConfig::clean()
            }
        }
        DatasetId::D3 => OcrConfig::clean(),
        DatasetId::D4 => invoices::invoice_ocr(),
        DatasetId::Templated => templated::template_ocr(),
    }
}

/// Builds the dataset's holdout corpus (Table 2 analogue).
pub fn holdout_corpus(id: DatasetId, seed: u64) -> HoldoutCorpus {
    match id {
        DatasetId::D1 => holdout::build_d1(),
        // "first 500 results obtained from the search queries" for D2 and
        // "top 100 results for each search query" for D3.
        DatasetId::D2 => holdout::build_d2(100, seed),
        // The templated corpus shares D3's entity schema, so D3's
        // holdout (and hence D3's model) serves it.
        DatasetId::D3 | DatasetId::Templated => holdout::build_d3(60, seed),
        DatasetId::D4 => holdout::build_d4(60, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_each_dataset() {
        for id in DatasetId::ALL {
            let docs = generate(id, DatasetConfig::new(4, 1));
            assert_eq!(docs.len(), 4);
            for d in &docs {
                assert!(!d.doc.is_empty());
                assert!(!d.annotations.is_empty());
            }
        }
    }

    #[test]
    fn d2_mixes_noise_levels() {
        // Heavy-noise docs rotate; clean docs don't.
        let heavy = default_ocr(DatasetId::D2, 0);
        let clean = default_ocr(DatasetId::D2, 5);
        assert!(heavy.char_sub_rate > clean.char_sub_rate);
    }

    #[test]
    fn markup_presence_matches_dataset() {
        assert!(!DatasetId::D1.has_markup());
        assert!(DatasetId::D2.has_markup());
        assert!(DatasetId::D3.has_markup());
        let d3 = generate(DatasetId::D3, DatasetConfig::new(1, 2));
        assert!(d3[0].doc.texts.iter().any(|t| t.markup.is_some()));
    }

    #[test]
    fn entity_types_are_nonempty() {
        assert!(DatasetId::D1.entity_types().len() > 100);
        assert_eq!(DatasetId::D2.entity_types().len(), 5);
        assert_eq!(DatasetId::D3.entity_types().len(), 6);
    }

    #[test]
    fn holdout_corpora_exist() {
        for id in DatasetId::ALL {
            assert!(!holdout_corpus(id, 1).is_empty());
        }
    }

    #[test]
    fn ocr_override_applies() {
        let noisy = generate(
            DatasetId::D3,
            DatasetConfig::new(1, 3).with_ocr(OcrConfig::heavy()),
        );
        let clean = generate(DatasetId::D3, DatasetConfig::new(1, 3));
        // Heavy noise changes the transcription relative to the clean default.
        assert_ne!(noisy[0].doc.transcribe_all(), clean[0].doc.transcribe_all());
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(DatasetId::D2, DatasetConfig::new(3, 9));
        let b = generate(DatasetId::D2, DatasetConfig::new(3, 9));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.doc, y.doc);
        }
    }

    #[test]
    fn generate_one_is_addressable() {
        // Document i regenerated in isolation matches the batch stream —
        // including OCR noise.
        for id in DatasetId::ALL {
            let batch = generate(id, DatasetConfig::new(4, 9));
            for (i, expected) in batch.iter().enumerate() {
                let solo = generate_one(id, i, DatasetConfig::new(1, 9));
                assert_eq!(&solo, expected, "{id:?} doc {i}");
            }
        }
    }
}
