//! # vs2-synth
//!
//! Synthetic stand-ins for the VS2 paper's three experimental datasets
//! (§6.1) and the assets around them:
//!
//! * [`tax`] — D1, the NIST Tax dataset analogue (20 fixed form faces,
//!   labelled field descriptors, grid layout, scan noise);
//! * [`posters`] — D2, visually ornate event posters with five named
//!   entities and heavy layout variance;
//! * [`flyers`] — D3, commercial real-estate flyers across 20 broker
//!   template families with markup hints;
//! * [`ocr`] — the Tesseract-like transcription noise channel;
//! * [`holdout`] — the distant-supervision holdout corpora of Table 2;
//! * [`render`] / [`textgen`] — layout and surface-text generation shared
//!   by the generators;
//! * [`dataset`] — one-call assembly of a noised, annotated dataset;
//! * [`adversarial`] — known-hostile degenerate documents for the
//!   conformance suite;
//! * [`templated`] — fixed-geometry template families plus adversarial
//!   near-miss templates for the plan-cache subsystem;
//! * [`invoices`] — D4, whitespace-regular invoices and receipts: the
//!   triage-routing workload.
//!
//! All generation is deterministic in the provided seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod dataset;
pub mod flyers;
pub mod holdout;
pub mod invoices;
pub mod ocr;
pub mod posters;
pub mod render;
pub mod tax;
pub mod templated;
pub mod textgen;

pub use dataset::{generate, generate_one, holdout_corpus, DatasetConfig, DatasetId};
pub use holdout::{HoldoutCorpus, HoldoutEntry};
pub use ocr::OcrConfig;

#[cfg(test)]
mod proptests {
    use crate::dataset::{generate, DatasetConfig, DatasetId};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn any_seed_generates_valid_documents(seed in 0u64..1_000_000, n in 1usize..4) {
            for id in DatasetId::ALL {
                let docs = generate(id, DatasetConfig::new(n, seed));
                prop_assert_eq!(docs.len(), n);
                for d in docs {
                    prop_assert!(!d.doc.texts.is_empty());
                    // Every annotation intersects at least one element or
                    // was dropped by OCR — the bbox itself must stay sane.
                    for a in &d.annotations {
                        prop_assert!(a.bbox.w > 0.0 && a.bbox.h > 0.0);
                    }
                }
            }
        }
    }
}
