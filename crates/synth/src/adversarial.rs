//! Adversarial documents for conformance testing.
//!
//! The three dataset generators produce plausible pages; the conformance
//! suite also needs the *implausible* ones — inputs that historically
//! crash layout-analysis code. Each builder here is a named, deterministic
//! degenerate case, and [`corpus`] assembles them all so a single loop can
//! assert "the pipeline survives every known-hostile input".
//!
//! These documents are test fixtures, not dataset members: they carry no
//! annotations and never feed model learning.

use vs2_docmodel::{BBox, Document, ImageElement, Lab, TextElement};

/// A page with no elements at all.
pub fn empty_page() -> Document {
    Document::new("adv-empty", 612.0, 792.0)
}

/// A single word on an otherwise blank page — below every
/// `min_block_elements` threshold.
pub fn single_element() -> Document {
    let mut d = Document::new("adv-single", 612.0, 792.0);
    d.push_text(TextElement::word(
        "alone",
        BBox::new(300.0, 400.0, 40.0, 10.0),
    ));
    d
}

/// Every element has a zero-area bounding box (degenerate extents are
/// clamped to zero by `BBox::new`).
pub fn zero_area_elements() -> Document {
    let mut d = Document::new("adv-zero-area", 612.0, 792.0);
    for i in 0..6 {
        let x = 50.0 + i as f64 * 90.0;
        d.push_text(TextElement::word("dot", BBox::new(x, 100.0, 0.0, 0.0)));
        d.push_text(TextElement::word("line", BBox::new(x, 200.0, 0.0, 12.0)));
        d.push_text(TextElement::word("bar", BBox::new(x, 300.0, 35.0, 0.0)));
    }
    d
}

/// Many identical words stacked at the exact same position — ties in
/// every distance computation the clusterer makes.
pub fn duplicate_positions() -> Document {
    let mut d = Document::new("adv-duplicates", 612.0, 792.0);
    for _ in 0..12 {
        d.push_text(TextElement::word(
            "echo",
            BBox::new(100.0, 100.0, 40.0, 10.0),
        ));
    }
    d
}

/// An extreme-aspect-ratio page: one pixel-row tall, very wide.
pub fn extreme_aspect_page() -> Document {
    let mut d = Document::new("adv-aspect", 100_000.0, 1.0);
    for i in 0..8 {
        d.push_text(TextElement::word(
            "strip",
            BBox::new(i as f64 * 12_000.0, 0.0, 40.0, 1.0),
        ));
    }
    d
}

/// A handful of words separated by astronomical distances on a huge page.
/// Before the segmenter capped its raster size, the tight bounding box of
/// this document demanded a grid of ~6×10¹⁴ cells and the allocation
/// aborted the process.
pub fn far_apart_elements() -> Document {
    let mut d = Document::new("adv-far-apart", 1.0e8, 1.0e8);
    d.push_text(TextElement::word(
        "north",
        BBox::new(10.0, 10.0, 40.0, 10.0),
    ));
    d.push_text(TextElement::word("west", BBox::new(20.0, 30.0, 40.0, 10.0)));
    d.push_text(TextElement::word(
        "south",
        BBox::new(9.0e7, 9.0e7, 40.0, 10.0),
    ));
    d.push_text(TextElement::word(
        "east",
        BBox::new(9.0e7 + 60.0, 9.0e7, 40.0, 10.0),
    ));
    d
}

/// Dense total overlap: every box covers every other box's area.
pub fn dense_overlap() -> Document {
    let mut d = Document::new("adv-overlap", 612.0, 792.0);
    for i in 0..10 {
        let inset = i as f64 * 2.0;
        d.push_text(TextElement::word(
            "layer",
            BBox::new(100.0 + inset, 100.0 + inset, 200.0 - inset, 100.0 - inset),
        ));
    }
    d
}

/// Spacing far below the raster cell size — no whitespace position
/// anywhere between the elements.
pub fn sub_cell_spacing() -> Document {
    let mut d = Document::new("adv-subcell", 612.0, 792.0);
    for row in 0..5 {
        for col in 0..10 {
            d.push_text(TextElement::word(
                "tight",
                BBox::new(
                    50.0 + col as f64 * 20.25,
                    50.0 + row as f64 * 10.25,
                    20.0,
                    10.0,
                ),
            ));
        }
    }
    d
}

/// A page containing only images — no text to transcribe, tag, or match.
pub fn images_only() -> Document {
    let mut d = Document::new("adv-images", 612.0, 792.0);
    for i in 0..4 {
        d.push_image(ImageElement::new(
            i,
            BBox::new(50.0 + i as f64 * 140.0, 100.0, 120.0, 90.0),
            Lab::new(50.0, 5.0 * i as f64, -5.0 * i as f64),
        ));
    }
    d
}

/// Elements placed entirely outside the nominal page bounds.
pub fn out_of_bounds_elements() -> Document {
    let mut d = Document::new("adv-oob", 612.0, 792.0);
    d.push_text(TextElement::word(
        "above",
        BBox::new(100.0, -500.0, 40.0, 10.0),
    ));
    d.push_text(TextElement::word(
        "left",
        BBox::new(-900.0, 100.0, 40.0, 10.0),
    ));
    d.push_text(TextElement::word(
        "beyond",
        BBox::new(5_000.0, 5_000.0, 40.0, 10.0),
    ));
    d.push_text(TextElement::word(
        "inside",
        BBox::new(300.0, 400.0, 40.0, 10.0),
    ));
    d
}

/// A steeply skewed two-line capture — pushes the deskew estimator to a
/// large rotation angle.
pub fn steep_skew() -> Document {
    let mut d = Document::new("adv-skew", 612.0, 792.0);
    for line in 0..2 {
        for col in 0..8 {
            d.push_text(TextElement::word(
                "slant",
                BBox::new(
                    60.0 + col as f64 * 60.0,
                    100.0 + line as f64 * 120.0 + col as f64 * 18.0,
                    50.0,
                    10.0,
                ),
            ));
        }
    }
    d
}

/// Every known-hostile document, paired with a stable name for failure
/// reports.
pub fn corpus() -> Vec<(&'static str, Document)> {
    vec![
        ("empty_page", empty_page()),
        ("single_element", single_element()),
        ("zero_area_elements", zero_area_elements()),
        ("duplicate_positions", duplicate_positions()),
        ("extreme_aspect_page", extreme_aspect_page()),
        ("far_apart_elements", far_apart_elements()),
        ("dense_overlap", dense_overlap()),
        ("sub_cell_spacing", sub_cell_spacing()),
        ("images_only", images_only()),
        ("out_of_bounds_elements", out_of_bounds_elements()),
        ("steep_skew", steep_skew()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_documents_distinct() {
        let corpus = corpus();
        let mut names: Vec<&str> = corpus.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
        let mut ids: Vec<&str> = corpus.iter().map(|(_, d)| d.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), corpus.len());
    }

    #[test]
    fn zero_area_boxes_are_clamped_not_negative() {
        for (_, b) in zero_area_elements().texts.iter().map(|t| (&t.text, t.bbox)) {
            assert!(b.w >= 0.0 && b.h >= 0.0);
        }
    }

    #[test]
    fn builders_are_deterministic() {
        let a = far_apart_elements();
        let b = far_apart_elements();
        assert_eq!(a.texts.len(), b.texts.len());
        for (x, y) in a.texts.iter().zip(&b.texts) {
            assert_eq!(x.bbox, y.bbox);
            assert_eq!(x.text, y.text);
        }
    }
}
