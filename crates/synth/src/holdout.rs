//! Holdout-corpus construction (§5.2.1 and Table 2 of the paper).
//!
//! The paper's distant supervision learns patterns from "a readily
//! annotated, structured, text-only corpus, constructed … by scraping
//! relevant public domain websites": irs.gov for D1, allevents.in and
//! dl.acm.org for D2, fsbo.com and homesbyowner.com for D3. The websites
//! are not scrapable here, so the corpus is generated from the same
//! fixed-format sentence grammars those sites exhibit — annotated text
//! entries `(N_i, T_{N_i})` for every named entity, in diverse fixed
//! contexts. The grammars deliberately overlap with (but are not equal
//! to) the poster/flyer surface forms: the paper's point is that the
//! corpus shares *syntactic* structure with the documents, not layout.

use crate::tax;
use crate::textgen;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use vs2_nlp::lexicon::Topic;

/// One annotated holdout entry: the entity's text plus the fixed-format
/// sentence context it appeared in.
#[derive(Debug, Clone, PartialEq)]
pub struct HoldoutEntry {
    /// Entity key.
    pub entity: String,
    /// The annotated entity text `T_{N_i}`.
    pub text: String,
    /// The full sentence the entity appeared in (context for mining).
    pub context: String,
}

/// A text-only holdout corpus for one dataset.
#[derive(Debug, Clone, Default)]
pub struct HoldoutCorpus {
    /// All entries.
    pub entries: Vec<HoldoutEntry>,
}

impl HoldoutCorpus {
    /// Entries for one entity.
    pub fn for_entity(&self, entity: &str) -> Vec<&HoldoutEntry> {
        self.entries.iter().filter(|e| e.entity == entity).collect()
    }

    /// Distinct entity keys, sorted.
    pub fn entities(&self) -> Vec<String> {
        let mut v: Vec<String> = self.entries.iter().map(|e| e.entity.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Total entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the corpus has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// D1 holdout corpus: the 20 descriptor tables (entity id → field
/// descriptor). For D1 "exact string match against the field descriptors
/// … was carried out", so the descriptor doubles as text and context.
pub fn build_d1() -> HoldoutCorpus {
    HoldoutCorpus {
        entries: tax::all_field_descriptors()
            .into_iter()
            .map(|(entity, descriptor)| HoldoutEntry {
                entity,
                text: descriptor.clone(),
                context: descriptor,
            })
            .collect(),
    }
}

/// D2 holdout corpus: event listings in fixed-format contexts (the
/// allevents.in / dl.acm.org analogue of Table 2).
pub fn build_d2(per_entity: usize, seed: u64) -> HoldoutCorpus {
    use crate::posters::entities as e2;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD2);
    let mut entries = Vec::new();
    for _ in 0..per_entity {
        // Event Title.
        let title = textgen::event_title(&mut rng);
        let ctx = match rng.gen_range(0..3) {
            0 => format!("{} presents {}", textgen::org_name(&mut rng), title),
            1 => format!("{title} is coming to town"),
            _ => format!("join the {title} this weekend"),
        };
        entries.push(HoldoutEntry {
            entity: e2::EVENT_TITLE.into(),
            text: title,
            context: ctx,
        });

        // Event Place.
        let addr = textgen::street_address(&mut rng);
        let ctx = match rng.gen_range(0..2) {
            0 => format!("located at {addr}"),
            _ => format!("venue {addr}"),
        };
        entries.push(HoldoutEntry {
            entity: e2::EVENT_PLACE.into(),
            text: addr,
            context: ctx,
        });

        // Event Time.
        let time = textgen::event_time(&mut rng);
        let ctx = match rng.gen_range(0..2) {
            0 => format!("doors open {time}"),
            _ => format!("starts {time}"),
        };
        entries.push(HoldoutEntry {
            entity: e2::EVENT_TIME.into(),
            text: time,
            context: ctx,
        });

        // Event Organizer.
        let organizer = if rng.gen_bool(0.5) {
            textgen::person_name(&mut rng)
        } else {
            textgen::org_name(&mut rng)
        };
        let ctx = textgen::organizer_line(&mut rng, &organizer);
        entries.push(HoldoutEntry {
            entity: e2::EVENT_ORGANIZER.into(),
            text: organizer,
            context: ctx,
        });

        // Event Description.
        let desc = textgen::description_sentence(&mut rng, Topic::Event);
        entries.push(HoldoutEntry {
            entity: e2::EVENT_DESCRIPTION.into(),
            text: desc.clone(),
            context: desc,
        });
    }
    HoldoutCorpus { entries }
}

/// D3 holdout corpus: property listings in fixed-format contexts (the
/// fsbo.com / homesbyowner.com analogue of Table 2).
pub fn build_d3(per_entity: usize, seed: u64) -> HoldoutCorpus {
    use crate::flyers::entities as e3;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD3);
    let mut entries = Vec::new();
    for _ in 0..per_entity {
        let broker = textgen::person_name(&mut rng);
        let ctx = match rng.gen_range(0..3) {
            0 => format!("listed by {broker}"),
            1 => format!("contact {broker} for details"),
            _ => format!("{broker} licensed broker"),
        };
        entries.push(HoldoutEntry {
            entity: e3::BROKER_NAME.into(),
            text: broker,
            context: ctx,
        });

        let phone = textgen::phone(&mut rng);
        let ctx = match rng.gen_range(0..2) {
            0 => format!("call {phone}"),
            _ => format!("phone {phone}"),
        };
        entries.push(HoldoutEntry {
            entity: e3::BROKER_PHONE.into(),
            text: phone,
            context: ctx,
        });

        let email = textgen::email(&mut rng);
        entries.push(HoldoutEntry {
            entity: e3::BROKER_EMAIL.into(),
            text: email.clone(),
            context: format!("email {email}"),
        });

        let addr = textgen::street_address(&mut rng);
        entries.push(HoldoutEntry {
            entity: e3::PROPERTY_ADDRESS.into(),
            text: addr.clone(),
            context: format!("property at {addr}"),
        });

        let size = textgen::property_size(&mut rng);
        entries.push(HoldoutEntry {
            entity: e3::PROPERTY_SIZE.into(),
            text: size.clone(),
            context: format!("offering {size}"),
        });

        let desc = textgen::property_description(&mut rng);
        entries.push(HoldoutEntry {
            entity: e3::PROPERTY_DESCRIPTION.into(),
            text: desc.clone(),
            context: desc,
        });
    }
    HoldoutCorpus { entries }
}

/// D4 holdout corpus: billing boilerplate in fixed-format contexts (the
/// invoice analogue of Table 2). The context keywords mirror the D4
/// document surface forms (`Invoice No …`, `Date …`, `Due …`,
/// `Bill To …`, `Total $…`) so the mined patterns transfer.
pub fn build_d4(per_entity: usize, seed: u64) -> HoldoutCorpus {
    use crate::invoices::entities as e4;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD4);
    let mut entries = Vec::new();
    for _ in 0..per_entity {
        let vendor = format!(
            "{} {}",
            textgen::pick_cap(&mut rng, Topic::PersonLast),
            textgen::pick_cap(&mut rng, Topic::Organization)
        );
        let ctx = match rng.gen_range(0..3) {
            0 => format!("issued by {vendor}"),
            1 => format!("{vendor} accounts receivable"),
            _ => format!("remit payment to {vendor}"),
        };
        entries.push(HoldoutEntry {
            entity: e4::VENDOR_NAME.into(),
            text: vendor,
            context: ctx,
        });

        let number = textgen::invoice_number(&mut rng);
        let ctx = match rng.gen_range(0..2) {
            0 => format!("invoice no {number}"),
            _ => format!("invoice number {number}"),
        };
        entries.push(HoldoutEntry {
            entity: e4::INVOICE_NUMBER.into(),
            text: number,
            context: ctx,
        });

        let date = textgen::calendar_date(&mut rng);
        let ctx = match rng.gen_range(0..2) {
            0 => format!("date {date}"),
            _ => format!("invoice date {date}"),
        };
        entries.push(HoldoutEntry {
            entity: e4::INVOICE_DATE.into(),
            text: date,
            context: ctx,
        });

        let due = textgen::calendar_date(&mut rng);
        let ctx = match rng.gen_range(0..2) {
            0 => format!("due {due}"),
            _ => format!("payment due {due}"),
        };
        entries.push(HoldoutEntry {
            entity: e4::DUE_DATE.into(),
            text: due,
            context: ctx,
        });

        let customer = textgen::person_name(&mut rng);
        let ctx = match rng.gen_range(0..2) {
            0 => format!("bill to {customer}"),
            _ => format!("sold to {customer}"),
        };
        entries.push(HoldoutEntry {
            entity: e4::CUSTOMER_NAME.into(),
            text: customer,
            context: ctx,
        });

        let total = textgen::money_amount(&mut rng);
        let ctx = match rng.gen_range(0..3) {
            0 => format!("total {total}"),
            1 => format!("total due {total}"),
            _ => format!("balance due {total}"),
        };
        entries.push(HoldoutEntry {
            entity: e4::TOTAL_DUE.into(),
            text: total,
            context: ctx,
        });
    }
    HoldoutCorpus { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_corpus_maps_every_field() {
        let c = build_d1();
        assert_eq!(c.len(), tax::FACES * tax::FIELDS_PER_FACE);
        assert_eq!(c.entities().len(), c.len(), "one entry per field");
    }

    #[test]
    fn d2_corpus_covers_all_entities() {
        let c = build_d2(50, 1);
        let ents = c.entities();
        assert_eq!(ents.len(), 5);
        for e in crate::posters::entities::ALL {
            assert_eq!(c.for_entity(e).len(), 50);
        }
    }

    #[test]
    fn d3_corpus_covers_all_entities() {
        let c = build_d3(30, 1);
        assert_eq!(c.entities().len(), 6);
        for e in crate::flyers::entities::ALL {
            assert_eq!(c.for_entity(e).len(), 30);
        }
    }

    #[test]
    fn d4_corpus_covers_all_entities() {
        let c = build_d4(30, 1);
        assert_eq!(c.entities().len(), 6);
        for e in crate::invoices::entities::ALL {
            assert_eq!(c.for_entity(e).len(), 30);
        }
        for e in &c.entries {
            assert!(
                e.context.contains(&e.text),
                "context {:?} lacks text {:?}",
                e.context,
                e.text
            );
        }
    }

    #[test]
    fn contexts_contain_the_entity_text() {
        let c = build_d2(20, 3);
        for e in &c.entries {
            assert!(
                e.context.contains(&e.text),
                "context {:?} lacks text {:?}",
                e.context,
                e.text
            );
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = build_d3(10, 5);
        let b = build_d3(10, 5);
        assert_eq!(a.entries, b.entries);
    }

    #[test]
    fn empty_corpus_helpers() {
        let c = HoldoutCorpus::default();
        assert!(c.is_empty());
        assert!(c.entities().is_empty());
    }
}
