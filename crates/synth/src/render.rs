//! Text layout: turning word sequences into positioned [`TextElement`]s.
//!
//! The generators lay text out with a simple metric model: a glyph is
//! `CHAR_WIDTH_EM` × font-size wide, a word gap is `WORD_GAP_EM` × font-size,
//! and lines advance by `LEADING` × font-size. What matters for the
//! segmentation experiments is not typographic fidelity but that
//! *intra-block* spacing is consistently smaller than *inter-block*
//! spacing — the regularity VS2-Segment's Algorithm 1 detects.

use vs2_docmodel::{BBox, Document, Lab, MarkupClass, Rgb, TextElement};

/// Average glyph advance as a fraction of font size.
pub const CHAR_WIDTH_EM: f64 = 0.55;
/// Gap between words as a fraction of font size.
pub const WORD_GAP_EM: f64 = 0.30;
/// Baseline-to-baseline distance as a fraction of font size.
pub const LEADING: f64 = 1.35;

/// Width of a word at a font size under the metric model.
pub fn word_width(word: &str, font_size: f64) -> f64 {
    (word.chars().count().max(1)) as f64 * CHAR_WIDTH_EM * font_size
}

/// Horizontal alignment of a text run inside its region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Flush left.
    Left,
    /// Centred.
    Center,
    /// Flush right.
    Right,
}

/// Styling applied to a placed run.
#[derive(Debug, Clone, Copy)]
pub struct TextStyle {
    /// Font size in document units.
    pub font_size: f64,
    /// Ink colour.
    pub color: Rgb,
    /// Alignment within the region width.
    pub align: Align,
    /// Markup hint attached to every word (None for scanned documents).
    pub markup: Option<MarkupClass>,
}

impl TextStyle {
    /// Plain black left-aligned body text.
    pub fn body(font_size: f64) -> Self {
        Self {
            font_size,
            color: Rgb::BLACK,
            align: Align::Left,
            markup: None,
        }
    }

    /// Builder-style colour.
    pub fn with_color(mut self, color: Rgb) -> Self {
        self.color = color;
        self
    }

    /// Builder-style alignment.
    pub fn with_align(mut self, align: Align) -> Self {
        self.align = align;
        self
    }

    /// Builder-style markup.
    pub fn with_markup(mut self, markup: MarkupClass) -> Self {
        self.markup = Some(markup);
        self
    }
}

/// Result of placing a run: the enclosing box and the indices of the words
/// added to the document.
#[derive(Debug, Clone)]
pub struct Placed {
    /// Smallest box enclosing every placed word.
    pub bbox: BBox,
    /// Indices into [`Document::texts`] of the placed words.
    pub word_indices: Vec<usize>,
    /// The placed text, space-joined.
    pub text: String,
}

/// Lays `text` out into `doc` starting at `(x, y)` wrapping at `max_width`.
/// Returns the placed run; an empty `text` places nothing and returns a
/// degenerate bbox at the origin point.
pub fn place_text(
    doc: &mut Document,
    text: &str,
    x: f64,
    y: f64,
    max_width: f64,
    style: &TextStyle,
) -> Placed {
    let words: Vec<&str> = text.split_whitespace().collect();
    let fs = style.font_size;
    let lab: Lab = style.color.to_lab();

    // Break into lines under the metric model.
    let mut lines: Vec<Vec<&str>> = vec![Vec::new()];
    let mut line_w = 0.0;
    for w in &words {
        let ww = word_width(w, fs);
        let extra = if lines.last().unwrap().is_empty() {
            ww
        } else {
            ww + WORD_GAP_EM * fs
        };
        if line_w + extra > max_width && !lines.last().unwrap().is_empty() {
            lines.push(vec![w]);
            line_w = ww;
        } else {
            lines.last_mut().unwrap().push(w);
            line_w += extra;
        }
    }

    let mut word_indices = Vec::with_capacity(words.len());
    let mut enclosing: Option<BBox> = None;
    let mut cur_y = y;
    for line in &lines {
        if line.is_empty() {
            continue;
        }
        let line_width: f64 = line.iter().map(|w| word_width(w, fs)).sum::<f64>()
            + WORD_GAP_EM * fs * (line.len().saturating_sub(1)) as f64;
        let mut cur_x = match style.align {
            Align::Left => x,
            Align::Center => x + (max_width - line_width) / 2.0,
            Align::Right => x + max_width - line_width,
        };
        for w in line {
            let bbox = BBox::new(cur_x, cur_y, word_width(w, fs), fs);
            let mut elem = TextElement::word(*w, bbox)
                .with_color(lab)
                .with_font_size(fs);
            if let Some(m) = style.markup {
                elem = elem.with_markup(m);
            }
            doc.push_text(elem);
            word_indices.push(doc.texts.len() - 1);
            enclosing = Some(match enclosing {
                None => bbox,
                Some(e) => e.union(&bbox),
            });
            cur_x += word_width(w, fs) + WORD_GAP_EM * fs;
        }
        cur_y += LEADING * fs;
    }

    Placed {
        bbox: enclosing.unwrap_or(BBox::new(x, y, 0.0, 0.0)),
        word_indices,
        text: words.join(" "),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_metrics() {
        let mut doc = Document::new("t", 612.0, 792.0);
        let p = place_text(
            &mut doc,
            "hello world",
            10.0,
            20.0,
            600.0,
            &TextStyle::body(10.0),
        );
        assert_eq!(p.word_indices.len(), 2);
        assert_eq!(p.text, "hello world");
        assert_eq!(p.bbox.y, 20.0);
        assert_eq!(p.bbox.h, 10.0);
        // "hello" is 5 chars => 27.5 wide; gap 3; "world" 27.5 → total 58.
        assert!((p.bbox.w - 58.0).abs() < 1e-9, "w = {}", p.bbox.w);
    }

    #[test]
    fn wrapping_advances_lines() {
        let mut doc = Document::new("t", 612.0, 792.0);
        let p = place_text(
            &mut doc,
            "aaaa bbbb cccc",
            0.0,
            0.0,
            50.0,
            &TextStyle::body(10.0),
        );
        // Each word is 22 wide; two fit per 50-wide line (22+3+22=47).
        assert!(p.bbox.h > 10.0, "wrapped run spans multiple lines");
        let ys: Vec<f64> = p
            .word_indices
            .iter()
            .map(|i| doc.texts[*i].bbox.y)
            .collect();
        assert!(ys.iter().any(|y| *y > 0.0));
    }

    #[test]
    fn center_alignment() {
        let mut doc = Document::new("t", 612.0, 792.0);
        let style = TextStyle::body(10.0).with_align(Align::Center);
        let p = place_text(&mut doc, "hi", 0.0, 0.0, 100.0, &style);
        let c = p.bbox.centroid().x;
        assert!((c - 50.0).abs() < 1e-9, "centroid {c}");
    }

    #[test]
    fn right_alignment() {
        let mut doc = Document::new("t", 612.0, 792.0);
        let style = TextStyle::body(10.0).with_align(Align::Right);
        let p = place_text(&mut doc, "hi", 0.0, 0.0, 100.0, &style);
        assert!((p.bbox.right() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn markup_and_color_propagate() {
        let mut doc = Document::new("t", 612.0, 792.0);
        let style = TextStyle::body(12.0)
            .with_color(Rgb::new(200, 30, 30))
            .with_markup(MarkupClass::Heading1);
        let p = place_text(&mut doc, "Grand Gala", 0.0, 0.0, 500.0, &style);
        for i in p.word_indices {
            assert_eq!(doc.texts[i].markup, Some(MarkupClass::Heading1));
            assert!(doc.texts[i].color.l < 60.0);
            assert_eq!(doc.texts[i].font_size, 12.0);
        }
    }

    #[test]
    fn empty_text_places_nothing() {
        let mut doc = Document::new("t", 612.0, 792.0);
        let p = place_text(&mut doc, "   ", 5.0, 6.0, 100.0, &TextStyle::body(10.0));
        assert!(p.word_indices.is_empty());
        assert!(p.bbox.is_empty());
        assert_eq!(doc.len(), 0);
    }

    #[test]
    fn overlong_word_still_places() {
        let mut doc = Document::new("t", 612.0, 792.0);
        let p = place_text(
            &mut doc,
            "supercalifragilistic",
            0.0,
            0.0,
            20.0,
            &TextStyle::body(10.0),
        );
        assert_eq!(p.word_indices.len(), 1);
        assert!(p.bbox.w > 20.0);
    }
}
