//! Random surface-text generation over the shared lexicon.
//!
//! Every name, title, address and description in the synthetic datasets is
//! drawn from `vs2-nlp`'s lexicon pools, so the NLP annotators and the
//! generators agree on vocabulary — the same property the paper gets from
//! using real-world text with broad-coverage tools.

use rand::rngs::StdRng;
use rand::Rng;
use vs2_nlp::lexicon::{self, Topic};

fn cap(word: &str) -> String {
    let mut cs = word.chars();
    match cs.next() {
        Some(f) => f.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

/// Picks a random word of a topic, capitalised.
pub fn pick_cap(rng: &mut StdRng, topic: Topic) -> String {
    cap(pick(rng, topic))
}

/// Picks a random word of a topic.
pub fn pick(rng: &mut StdRng, topic: Topic) -> &'static str {
    let pool = lexicon::words_of(topic);
    pool[rng.gen_range(0..pool.len())]
}

/// A person's full name, e.g. `James Wilson`.
pub fn person_name(rng: &mut StdRng) -> String {
    format!(
        "{} {}",
        pick_cap(rng, Topic::PersonFirst),
        pick_cap(rng, Topic::PersonLast)
    )
}

/// An organisation name, e.g. `Riverside Realty LLC` / `Columbus Jazz Society`.
pub fn org_name(rng: &mut StdRng) -> String {
    match rng.gen_range(0..3) {
        0 => format!(
            "{} {} {}",
            pick_cap(rng, Topic::City),
            cap(pick(rng, Topic::Event)),
            pick_cap(rng, Topic::Organization)
        ),
        1 => format!(
            "{} {}",
            pick_cap(rng, Topic::PersonLast),
            pick_cap(rng, Topic::Organization)
        ),
        _ => format!(
            "{} {} {}",
            pick_cap(rng, Topic::Descriptive),
            pick_cap(rng, Topic::Estate),
            pick_cap(rng, Topic::Organization)
        ),
    }
}

/// A street address, e.g. `1458 Maple Ave Columbus OH 43210`.
pub fn street_address(rng: &mut StdRng) -> String {
    let number = rng.gen_range(10..9999);
    let name = pick_cap(rng, Topic::PersonLast);
    let suffix = cap(pick(rng, Topic::StreetSuffix));
    let city = pick_cap(rng, Topic::City);
    let zip = rng.gen_range(43000..44000);
    format!("{number} {name} {suffix} {city} OH {zip}")
}

/// A venue line, e.g. `Memorial Hall`.
pub fn venue(rng: &mut StdRng) -> String {
    format!(
        "{} {}",
        pick_cap(rng, Topic::PersonLast),
        cap(pick(rng, Topic::Place))
    )
}

/// A phone number in one of the three surface forms the patterns cover.
pub fn phone(rng: &mut StdRng) -> String {
    let area = rng.gen_range(200..990);
    let mid = rng.gen_range(200..999);
    let last = rng.gen_range(0..10000);
    match rng.gen_range(0..3) {
        0 => format!("({area}) {mid}-{last:04}"),
        1 => format!("{area}-{mid}-{last:04}"),
        _ => format!("{area}.{mid}.{last:04}"),
    }
}

/// An e-mail address built from a name.
pub fn email(rng: &mut StdRng) -> String {
    let first = pick(rng, Topic::PersonFirst);
    let last = pick(rng, Topic::PersonLast);
    let domain = match rng.gen_range(0..3) {
        0 => "example.com",
        1 => "mail.example.org",
        _ => "realty.example.net",
    };
    match rng.gen_range(0..3) {
        0 => format!("{first}.{last}@{domain}"),
        1 => format!("{first}{last}@{domain}"),
        _ => format!("{}{last}@{domain}", &first[..1]),
    }
}

/// An event title, e.g. `Grand Jazz Festival` / `Annual Hackathon 2019`.
pub fn event_title(rng: &mut StdRng) -> String {
    match rng.gen_range(0..3) {
        0 => format!(
            "{} {} {}",
            pick_cap(rng, Topic::Descriptive),
            pick_cap(rng, Topic::City),
            cap(pick(rng, Topic::Event))
        ),
        1 => format!(
            "{} {} {}",
            pick_cap(rng, Topic::Descriptive),
            cap(pick(rng, Topic::Event)),
            rng.gen_range(2015..2020)
        ),
        _ => format!(
            "{} {}",
            pick_cap(rng, Topic::Descriptive),
            cap(pick(rng, Topic::Event))
        ),
    }
}

/// An event time line, e.g. `Saturday April 5 7 pm`.
pub fn event_time(rng: &mut StdRng) -> String {
    let day = pick_cap(rng, Topic::Weekday);
    let month = pick_cap(rng, Topic::Month);
    let dom = rng.gen_range(1..29);
    let hour = rng.gen_range(1..12);
    let half = if rng.gen_bool(0.3) { ":30" } else { "" };
    let ampm = if rng.gen_bool(0.7) { "pm" } else { "am" };
    match rng.gen_range(0..3) {
        0 => format!("{day} {month} {dom} {hour}{half} {ampm}"),
        1 => format!("{month} {dom} at {hour}{half} {ampm}"),
        _ => format!("{day} {hour}{half} {ampm}"),
    }
}

/// An organiser line, e.g. `Hosted by James Wilson`.
pub fn organizer_line(rng: &mut StdRng, organizer: &str) -> String {
    let verb = match rng.gen_range(0..4) {
        0 => "Hosted by",
        1 => "Organized by",
        2 => "Presented by",
        _ => "Brought to you by",
    };
    format!("{verb} {organizer}")
}

/// A sentence of descriptive filler built around a noun topic.
pub fn description_sentence(rng: &mut StdRng, topic: Topic) -> String {
    let adj1 = pick(rng, Topic::Descriptive);
    let adj2 = pick(rng, Topic::Descriptive);
    let noun = pick(rng, topic);
    let place = pick(rng, Topic::Place);
    match rng.gen_range(0..4) {
        0 => format!("join us for a {adj1} {noun} with {adj2} music and more"),
        1 => format!("a {adj1} {noun} in the heart of the {place}"),
        2 => format!("this {adj1} and {adj2} {noun} welcomes all"),
        _ => format!("featuring a {adj1} {noun} and {adj2} surprises"),
    }
}

/// A calendar date, e.g. `March 3 2021` (three tokens, no punctuation —
/// the surface form shared by the D4 invoices and their holdout corpus).
pub fn calendar_date(rng: &mut StdRng) -> String {
    format!(
        "{} {} {}",
        pick_cap(rng, Topic::Month),
        rng.gen_range(1..29),
        rng.gen_range(2018..2023)
    )
}

/// A money amount with currency sign, e.g. `$1482.16` (one token).
pub fn money_amount(rng: &mut StdRng) -> String {
    format!("${}.{:02}", rng.gen_range(40..9000), rng.gen_range(0..100))
}

/// An invoice number, e.g. `57213` (one five-digit token).
pub fn invoice_number(rng: &mut StdRng) -> String {
    rng.gen_range(10_000..100_000u32).to_string()
}

/// A property-size line, e.g. `4 beds 2 baths 2,465 sqft`.
pub fn property_size(rng: &mut StdRng) -> String {
    let beds = rng.gen_range(1..8);
    let baths = rng.gen_range(1..5);
    match rng.gen_range(0..3) {
        0 => {
            let sqft = rng.gen_range(8..80) * 100;
            let thousands = sqft / 1000;
            let rest = sqft % 1000;
            format!("{beds} beds {baths} baths {thousands},{rest:03} sqft")
        }
        1 => {
            let acres = rng.gen_range(1..40) as f64 / 4.0;
            format!("{acres:.2} acres zoned commercial")
        }
        _ => {
            let units = rng.gen_range(2..24);
            format!("{units} units with {beds} parking spaces")
        }
    }
}

/// A property-description line.
pub fn property_description(rng: &mut StdRng) -> String {
    let adj = pick(rng, Topic::Descriptive);
    let structure = pick(rng, Topic::Structure);
    match rng.gen_range(0..3) {
        0 => format!("{adj} {structure} with parking and storage"),
        1 => format!("renovated {structure} near grocery and transit"),
        _ => format!("{adj} {structure} available for lease"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = rng();
        let mut b = rng();
        assert_eq!(person_name(&mut a), person_name(&mut b));
        assert_eq!(street_address(&mut a), street_address(&mut b));
    }

    #[test]
    fn person_names_are_recognizable() {
        let mut r = rng();
        for _ in 0..20 {
            let name = person_name(&mut r);
            let ann = vs2_nlp::annotate(&name);
            assert!(
                ann.ner.iter().any(|s| s.tag == vs2_nlp::NerTag::Person),
                "NER misses generated name {name}"
            );
        }
    }

    #[test]
    fn addresses_geocode() {
        let mut r = rng();
        for _ in 0..20 {
            let addr = street_address(&mut r);
            assert!(
                vs2_nlp::geocode::is_valid_geocode(&addr),
                "address fails geocode: {addr}"
            );
        }
    }

    #[test]
    fn times_are_valid_timex() {
        let mut r = rng();
        for _ in 0..20 {
            let t = event_time(&mut r);
            // At minimum the clock portion must normalise.
            let clock: Vec<&str> = t.split_whitespace().rev().take(2).collect();
            let clock = format!("{} {}", clock[1], clock[0]);
            assert!(
                vs2_nlp::timex::is_valid_timex(&clock),
                "time fails TIMEX: {t} (clock {clock})"
            );
        }
    }

    #[test]
    fn phones_and_emails_parse() {
        let mut r = rng();
        for _ in 0..20 {
            let p = phone(&mut r);
            let ann = vs2_nlp::annotate(&format!("call {p}"));
            assert!(
                ann.ner.iter().any(|s| s.tag == vs2_nlp::NerTag::Phone),
                "phone not recognised: {p}"
            );
            let e = email(&mut r);
            assert!(vs2_nlp::ner::is_email(&e), "bad email {e}");
        }
    }

    #[test]
    fn organizer_lines_have_organizer_verbs() {
        let mut r = rng();
        for _ in 0..10 {
            let line = organizer_line(&mut r, "James Wilson");
            let first = line.split_whitespace().next().unwrap();
            assert!(
                vs2_nlp::verbs::is_organizer_sense(first),
                "line {line} lacks organiser sense"
            );
        }
    }

    #[test]
    fn sizes_mention_measures() {
        let mut r = rng();
        for _ in 0..20 {
            let s = property_size(&mut r);
            let has_measure = s
                .split_whitespace()
                .any(|w| vs2_nlp::hypernym::has_sense(w, vs2_nlp::hypernym::Sense::Measure));
            assert!(has_measure, "no measure in {s}");
        }
    }
}
