//! Dataset D2 stand-in: synthetic event posters.
//!
//! The paper's D2 is 2,190 event posters/flyers (1,375 mobile captures,
//! 815 digital PDFs) with five named entities: Event Title, Event Place,
//! Event Time, Event Organizer and Event Description (Table 3). The
//! generator reproduces D2's defining properties: high structural
//! variance across documents, salient visual modifiers (hero titles,
//! colour, font-size spread), and distractor content that makes entity
//! disambiguation non-trivial (sponsor credits, extra names, secondary
//! times).

use crate::render::{place_text, Align, TextStyle};
use crate::textgen;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use vs2_docmodel::{AnnotatedDocument, BBox, Document, EntityAnnotation, ImageElement, Rgb};
use vs2_nlp::lexicon::Topic;

/// Entity keys of dataset D2.
pub mod entities {
    /// Short description of the event.
    pub const EVENT_TITLE: &str = "event_title";
    /// Full address of the event.
    pub const EVENT_PLACE: &str = "event_place";
    /// Time of the event.
    pub const EVENT_TIME: &str = "event_time";
    /// Person/organisation responsible for the event.
    pub const EVENT_ORGANIZER: &str = "event_organizer";
    /// Essential details of the event.
    pub const EVENT_DESCRIPTION: &str = "event_description";

    /// All D2 entity keys, in Table 3 order.
    pub const ALL: [&str; 5] = [
        EVENT_TITLE,
        EVENT_PLACE,
        EVENT_TIME,
        EVENT_ORGANIZER,
        EVENT_DESCRIPTION,
    ];
}

const PAGE_W: f64 = 612.0;
const PAGE_H: f64 = 792.0;
const MARGIN: f64 = 44.0;

fn vivid_color(rng: &mut StdRng) -> Rgb {
    const PALETTE: [Rgb; 6] = [
        Rgb::new(178, 24, 43),
        Rgb::new(33, 102, 172),
        Rgb::new(27, 120, 55),
        Rgb::new(118, 42, 131),
        Rgb::new(191, 91, 23),
        Rgb::new(0, 0, 0),
    ];
    PALETTE[rng.gen_range(0..PALETTE.len())]
}

/// Generates one poster. Layouts vary over three archetypes; block order
/// and typography are randomised per document.
pub fn generate_poster(id: usize, seed: u64) -> AnnotatedDocument {
    let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let mut doc = Document::new(format!("d2-{id:05}"), PAGE_W, PAGE_H);
    let mut annotations = Vec::new();

    let content_w = PAGE_W - 2.0 * MARGIN;
    let mut y = MARGIN + rng.gen_range(0.0..30.0);

    // Optional decorative banner image.
    if rng.gen_bool(0.4) {
        let h = rng.gen_range(40.0..90.0);
        doc.push_image(ImageElement::new(
            rng.gen(),
            BBox::new(MARGIN, y, content_w, h),
            Rgb::new(120, 140, 200).to_lab(),
        ));
        y += h + rng.gen_range(18.0..36.0);
    }

    // ---- Title (hero block, largest font on the page). ----
    let title = textgen::event_title(&mut rng);
    let title_style = TextStyle::body(rng.gen_range(30.0..44.0))
        .with_color(vivid_color(&mut rng))
        .with_align(Align::Center)
        .with_markup(vs2_docmodel::MarkupClass::Heading1);
    let placed = place_text(&mut doc, &title, MARGIN, y, content_w, &title_style);
    annotations.push(EntityAnnotation::new(
        entities::EVENT_TITLE,
        placed.bbox,
        placed.text.clone(),
    ));
    y = placed.bbox.bottom() + rng.gen_range(22.0..44.0);

    // ---- Organizer (adjacent to the title — near the interest point). ----
    let organizer = if rng.gen_bool(0.5) {
        textgen::person_name(&mut rng)
    } else {
        textgen::org_name(&mut rng)
    };
    let line = textgen::organizer_line(&mut rng, &organizer);
    let org_style = TextStyle::body(rng.gen_range(13.0..18.0))
        .with_align(Align::Center)
        .with_markup(vs2_docmodel::MarkupClass::Heading2);
    let placed = place_text(&mut doc, &line, MARGIN, y, content_w, &org_style);
    // Ground-truth *text* is the organiser name itself; the annotated
    // bounding box is the whole organiser line — the visual unit a
    // segmentation proposal can match under the IoU protocol (§6.2).
    annotations.push(EntityAnnotation::new(
        entities::EVENT_ORGANIZER,
        placed.bbox,
        organizer.clone(),
    ));
    y = placed.bbox.bottom() + rng.gen_range(26.0..50.0);

    // ---- Time + place: one combined block or two stacked blocks. ----
    let time_text = textgen::event_time(&mut rng);
    let time_style = TextStyle::body(rng.gen_range(16.0..22.0))
        .with_color(vivid_color(&mut rng))
        .with_align(if rng.gen_bool(0.5) {
            Align::Center
        } else {
            Align::Left
        })
        .with_markup(vs2_docmodel::MarkupClass::Heading2);
    let placed = place_text(&mut doc, &time_text, MARGIN, y, content_w, &time_style);
    annotations.push(EntityAnnotation::new(
        entities::EVENT_TIME,
        placed.bbox,
        placed.text.clone(),
    ));
    y = placed.bbox.bottom() + rng.gen_range(20.0..36.0);

    let venue = textgen::venue(&mut rng);
    let address = textgen::street_address(&mut rng);
    let place_style = TextStyle::body(rng.gen_range(11.0..14.0))
        .with_align(time_style.align)
        .with_markup(vs2_docmodel::MarkupClass::Paragraph);
    // Venue and address form one tight two-line block (paragraph
    // leading); the annotated box covers the block, the ground-truth text
    // is the address.
    let venue_placed = place_text(&mut doc, &venue, MARGIN, y, content_w, &place_style);
    y += place_style.font_size * crate::render::LEADING;
    let placed = place_text(&mut doc, &address, MARGIN, y, content_w, &place_style);
    annotations.push(EntityAnnotation::new(
        entities::EVENT_PLACE,
        venue_placed.bbox.union(&placed.bbox),
        placed.text.clone(),
    ));
    y = placed.bbox.bottom() + rng.gen_range(28.0..52.0);

    // ---- Description paragraph (possibly two columns). ----
    let mut sentences = Vec::new();
    for _ in 0..rng.gen_range(2..5) {
        sentences.push(textgen::description_sentence(&mut rng, Topic::Event));
    }
    let desc = sentences.join(" . ");
    let desc_style = TextStyle::body(rng.gen_range(10.0..12.5))
        .with_markup(vs2_docmodel::MarkupClass::Paragraph);
    let two_col = rng.gen_bool(0.3);
    let col_w = if two_col {
        content_w / 2.0 - 12.0
    } else {
        content_w
    };
    let placed = place_text(&mut doc, &desc, MARGIN, y, col_w, &desc_style);
    annotations.push(EntityAnnotation::new(
        entities::EVENT_DESCRIPTION,
        placed.bbox,
        placed.text.clone(),
    ));
    let desc_bottom = placed.bbox.bottom();

    // Second column: ticket/price info (distractor numerals).
    if two_col {
        let price = match rng.gen_range(0..3) {
            0 => format!("${} admission", rng.gen_range(5..60)),
            1 => "Free admission".to_string(),
            _ => format!("Tickets ${} at the door", rng.gen_range(5..40)),
        };
        let _ = place_text(
            &mut doc,
            &price,
            MARGIN + content_w / 2.0 + 12.0,
            y,
            col_w,
            &TextStyle::body(12.0),
        );
    }
    y = desc_bottom + rng.gen_range(30.0..60.0);

    // ---- Footer distractors: sponsor credit (an organiser-pattern false
    // candidate, far from any interest point) and an RSVP contact. ----
    if rng.gen_bool(0.6) {
        let sponsor = textgen::org_name(&mut rng);
        let credit = format!("Sponsored by {sponsor}");
        let footer_style = TextStyle::body(8.5)
            .with_align(Align::Center)
            .with_markup(vs2_docmodel::MarkupClass::Footer);
        let placed = place_text(
            &mut doc,
            &credit,
            MARGIN,
            (PAGE_H - MARGIN - 30.0).max(y),
            content_w,
            &footer_style,
        );
        y = y.max(placed.bbox.bottom());
    }
    if rng.gen_bool(0.5) {
        let rsvp = format!("RSVP {}", textgen::email(&mut rng));
        let footer_style = TextStyle::body(8.5)
            .with_align(Align::Center)
            .with_markup(vs2_docmodel::MarkupClass::Footer);
        let _ = place_text(
            &mut doc,
            &rsvp,
            MARGIN,
            (PAGE_H - MARGIN - 14.0).max(y + 4.0),
            content_w,
            &footer_style,
        );
    }

    AnnotatedDocument { doc, annotations }
}

/// Generates `n` posters with deterministic per-document seeds.
pub fn generate(n: usize, seed: u64) -> Vec<AnnotatedDocument> {
    (0..n).map(|i| generate_poster(i, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poster_has_all_five_entities() {
        let p = generate_poster(0, 42);
        for e in entities::ALL {
            assert_eq!(p.annotations_for(e).len(), 1, "missing {e}");
        }
    }

    #[test]
    fn annotations_cover_actual_words() {
        let p = generate_poster(1, 42);
        for a in &p.annotations {
            let covered = p.doc.elements_intersecting(&a.bbox);
            assert!(!covered.is_empty(), "annotation {a:?} covers no words");
        }
    }

    #[test]
    fn title_is_visually_dominant() {
        let p = generate_poster(2, 42);
        let title = &p.annotations_for(entities::EVENT_TITLE)[0].bbox;
        let max_other_h = p
            .annotations
            .iter()
            .filter(|a| a.entity != entities::EVENT_TITLE)
            .map(|a| a.bbox.h)
            .fold(0.0, f64::max);
        // The title run's font exceeds every other single-line entity font;
        // wrapped entities can be taller overall, so compare per-word.
        let title_font = p
            .doc
            .elements_in(title)
            .iter()
            .filter_map(|r| match r {
                vs2_docmodel::ElementRef::Text(i) => Some(p.doc.texts[*i].font_size),
                _ => None,
            })
            .fold(0.0, f64::max);
        assert!(title_font >= 30.0, "title font {title_font}");
        assert!(title.h > 0.0 && max_other_h > 0.0);
    }

    #[test]
    fn organizer_annotation_is_just_the_name() {
        let p = generate_poster(3, 42);
        let a = &p.annotations_for(entities::EVENT_ORGANIZER)[0];
        assert!(!a.text.to_lowercase().contains("hosted"));
        assert!(!a.text.to_lowercase().contains("by"));
        assert!(a.text.split_whitespace().count() >= 2);
    }

    #[test]
    fn documents_vary_across_ids() {
        let a = generate_poster(10, 42);
        let b = generate_poster(11, 42);
        assert_ne!(a.doc.transcribe_all(), b.doc.transcribe_all());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_poster(5, 42);
        let b = generate_poster(5, 42);
        assert_eq!(a.doc, b.doc);
        assert_eq!(a.annotations, b.annotations);
    }

    #[test]
    fn place_annotation_geocodes() {
        for i in 0..10 {
            let p = generate_poster(i, 7);
            let a = &p.annotations_for(entities::EVENT_PLACE)[0];
            assert!(
                vs2_nlp::geocode::is_valid_geocode(&a.text),
                "place not geocodable: {}",
                a.text
            );
        }
    }

    #[test]
    fn batch_generation() {
        let docs = generate(8, 3);
        assert_eq!(docs.len(), 8);
        let ids: Vec<&str> = docs.iter().map(|d| d.doc.id.as_str()).collect();
        let mut uniq = ids.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), ids.len());
    }

    #[test]
    fn words_stay_within_page() {
        for i in 0..5 {
            let p = generate_poster(i, 99);
            for t in &p.doc.texts {
                assert!(t.bbox.x >= 0.0 && t.bbox.y >= 0.0, "{:?}", t.bbox);
                assert!(t.bbox.bottom() <= PAGE_H + 30.0, "{:?}", t.bbox);
            }
        }
    }
}
