//! Dataset D3 stand-in: synthetic commercial real-estate flyers.
//!
//! The paper's D3 is 1,200 HTML flyers from 20 broker websites with six
//! named entities (Table 4): Broker Name, Broker Phone, Broker Email,
//! Property Address, Property Size, Property Description. D3's defining
//! properties — per-broker template reuse and available markup — are
//! reproduced with 20 template *families*: documents of one family share
//! a layout skeleton (that is what ReportMiner-style rule masks and the
//! trained baselines exploit) while content varies per document.

use crate::render::{place_text, Align, TextStyle};
use crate::textgen;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use vs2_docmodel::{
    AnnotatedDocument, BBox, Document, EntityAnnotation, ImageElement, MarkupClass, Rgb,
};

/// Entity keys of dataset D3.
pub mod entities {
    /// Full name of the listing broker.
    pub const BROKER_NAME: &str = "broker_name";
    /// Contact number of the listing broker.
    pub const BROKER_PHONE: &str = "broker_phone";
    /// E-mail address of the listing broker.
    pub const BROKER_EMAIL: &str = "broker_email";
    /// Full address information of the listing.
    pub const PROPERTY_ADDRESS: &str = "property_address";
    /// Size attributes of the listing.
    pub const PROPERTY_SIZE: &str = "property_size";
    /// Property type and essential details.
    pub const PROPERTY_DESCRIPTION: &str = "property_description";

    /// All D3 entity keys, in Table 4 order.
    pub const ALL: [&str; 6] = [
        BROKER_NAME,
        BROKER_PHONE,
        BROKER_EMAIL,
        PROPERTY_ADDRESS,
        PROPERTY_SIZE,
        PROPERTY_DESCRIPTION,
    ];
}

const PAGE_W: f64 = 612.0;
const PAGE_H: f64 = 792.0;
const MARGIN: f64 = 40.0;

/// Number of broker template families ("broker websites").
pub const FAMILIES: usize = 20;

/// Layout skeleton shared by every flyer of a family.
#[derive(Debug, Clone, Copy)]
struct Family {
    /// Broker block position: top banner (false) or right sidebar (true).
    sidebar: bool,
    /// Headline font size.
    headline_fs: f64,
    /// Body font size.
    body_fs: f64,
    /// Accent colour.
    accent: Rgb,
    /// Photo block present.
    photo: bool,
}

fn family(fam: usize) -> Family {
    let mut rng = StdRng::seed_from_u64(0xFA0_0000 + fam as u64);
    Family {
        sidebar: rng.gen_bool(0.35),
        headline_fs: rng.gen_range(19.0..28.0),
        body_fs: rng.gen_range(9.5..12.0),
        accent: Rgb::new(
            rng.gen_range(0..140),
            rng.gen_range(0..140),
            rng.gen_range(60..200),
        ),
        photo: rng.gen_bool(0.7),
    }
}

/// Generates one flyer of a given family.
pub fn generate_flyer(id: usize, seed: u64) -> AnnotatedDocument {
    let fam_idx = id % FAMILIES;
    let fam = family(fam_idx);
    let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0xD1B54A32D192ED03));
    let mut doc = Document::new(format!("d3-{id:05}"), PAGE_W, PAGE_H);
    let mut annotations = Vec::new();

    let content_w = PAGE_W - 2.0 * MARGIN;
    let (main_x, main_w, broker_x, broker_w) = if fam.sidebar {
        (
            MARGIN,
            content_w * 0.62,
            MARGIN + content_w * 0.68,
            content_w * 0.32,
        )
    } else {
        (MARGIN, content_w, MARGIN, content_w)
    };

    // ---- Broker block (banner or sidebar). ----
    let broker = textgen::person_name(&mut rng);
    let phone = textgen::phone(&mut rng);
    let email = textgen::email(&mut rng);
    let brokerage = textgen::org_name(&mut rng);

    let mut by = MARGIN;
    let broker_style = TextStyle::body(fam.body_fs + 2.0)
        .with_color(fam.accent)
        .with_markup(MarkupClass::Heading2);
    let placed = place_text(&mut doc, &broker, broker_x, by, broker_w, &broker_style);
    annotations.push(EntityAnnotation::new(
        entities::BROKER_NAME,
        placed.bbox,
        placed.text.clone(),
    ));
    by = placed.bbox.bottom() + 10.0;
    let small = TextStyle::body(fam.body_fs).with_markup(MarkupClass::Paragraph);
    let placed = place_text(&mut doc, &brokerage, broker_x, by, broker_w, &small);
    by = placed.bbox.bottom() + 10.0;
    let placed = place_text(
        &mut doc,
        &format!("Phone {phone}"),
        broker_x,
        by,
        broker_w,
        &small,
    );
    // Ground-truth text is the number; the annotated box is the whole
    // contact line (the visual unit the IoU protocol compares, §6.2).
    annotations.push(EntityAnnotation::new(
        entities::BROKER_PHONE,
        placed.bbox,
        phone.clone(),
    ));
    by = placed.bbox.bottom() + 10.0;
    let placed = place_text(
        &mut doc,
        &format!("Email {email}"),
        broker_x,
        by,
        broker_w,
        &small,
    );
    annotations.push(EntityAnnotation::new(
        entities::BROKER_EMAIL,
        placed.bbox,
        email.clone(),
    ));
    by = placed.bbox.bottom() + 18.0;

    // ---- Main column. ----
    let mut y = if fam.sidebar { MARGIN } else { by + 10.0 };

    // Photo block.
    if fam.photo {
        let h = rng.gen_range(120.0..200.0);
        doc.push_image(ImageElement::new(
            rng.gen(),
            BBox::new(main_x, y, main_w, h),
            Rgb::new(150, 150, 150).to_lab(),
        ));
        y += h + 24.0;
    }

    // Address headline.
    let address = textgen::street_address(&mut rng);
    let headline = TextStyle::body(fam.headline_fs)
        .with_color(fam.accent)
        .with_markup(MarkupClass::Heading1);
    let placed = place_text(&mut doc, &address, main_x, y, main_w, &headline);
    annotations.push(EntityAnnotation::new(
        entities::PROPERTY_ADDRESS,
        placed.bbox,
        placed.text.clone(),
    ));
    y = placed.bbox.bottom() + 20.0;

    // Listing status line (distractor numerals: price).
    let price_line = match rng.gen_range(0..3) {
        0 => format!("For Lease ${}/month", rng.gen_range(800..9000)),
        1 => format!("For Sale ${}", rng.gen_range(100..900) * 1000),
        _ => "Price negotiable contact broker".to_string(),
    };
    let placed = place_text(
        &mut doc,
        &price_line,
        main_x,
        y,
        main_w,
        &TextStyle::body(fam.body_fs + 1.0).with_markup(MarkupClass::Emphasis),
    );
    y = placed.bbox.bottom() + 18.0;

    // Size bullets.
    let size = textgen::property_size(&mut rng);
    let placed = place_text(
        &mut doc,
        &size,
        main_x,
        y,
        main_w,
        &TextStyle::body(fam.body_fs + 1.0).with_markup(MarkupClass::TableCell),
    );
    annotations.push(EntityAnnotation::new(
        entities::PROPERTY_SIZE,
        placed.bbox,
        placed.text.clone(),
    ));
    y = placed.bbox.bottom() + 20.0;

    // Description paragraph.
    let mut desc = textgen::property_description(&mut rng);
    for _ in 0..rng.gen_range(1..3) {
        desc.push_str(" . ");
        desc.push_str(&textgen::description_sentence(
            &mut rng,
            vs2_nlp::lexicon::Topic::Structure,
        ));
    }
    let placed = place_text(
        &mut doc,
        &desc,
        main_x,
        y,
        main_w,
        &TextStyle::body(fam.body_fs).with_markup(MarkupClass::Paragraph),
    );
    annotations.push(EntityAnnotation::new(
        entities::PROPERTY_DESCRIPTION,
        placed.bbox,
        placed.text.clone(),
    ));
    y = placed.bbox.bottom() + 24.0;

    // ---- Footer distractors: fax number (phone-pattern false candidate)
    // and office e-mail, plus an office-manager name. ----
    let footer_y = (PAGE_H - MARGIN - 26.0).max(y);
    let footer = TextStyle::body(8.0)
        .with_align(Align::Left)
        .with_markup(MarkupClass::Footer);
    if rng.gen_bool(0.7) {
        let fax = textgen::phone(&mut rng);
        let _ = place_text(
            &mut doc,
            &format!("Fax {fax} office info@realty.example.net"),
            MARGIN,
            footer_y,
            content_w,
            &footer,
        );
    }
    if rng.gen_bool(0.4) {
        let manager = textgen::person_name(&mut rng);
        let _ = place_text(
            &mut doc,
            &format!("All listings verified by {manager}"),
            MARGIN,
            footer_y + 11.0,
            content_w,
            &footer,
        );
    }

    AnnotatedDocument { doc, annotations }
}

/// Generates `n` flyers across the 20 template families.
pub fn generate(n: usize, seed: u64) -> Vec<AnnotatedDocument> {
    (0..n).map(|i| generate_flyer(i, seed)).collect()
}

/// Template family index of a generated flyer id.
pub fn family_of(id: usize) -> usize {
    id % FAMILIES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flyer_has_all_six_entities() {
        let f = generate_flyer(0, 42);
        for e in entities::ALL {
            assert_eq!(f.annotations_for(e).len(), 1, "missing {e}");
        }
    }

    #[test]
    fn family_layouts_are_stable() {
        // Two flyers of the same family share the sidebar/banner decision;
        // compare broker-name x positions.
        let a = generate_flyer(3, 1);
        let b = generate_flyer(3 + FAMILIES, 1);
        let ax = a.annotations_for(entities::BROKER_NAME)[0].bbox.x;
        let bx = b.annotations_for(entities::BROKER_NAME)[0].bbox.x;
        assert!((ax - bx).abs() < 1.0, "family layout drifted: {ax} vs {bx}");
    }

    #[test]
    fn different_families_differ() {
        let xs: Vec<f64> = (0..FAMILIES)
            .map(|i| {
                generate_flyer(i, 1).annotations_for(entities::PROPERTY_ADDRESS)[0]
                    .bbox
                    .h
            })
            .collect();
        let mut uniq = xs.clone();
        uniq.sort_by(|a, b| a.partial_cmp(b).unwrap());
        uniq.dedup();
        assert!(uniq.len() > 3, "headline sizes should vary across families");
    }

    #[test]
    fn markup_hints_present() {
        let f = generate_flyer(1, 42);
        assert!(f
            .doc
            .texts
            .iter()
            .any(|t| t.markup == Some(MarkupClass::Heading1)));
        assert!(f
            .doc
            .texts
            .iter()
            .any(|t| t.markup == Some(MarkupClass::Paragraph)));
    }

    #[test]
    fn entity_texts_parse_with_nlp() {
        for i in 0..6 {
            let f = generate_flyer(i, 9);
            let phone = &f.annotations_for(entities::BROKER_PHONE)[0].text;
            let ann = vs2_nlp::annotate(&format!("call {phone}"));
            assert!(
                ann.ner.iter().any(|s| s.tag == vs2_nlp::NerTag::Phone),
                "phone not recognised: {phone}"
            );
            let email = &f.annotations_for(entities::BROKER_EMAIL)[0].text;
            assert!(vs2_nlp::ner::is_email(email), "bad email {email}");
            let addr = &f.annotations_for(entities::PROPERTY_ADDRESS)[0].text;
            assert!(vs2_nlp::geocode::is_valid_geocode(addr), "bad addr {addr}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_flyer(7, 5).doc, generate_flyer(7, 5).doc);
    }

    #[test]
    fn batch_covers_families() {
        let docs = generate(40, 2);
        assert_eq!(docs.len(), 40);
        assert_eq!(family_of(0), family_of(FAMILIES));
    }

    #[test]
    fn annotations_cover_words() {
        let f = generate_flyer(2, 11);
        for a in &f.annotations {
            assert!(
                !f.doc.elements_intersecting(&a.bbox).is_empty(),
                "annotation {} covers nothing",
                a.entity
            );
        }
    }
}
