//! Templated-traffic corpus: per-template document families plus
//! adversarial near-miss templates, built for the plan-cache subsystem
//! (`vs2_core::plan`).
//!
//! D3 already models per-broker template reuse, but its renderer sizes
//! word boxes by their text, so two flyers of one family differ
//! geometrically. This corpus models the other extreme — form-like
//! rendering where token boxes are *template-fixed* and only glyph
//! content varies (the ReportMiner premise): every document of a family
//! has bit-identical clean geometry, hence an identical layout
//! fingerprint, and differs only in token text plus OCR noise.
//!
//! ## Geometry contract
//!
//! Word centroids are grid-locked to the default fingerprint lattice
//! (16×16 cells on a 612×792 page): every centroid keeps at least
//! [`CENTROID_MARGIN`] document units from every cell boundary, which
//! is comfortably above `vs2_core::plan`'s `CENTROID_MARGIN` contract,
//! so bbox jitter up to [`template_ocr`]'s bound can never move a
//! centroid across a cell. The conformance suite asserts both the
//! margin property and fingerprint stability under the full noise
//! channel.
//!
//! ## Near-miss templates
//!
//! Each family has [`NEAR_MISS_KINDS`] adversarial variants *designed to
//! collide* with the family fingerprint while requiring a different
//! segmentation judgement:
//!
//! * kind 0 — **font swap**: identical centroids, glyph boxes 6 units
//!   taller. Same occupancy histogram, but the per-leaf mean-height
//!   check must reject the family's plan.
//! * kind 1 — **within-cell shift**: every word moved by (+5, +6)
//!   units, small enough to stay inside its fingerprint cell, large
//!   enough that leaf regions drift beyond the plan validator's cover
//!   tolerance even under worst-case jitter.
//!
//! Entity keys are D3's six (Table 4), so D3 models serve this corpus.

use crate::ocr::{self, OcrConfig};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use vs2_docmodel::{AnnotatedDocument, BBox, Document, EntityAnnotation, TextElement};

use crate::flyers::entities;

const PAGE_W: f64 = 612.0;
const PAGE_H: f64 = 792.0;
/// Fingerprint-lattice geometry the templates are locked to: the
/// default `FingerprintConfig` (16×16 grid) on this page size.
const FP_GRID: f64 = 16.0;
const COL_STEP: f64 = PAGE_W / FP_GRID; // 38.25
const ROW_STEP: f64 = PAGE_H / FP_GRID; // 49.5
/// Horizontal pitch between word centroids: two words per lattice cell.
const WORD_PITCH: f64 = COL_STEP / 2.0;

/// Number of template families.
pub const FAMILIES: usize = 8;
/// Adversarial near-miss variants per family.
pub const NEAR_MISS_KINDS: usize = 2;
/// Minimum distance every clean word centroid keeps from all
/// fingerprint-cell boundaries. Must stay ≥ `vs2_core::plan`'s
/// `CENTROID_MARGIN` (verified by the conformance suite).
pub const CENTROID_MARGIN: f64 = 4.0;

/// The corpus noise channel: bbox jitter and character substitutions
/// only. Drops, merges, splits and rotation all change the element
/// count or displace centroids unboundedly, which this corpus models as
/// out of scope for the fingerprint robustness contract (such documents
/// simply miss or bypass the plan cache).
///
/// The jitter bound is well below the fingerprint contract's
/// `STABLE_JITTER` (1.0): digitally rendered forms carry only light OCR
/// box noise, and — more binding — the segmenter's skew estimator fits
/// slopes through word lines as short as three tokens, where jitter
/// near 1.0 routinely pushes the estimate past `SKEW_EPSILON` and
/// (correctly, but wastefully) diverts the document around the plan
/// cache. At 0.25 the bypass rate on templated traffic stays marginal.
pub fn template_ocr() -> OcrConfig {
    OcrConfig {
        char_sub_rate: 0.02,
        word_drop_rate: 0.0,
        word_merge_rate: 0.0,
        word_split_rate: 0.0,
        bbox_jitter: 0.25,
        rotation_deg: 0.0,
    }
}

/// Per-block token counts, in layout order: broker name, phone line,
/// email line, address, size, description.
const BLOCK_WIDTHS: [usize; 6] = [2, 2, 2, 4, 3, 6];

/// Layout skeleton shared by every document of one family.
#[derive(Debug, Clone, Copy)]
struct FamilySpec {
    /// Centroid x-offset within a lattice cell.
    x_off: f64,
    /// Centroid y-offset within a lattice row.
    y_off: f64,
    /// Fixed token box width (independent of glyph content).
    word_w: f64,
    /// Fixed token box height (the family's font size).
    word_h: f64,
    /// Per-block (lattice row, lattice start column).
    blocks: [(usize, usize); 6],
}

fn family_spec(fam: usize) -> FamilySpec {
    let mut rng = StdRng::seed_from_u64(0x7E3A_0000 + fam as u64);
    let x_off = [6.0, 8.0, 10.0][rng.gen_range(0..3usize)];
    let y_off = [10.0, 14.0, 18.0][rng.gen_range(0..3usize)];
    let word_w = [15.0, 16.0, 17.0][rng.gen_range(0..3usize)];
    let word_h = [11.0, 12.0, 13.0][rng.gen_range(0..3usize)];
    // Six distinct lattice rows (pitch 49.5 ≫ word height: every block
    // is whitespace-separated from its neighbours by delimiter-strength
    // gaps, so segmentation decisions are content-independent).
    let mut rows: Vec<usize> = (1..=14).collect();
    for i in (1..rows.len()).rev() {
        let j = rng.gen_range(0..=i);
        rows.swap(i, j);
    }
    let mut blocks = [(0usize, 0usize); 6];
    for (i, width) in BLOCK_WIDTHS.iter().enumerate() {
        let span = (*width as f64 - 1.0) * WORD_PITCH;
        let max_col = ((PAGE_W - 16.0 - span) / COL_STEP) as usize;
        blocks[i] = (rows[i], rng.gen_range(0..=max_col.min(13)));
    }
    FamilySpec {
        x_off,
        y_off,
        word_w,
        word_h,
        blocks,
    }
}

const FIRST: [&str; 8] = [
    "Alice", "Brian", "Carla", "Derek", "Elena", "Frank", "Grace", "Henry",
];
const LAST: [&str; 8] = [
    "Alvarez", "Burton", "Chen", "Dawson", "Ellis", "Foster", "Griffin", "Hayes",
];
const STREET: [&str; 6] = ["Maple", "Oak", "Cedar", "Pine", "Walnut", "Birch"];
const SUFFIX: [&str; 4] = ["Street", "Avenue", "Road", "Drive"];
const CITY: [&str; 4] = ["Columbus", "Dayton", "Akron", "Toledo"];
const DESC: [&str; 12] = [
    "spacious",
    "modern",
    "office",
    "suite",
    "retail",
    "parking",
    "downtown",
    "corner",
    "renovated",
    "bright",
    "open",
    "floor",
];

/// Per-document token content for the six blocks, with fixed token
/// counts so geometry never depends on the draw.
fn content(rng: &mut StdRng) -> ([Vec<String>; 6], [String; 6]) {
    let first = FIRST[rng.gen_range(0..FIRST.len())];
    let last = LAST[rng.gen_range(0..LAST.len())];
    let phone = format!(
        "614-555-{:02}{:02}",
        rng.gen_range(10..100),
        rng.gen_range(10..100)
    );
    let email = format!(
        "{}.{}@realty.example.net",
        first.to_lowercase(),
        last.to_lowercase()
    );
    let number = (rng.gen_range(1..90u32) * 100 + rng.gen_range(1..100u32)).to_string();
    let street = STREET[rng.gen_range(0..STREET.len())];
    let suffix = SUFFIX[rng.gen_range(0..SUFFIX.len())];
    let city = CITY[rng.gen_range(0..CITY.len())];
    let size = (rng.gen_range(8..90u32) * 100).to_string();
    let mut desc = Vec::with_capacity(6);
    for _ in 0..6 {
        desc.push(DESC[rng.gen_range(0..DESC.len())].to_string());
    }
    let tokens = [
        vec![first.to_string(), last.to_string()],
        vec!["Phone".to_string(), phone.clone()],
        vec!["Email".to_string(), email.clone()],
        vec![
            number.clone(),
            street.to_string(),
            suffix.to_string(),
            city.to_string(),
        ],
        vec![size.clone(), "sq".to_string(), "ft".to_string()],
        desc.clone(),
    ];
    let texts = [
        format!("{first} {last}"),
        phone,
        email,
        format!("{number} {street} {suffix} {city}"),
        format!("{size} sq ft"),
        desc.join(" "),
    ];
    (tokens, texts)
}

/// Builds one clean document. `variant` 0 is the family base; 1 and 2
/// are the near-miss kinds (see module docs).
fn build(fam: usize, variant: usize, content_index: usize, seed: u64) -> AnnotatedDocument {
    let spec = family_spec(fam % FAMILIES);
    let (dx, dy, word_h) = match variant {
        0 => (0.0, 0.0, spec.word_h),
        1 => (0.0, 0.0, spec.word_h + 6.0),
        _ => (5.0, 6.0, spec.word_h),
    };
    let mut rng = StdRng::seed_from_u64(
        (seed ^ 0x7E3A_C0DE)
            .wrapping_add((content_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((variant as u64) << 56),
    );
    let (tokens, texts) = content(&mut rng);
    let mut doc = Document::new(
        format!("tpl-{}-{variant}-{content_index:04}", fam % FAMILIES),
        PAGE_W,
        PAGE_H,
    );
    let mut annotations = Vec::new();
    for (b, words) in tokens.iter().enumerate() {
        let (row, col) = spec.blocks[b];
        let cy = row as f64 * ROW_STEP + spec.y_off + dy;
        let mut boxes = Vec::with_capacity(words.len());
        for (i, w) in words.iter().enumerate() {
            let cx = col as f64 * COL_STEP + spec.x_off + i as f64 * WORD_PITCH + dx;
            let bbox = BBox::new(
                cx - spec.word_w / 2.0,
                cy - word_h / 2.0,
                spec.word_w,
                word_h,
            );
            doc.push_text(TextElement::word(w.clone(), bbox));
            boxes.push(bbox);
        }
        let span = BBox::enclosing(boxes.iter()).expect("block has words");
        annotations.push(EntityAnnotation::new(
            entities::ALL[b],
            span,
            texts[b].clone(),
        ));
    }
    AnnotatedDocument { doc, annotations }
}

/// One clean (noise-free) family document; family = `doc_index % FAMILIES`.
pub fn generate_clean(doc_index: usize, seed: u64) -> AnnotatedDocument {
    build(doc_index % FAMILIES, 0, doc_index, seed)
}

/// One clean adversarial near-miss of `family` (`kind < NEAR_MISS_KINDS`).
pub fn generate_near_miss_clean(
    family: usize,
    kind: usize,
    content_index: usize,
    seed: u64,
) -> AnnotatedDocument {
    build(
        family,
        1 + kind.min(NEAR_MISS_KINDS - 1),
        content_index,
        seed,
    )
}

fn noised(clean: &AnnotatedDocument, stream: u64, seed: u64) -> AnnotatedDocument {
    let mut rng = StdRng::seed_from_u64(
        (seed ^ 0x7E0C).wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    ocr::apply(clean, &template_ocr(), &mut rng)
}

/// Document `doc_index` of the noised templated stream — the
/// doc-id-addressable entry point, mirroring `dataset::generate_one`.
pub fn generate_one(doc_index: usize, seed: u64) -> AnnotatedDocument {
    noised(&generate_clean(doc_index, seed), doc_index as u64, seed)
}

/// `n` noised family documents, round-robin over the families.
pub fn corpus(n: usize, seed: u64) -> Vec<AnnotatedDocument> {
    (0..n).map(|i| generate_one(i, seed)).collect()
}

/// One noised near-miss per (family, kind) pair: the adversarial
/// companion corpus for plan-cache differential testing.
pub fn adversarial_corpus(seed: u64) -> Vec<AnnotatedDocument> {
    let mut out = Vec::with_capacity(FAMILIES * NEAR_MISS_KINDS);
    for fam in 0..FAMILIES {
        for kind in 0..NEAR_MISS_KINDS {
            let clean = generate_near_miss_clean(fam, kind, fam, seed);
            out.push(noised(
                &clean,
                0x4000 + (fam * NEAR_MISS_KINDS + kind) as u64,
                seed,
            ));
        }
    }
    out
}

/// Template family of a corpus document index.
pub fn family_of(doc_index: usize) -> usize {
    doc_index % FAMILIES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_members_share_clean_geometry() {
        for fam in 0..FAMILIES {
            let a = generate_clean(fam, 7);
            let b = generate_clean(fam + FAMILIES, 7);
            assert_eq!(a.doc.texts.len(), b.doc.texts.len());
            for (x, y) in a.doc.texts.iter().zip(&b.doc.texts) {
                assert_eq!(x.bbox, y.bbox, "family {fam} geometry drifted");
            }
            // Content still varies somewhere across the family.
            let texts_differ = a
                .doc
                .texts
                .iter()
                .zip(&b.doc.texts)
                .any(|(x, y)| x.text != y.text);
            assert!(texts_differ, "family {fam} content is frozen");
        }
    }

    #[test]
    fn centroids_respect_the_lattice_margin() {
        for fam in 0..FAMILIES {
            for variant in 0..=NEAR_MISS_KINDS {
                let d = build(fam, variant, 3, 7);
                for t in &d.doc.texts {
                    let c = t.bbox.centroid();
                    for (v, step) in [(c.x, COL_STEP), (c.y, ROW_STEP)] {
                        let r = v.rem_euclid(step);
                        let margin = r.min(step - r);
                        assert!(
                            margin >= CENTROID_MARGIN,
                            "family {fam} variant {variant}: centroid {v} margin {margin}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn near_misses_keep_cell_occupancy() {
        // Same lattice cell per word across base and both near-miss
        // kinds — the designed fingerprint collision.
        let base = generate_clean(2, 7);
        for kind in 0..NEAR_MISS_KINDS {
            let nm = generate_near_miss_clean(2, kind, 2, 7);
            assert_eq!(base.doc.texts.len(), nm.doc.texts.len());
            for (a, b) in base.doc.texts.iter().zip(&nm.doc.texts) {
                let (ca, cb) = (a.bbox.centroid(), b.bbox.centroid());
                assert_eq!(
                    (ca.x / COL_STEP) as usize,
                    (cb.x / COL_STEP) as usize,
                    "kind {kind} crossed a column"
                );
                assert_eq!(
                    (ca.y / ROW_STEP) as usize,
                    (cb.y / ROW_STEP) as usize,
                    "kind {kind} crossed a row"
                );
            }
        }
    }

    #[test]
    fn near_miss_shift_exceeds_cover_tolerance() {
        let base = generate_clean(0, 7);
        let nm = generate_near_miss_clean(0, 1, 0, 7);
        let d = (nm.doc.texts[0].bbox.x - base.doc.texts[0].bbox.x)
            .hypot(nm.doc.texts[0].bbox.y - base.doc.texts[0].bbox.y);
        // (+5, +6): even with ±1.5 worst-case jitter on both documents
        // the per-axis drift stays above the validator's 3.0 tolerance.
        assert!(d > 7.0, "shift too small: {d}");
    }

    #[test]
    fn all_six_entities_annotated() {
        let d = generate_one(5, 11);
        for e in entities::ALL {
            assert_eq!(d.annotations_for(e).len(), 1, "missing {e}");
        }
    }

    #[test]
    fn corpus_is_deterministic_and_noised() {
        let a = corpus(6, 3);
        let b = corpus(6, 3);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.doc, y.doc);
        }
        // Jitter moved at least one box relative to the clean geometry.
        let clean = generate_clean(0, 3);
        assert!(a[0]
            .doc
            .texts
            .iter()
            .zip(&clean.doc.texts)
            .any(|(n, c)| n.bbox != c.bbox));
    }

    #[test]
    fn adversarial_corpus_covers_every_family_and_kind() {
        let docs = adversarial_corpus(3);
        assert_eq!(docs.len(), FAMILIES * NEAR_MISS_KINDS);
        for d in &docs {
            assert!(!d.doc.texts.is_empty());
        }
    }
}
