//! Statistical tests used in the paper's evaluation.
//!
//! * Pearson correlation — Algorithm 1's diagnostic (also re-exported
//!   from `vs2-core`, implemented here independently for the harness);
//! * Welch's t-test — "the average improvement in performance using VS2
//!   was statistically significant (t-test reveals p < 0.05)" (§6.4);
//! * Shapiro–Wilk normality test (reference [40]) — the holdout corpus
//!   grows "until the distribution of distinct syntactic patterns … was
//!   approximately normal" (§5.2.1).

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Pearson correlation coefficient; 0 when undefined.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let mx = mean(&xs[..n]);
    let my = mean(&ys[..n]);
    let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
    for i in 0..n {
        cov += (xs[i] - mx) * (ys[i] - my);
        vx += (xs[i] - mx).powi(2);
        vy += (ys[i] - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Nearest-rank percentile of a sample: the smallest element whose rank
/// is at least `ceil(p/100 · n)`. `p` is clamped to `(0, 100]`; an empty
/// sample yields 0. Never interpolates, so the result is always an
/// observed value — the convention shared by the serving layer's
/// latency summaries and the stage-breakdown benchmark.
pub fn percentile_nearest_rank(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let rank = ((p.clamp(f64::MIN_POSITIVE, 100.0) / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Result of a two-sample test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic.
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Welch's unequal-variance t-test (two-sided).
pub fn welch_t_test(a: &[f64], b: &[f64]) -> TestResult {
    if a.len() < 2 || b.len() < 2 {
        return TestResult {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return TestResult {
            statistic: if ma == mb { 0.0 } else { f64::INFINITY },
            p_value: if ma == mb { 1.0 } else { 0.0 },
        };
    }
    let t = (ma - mb) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df =
        se2.powi(2) / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0)).max(1e-300);
    TestResult {
        statistic: t,
        p_value: 2.0 * (1.0 - student_t_cdf(t.abs(), df)),
    }
}

/// Student-t CDF via the regularised incomplete beta function.
fn student_t_cdf(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 1.0;
    }
    let x = df / (df + t * t);
    1.0 - 0.5 * incomplete_beta(df / 2.0, 0.5, x)
}

/// Regularised incomplete beta `I_x(a, b)` by continued fraction
/// (Numerical-Recipes-style `betacf`).
fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 1e-12;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < 1e-300 {
        d = 1e-300;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = 1.0 + aa / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = 1.0 + aa / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos log-gamma.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = G[0];
    for (i, g) in G.iter().enumerate().skip(1) {
        acc += g / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Shapiro–Wilk-style normality check. Computes the W statistic using the
/// Royston approximation of the order-statistic weights and reports an
/// approximate p-value; adequate for the corpus-construction stopping
/// rule of §5.2.1.
pub fn shapiro_wilk(xs: &[f64]) -> TestResult {
    let n = xs.len();
    if n < 3 {
        return TestResult {
            statistic: 1.0,
            p_value: 1.0,
        };
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    // Blom scores → normalised weights (Royston's approximation).
    let m: Vec<f64> = (1..=n)
        .map(|i| normal_quantile((i as f64 - 0.375) / (n as f64 + 0.25)))
        .collect();
    let m_norm: f64 = m.iter().map(|x| x * x).sum::<f64>().sqrt();
    let a: Vec<f64> = m.iter().map(|x| x / m_norm).collect();

    let mu = mean(&sorted);
    let ss: f64 = sorted.iter().map(|x| (x - mu).powi(2)).sum();
    if ss <= 0.0 {
        return TestResult {
            statistic: 1.0,
            p_value: 1.0,
        };
    }
    let b: f64 = a.iter().zip(&sorted).map(|(ai, xi)| ai * xi).sum();
    let w = (b * b / ss).clamp(0.0, 1.0);

    // Royston's normalising transform for p-value (n in 12..=2000-ish;
    // for smaller n the constants still give a usable approximation).
    let nf = n as f64;
    let ln_n = nf.ln();
    let (mu_w, sigma_w) = (
        0.0038915 * ln_n.powi(3) - 0.083751 * ln_n.powi(2) - 0.31082 * ln_n - 1.5861,
        (0.0030302 * ln_n.powi(2) - 0.082676 * ln_n - 0.4803).exp(),
    );
    let z = ((1.0 - w).ln() - mu_w) / sigma_w;
    TestResult {
        statistic: w,
        p_value: 1.0 - standard_normal_cdf(z),
    }
}

/// Standard normal CDF.
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function (Abramowitz–Stegun 7.1.26, |err| ≤ 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Inverse standard-normal CDF (Acklam's rational approximation).
pub fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p in (0,1)");
    const A: [f64; 6] = [
        -39.696_830_286_653_76,
        220.946_098_424_520_8,
        -275.928_510_446_969_,
        138.357_751_867_269,
        -30.664_798_066_147_16,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -54.476_098_798_224_06,
        161.585_836_858_040_9,
        -155.698_979_859_886_6,
        66.801_311_887_719_72,
        -13.280_681_552_885_72,
    ];
    const C: [f64; 6] = [
        -0.007_784_894_002_430_293,
        -0.322_396_458_041_136_4,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        0.007_784_695_709_041_462,
        0.322_467_129_070_039_8,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(variance(&[1.0, 2.0, 3.0]), 1.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn nearest_rank_percentiles() {
        assert_eq!(percentile_nearest_rank(&[], 50.0), 0);
        assert_eq!(percentile_nearest_rank(&[7], 50.0), 7);
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_nearest_rank(&sample, 50.0), 50);
        assert_eq!(percentile_nearest_rank(&sample, 95.0), 95);
        assert_eq!(percentile_nearest_rank(&sample, 99.0), 99);
        assert_eq!(percentile_nearest_rank(&sample, 100.0), 100);
        // Odd / even small n: ceil(0.5·3)=2, ceil(0.5·4)=2.
        assert_eq!(percentile_nearest_rank(&[10, 20, 30], 50.0), 20);
        assert_eq!(percentile_nearest_rank(&[10, 20, 30, 40], 50.0), 20);
    }

    #[test]
    fn pearson_extremes() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let inv: Vec<f64> = y.iter().rev().copied().collect();
        assert!((pearson(&x, &inv) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn welch_detects_separated_means() {
        let a: Vec<f64> = (0..30).map(|i| 0.80 + (i % 5) as f64 * 0.01).collect();
        let b: Vec<f64> = (0..30).map(|i| 0.70 + (i % 5) as f64 * 0.01).collect();
        let r = welch_t_test(&a, &b);
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
        assert!(r.statistic > 0.0);
    }

    #[test]
    fn welch_accepts_identical_samples() {
        let a: Vec<f64> = (0..30).map(|i| 0.8 + (i % 7) as f64 * 0.01).collect();
        let r = welch_t_test(&a, &a);
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
    }

    #[test]
    fn normal_quantile_symmetry() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
    }

    #[test]
    fn normal_cdf_endpoints() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!(standard_normal_cdf(5.0) > 0.999999);
        assert!(standard_normal_cdf(-5.0) < 1e-6);
    }

    #[test]
    fn t_cdf_is_monotone() {
        assert!(student_t_cdf(0.0, 10.0) - 0.5 < 1e-9);
        assert!(student_t_cdf(2.0, 10.0) > student_t_cdf(1.0, 10.0));
        // Large df approaches the normal.
        let t = student_t_cdf(1.96, 10_000.0);
        assert!((t - 0.975).abs() < 0.002, "{t}");
    }

    #[test]
    fn shapiro_wilk_accepts_normalish_data() {
        // Deterministic normal-ish sample via the quantile function.
        let xs: Vec<f64> = (1..=50).map(|i| normal_quantile(i as f64 / 51.0)).collect();
        let r = shapiro_wilk(&xs);
        assert!(r.statistic > 0.97, "W = {}", r.statistic);
        assert!(r.p_value > 0.05, "p = {}", r.p_value);
    }

    #[test]
    fn shapiro_wilk_rejects_bimodal_data() {
        let mut xs = vec![0.0; 25];
        xs.extend(vec![10.0; 25]);
        let r = shapiro_wilk(&xs);
        assert!(r.statistic < 0.85, "W = {}", r.statistic);
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(welch_t_test(&[1.0], &[2.0]).p_value, 1.0);
        assert_eq!(shapiro_wilk(&[1.0, 2.0]).p_value, 1.0);
        assert_eq!(shapiro_wilk(&[3.0; 10]).statistic, 1.0);
    }
}
