//! Phase-2 (end-to-end) evaluation with text-aware matching.
//!
//! The paper's phase 2 compares "the predicted label for all localized
//! and semantically classified named entities … against their
//! corresponding ground-truth labels" (§6.2). A prediction is correct
//! when its label matches and it localises the same ground-truth item —
//! established here either geometrically (IoU of the matched-token box)
//! or textually (the extracted text equals the annotated text after
//! normalisation), so a correct extraction from a coarser logical block
//! still counts, exactly as a label comparison post-localisation would.

use crate::matching::PrCounts;
use vs2_docmodel::BBox;

/// A prediction or ground-truth item carrying label, box and text.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionItem {
    /// Entity label.
    pub label: String,
    /// Bounding box (matched tokens for predictions; annotation box for
    /// ground truth).
    pub bbox: BBox,
    /// Extracted / annotated text.
    pub text: String,
}

impl ExtractionItem {
    /// Creates an item.
    pub fn new(label: impl Into<String>, bbox: BBox, text: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            bbox,
            text: text.into(),
        }
    }
}

/// Normalises text for comparison: lower-case, alphanumeric runs only.
pub fn normalize_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_was_space = true;
    for c in s.chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
            last_was_space = false;
        } else if !last_was_space {
            out.push(' ');
            last_was_space = true;
        }
    }
    out.trim_end().to_string()
}

/// `true` when a predicted text matches an annotated text: equal after
/// normalisation, or one contains the other with at least half the
/// length (an extraction covering a superset phrase still identifies the
/// entity).
pub fn texts_match(predicted: &str, truth: &str) -> bool {
    let p = normalize_text(predicted);
    let t = normalize_text(truth);
    if p.is_empty() || t.is_empty() {
        return false;
    }
    if p == t {
        return true;
    }
    let contains = |hay: &str, needle: &str| {
        hay.split(' ')
            .collect::<Vec<_>>()
            .windows(needle.split(' ').count())
            .any(|w| w.join(" ") == needle)
    };
    (contains(&p, &t) && t.len() * 2 >= p.len()) || (contains(&t, &p) && p.len() * 2 >= t.len())
}

/// Geometric-or-textual IoU threshold for phase-2 span matching.
pub const SPAN_IOU_THRESHOLD: f64 = 0.5;

fn item_matches(pred: &ExtractionItem, truth: &ExtractionItem) -> bool {
    // Half-unit tolerance on containment: coordinates roundtrip through
    // the OCR channel's geometry and lose exactness.
    pred.label == truth.label
        && (pred.bbox.iou(&truth.bbox) >= SPAN_IOU_THRESHOLD
            || truth.bbox.inflate(0.5).contains_box(&pred.bbox)
            || texts_match(&pred.text, &truth.text))
}

/// Greedy one-to-one phase-2 matching: label equality plus geometric or
/// textual agreement.
pub fn evaluate_end_to_end(predictions: &[ExtractionItem], truth: &[ExtractionItem]) -> PrCounts {
    let mut used_t = vec![false; truth.len()];
    let mut tp = 0usize;
    for p in predictions {
        if let Some(ti) = truth
            .iter()
            .enumerate()
            .position(|(ti, t)| !used_t[ti] && item_matches(p, t))
        {
            used_t[ti] = true;
            tp += 1;
        }
    }
    PrCounts {
        true_positives: tp,
        false_positives: predictions.len() - tp,
        false_negatives: truth.len() - tp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(normalize_text("  (614) 555-0175! "), "614 555 0175");
        assert_eq!(normalize_text("Grand—Gala"), "grand gala");
        assert_eq!(normalize_text(""), "");
    }

    #[test]
    fn text_matching_rules() {
        assert!(texts_match("James Wilson", "james wilson"));
        assert!(texts_match("Hosted by James Wilson", "James Wilson"));
        assert!(!texts_match("James Wilson", "Mary Davis"));
        // Containment with wild length mismatch does not count.
        assert!(!texts_match(
            "a b c d e f g h i j k l m n o p James Wilson",
            "James Wilson"
        ));
        assert!(!texts_match("", "x"));
    }

    #[test]
    fn phone_punctuation_matches() {
        assert!(texts_match("(614) 555-0175", "614-555-0175"));
    }

    #[test]
    fn label_gates_matching() {
        let bbox = BBox::new(0.0, 0.0, 10.0, 10.0);
        let p = vec![ExtractionItem::new("a", bbox, "text")];
        let t = vec![ExtractionItem::new("b", bbox, "text")];
        let c = evaluate_end_to_end(&p, &t);
        assert_eq!(c.true_positives, 0);
    }

    #[test]
    fn geometric_match_without_text() {
        let p = vec![ExtractionItem::new(
            "a",
            BBox::new(0.0, 0.0, 10.0, 10.0),
            "ocr-garbled",
        )];
        let t = vec![ExtractionItem::new(
            "a",
            BBox::new(0.5, 0.0, 10.0, 10.0),
            "clean text",
        )];
        let c = evaluate_end_to_end(&p, &t);
        assert_eq!(c.true_positives, 1);
    }

    #[test]
    fn textual_match_without_geometry() {
        let p = vec![ExtractionItem::new(
            "a",
            BBox::new(500.0, 500.0, 10.0, 10.0),
            "James Wilson",
        )];
        let t = vec![ExtractionItem::new(
            "a",
            BBox::new(0.0, 0.0, 10.0, 10.0),
            "James Wilson",
        )];
        let c = evaluate_end_to_end(&p, &t);
        assert_eq!(c.true_positives, 1);
    }

    #[test]
    fn span_inside_truth_box_matches() {
        let p = vec![ExtractionItem::new(
            "a",
            BBox::new(2.0, 2.0, 3.0, 3.0),
            "partial",
        )];
        let t = vec![ExtractionItem::new(
            "a",
            BBox::new(0.0, 0.0, 10.0, 10.0),
            "whole line text",
        )];
        assert_eq!(evaluate_end_to_end(&p, &t).true_positives, 1);
    }

    #[test]
    fn one_to_one_discipline() {
        let bbox = BBox::new(0.0, 0.0, 10.0, 10.0);
        let p = vec![
            ExtractionItem::new("a", bbox, "x"),
            ExtractionItem::new("a", bbox, "x"),
        ];
        let t = vec![ExtractionItem::new("a", bbox, "x")];
        let c = evaluate_end_to_end(&p, &t);
        assert_eq!(c.true_positives, 1);
        assert_eq!(c.false_positives, 1);
    }
}
