//! IoU-based proposal matching and precision/recall (§6.2 of the paper).
//!
//! Following Everingham et al.'s protocol, a proposal is accurate when
//! its IoU against a ground-truth box is at least 0.65. Matching is
//! greedy one-to-one, best IoU first. Phase 1 (segmentation) ignores
//! labels; phase 2 (end-to-end) additionally requires the predicted
//! entity label to equal the ground truth's.

use vs2_docmodel::BBox;

/// The paper's IoU acceptance threshold.
pub const IOU_THRESHOLD: f64 = 0.65;

/// Precision/recall counts of one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrCounts {
    /// Matched proposals.
    pub true_positives: usize,
    /// Unmatched proposals.
    pub false_positives: usize,
    /// Unmatched ground-truth items.
    pub false_negatives: usize,
}

impl PrCounts {
    /// Precision in `[0, 1]`; 1 when there are no proposals.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall in `[0, 1]`; 1 when there is no ground truth.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accumulates another count.
    pub fn add(&mut self, other: &PrCounts) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
    }
}

/// Greedy one-to-one matching of proposals to ground truth by IoU.
/// Returns `(proposal index, ground-truth index, iou)` triples.
pub fn match_boxes(proposals: &[BBox], truth: &[BBox], threshold: f64) -> Vec<(usize, usize, f64)> {
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for (pi, p) in proposals.iter().enumerate() {
        for (ti, t) in truth.iter().enumerate() {
            let iou = p.iou(t);
            if iou >= threshold {
                pairs.push((pi, ti, iou));
            }
        }
    }
    pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    let mut used_p = vec![false; proposals.len()];
    let mut used_t = vec![false; truth.len()];
    let mut out = Vec::new();
    for (pi, ti, iou) in pairs {
        if used_p[pi] || used_t[ti] {
            continue;
        }
        used_p[pi] = true;
        used_t[ti] = true;
        out.push((pi, ti, iou));
    }
    out
}

/// Phase-1 (segmentation) evaluation: label-free box matching.
pub fn evaluate_segmentation(proposals: &[BBox], truth: &[BBox]) -> PrCounts {
    let matched = match_boxes(proposals, truth, IOU_THRESHOLD);
    PrCounts {
        true_positives: matched.len(),
        false_positives: proposals.len() - matched.len(),
        false_negatives: truth.len() - matched.len(),
    }
}

/// A labelled proposal or ground-truth item for phase-2 evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledBox {
    /// Entity label.
    pub label: String,
    /// Bounding box.
    pub bbox: BBox,
}

impl LabeledBox {
    /// Creates a labelled box.
    pub fn new(label: impl Into<String>, bbox: BBox) -> Self {
        Self {
            label: label.into(),
            bbox,
        }
    }
}

/// Phase-2 (end-to-end) evaluation: a proposal is correct when it matches
/// a ground-truth box by IoU *and* carries the same label.
pub fn evaluate_extraction(proposals: &[LabeledBox], truth: &[LabeledBox]) -> PrCounts {
    // Match within each label group independently (labels partition both
    // sides; cross-label matches can never count).
    let mut labels: Vec<&str> = proposals
        .iter()
        .map(|p| p.label.as_str())
        .chain(truth.iter().map(|t| t.label.as_str()))
        .collect();
    labels.sort_unstable();
    labels.dedup();

    let mut counts = PrCounts::default();
    for label in labels {
        let p: Vec<BBox> = proposals
            .iter()
            .filter(|x| x.label == label)
            .map(|x| x.bbox)
            .collect();
        let t: Vec<BBox> = truth
            .iter()
            .filter(|x| x.label == label)
            .map(|x| x.bbox)
            .collect();
        counts.add(&evaluate_segmentation(&p, &t));
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_segmentation() {
        let boxes = vec![
            BBox::new(0.0, 0.0, 10.0, 10.0),
            BBox::new(20.0, 0.0, 10.0, 10.0),
        ];
        let c = evaluate_segmentation(&boxes, &boxes);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn near_miss_below_threshold_fails() {
        let p = vec![BBox::new(0.0, 0.0, 10.0, 10.0)];
        let t = vec![BBox::new(5.0, 0.0, 10.0, 10.0)]; // IoU = 1/3
        let c = evaluate_segmentation(&p, &t);
        assert_eq!(c.true_positives, 0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
    }

    #[test]
    fn slight_jitter_above_threshold_passes() {
        let p = vec![BBox::new(0.0, 0.0, 100.0, 20.0)];
        let t = vec![BBox::new(2.0, 1.0, 100.0, 20.0)];
        assert!(p[0].iou(&t[0]) > IOU_THRESHOLD);
        let c = evaluate_segmentation(&p, &t);
        assert_eq!(c.true_positives, 1);
    }

    #[test]
    fn greedy_matching_is_one_to_one() {
        // Two proposals over one truth: only one may match.
        let p = vec![
            BBox::new(0.0, 0.0, 10.0, 10.0),
            BBox::new(0.5, 0.0, 10.0, 10.0),
        ];
        let t = vec![BBox::new(0.0, 0.0, 10.0, 10.0)];
        let c = evaluate_segmentation(&p, &t);
        assert_eq!(c.true_positives, 1);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.false_negatives, 0);
    }

    #[test]
    fn best_iou_wins_the_match() {
        let p = vec![
            BBox::new(1.0, 0.0, 10.0, 10.0),
            BBox::new(0.0, 0.0, 10.0, 10.0),
        ];
        let t = vec![BBox::new(0.0, 0.0, 10.0, 10.0)];
        let m = match_boxes(&p, &t, 0.5);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].0, 1, "exact proposal must take the match");
    }

    #[test]
    fn labels_gate_extraction_matches() {
        let bbox = BBox::new(0.0, 0.0, 10.0, 10.0);
        let p = vec![LabeledBox::new("title", bbox)];
        let t = vec![LabeledBox::new("organizer", bbox)];
        let c = evaluate_extraction(&p, &t);
        assert_eq!(c.true_positives, 0);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.false_negatives, 1);

        let t2 = vec![LabeledBox::new("title", bbox)];
        let c2 = evaluate_extraction(&p, &t2);
        assert_eq!(c2.true_positives, 1);
        assert_eq!(c2.f1(), 1.0);
    }

    #[test]
    fn empty_sides() {
        let c = evaluate_segmentation(&[], &[]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        let c = evaluate_segmentation(&[], &[BBox::new(0.0, 0.0, 1.0, 1.0)]);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.precision(), 1.0);
    }

    #[test]
    fn counts_accumulate() {
        let mut a = PrCounts {
            true_positives: 1,
            false_positives: 2,
            false_negatives: 3,
        };
        a.add(&PrCounts {
            true_positives: 4,
            false_positives: 5,
            false_negatives: 6,
        });
        assert_eq!(a.true_positives, 5);
        assert_eq!(a.false_positives, 7);
        assert_eq!(a.false_negatives, 9);
    }
}
