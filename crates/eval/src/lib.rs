//! # vs2-eval
//!
//! The evaluation protocol of the VS2 paper (§6.2) plus the statistical
//! tests its analysis cites:
//!
//! * [`matching`] — IoU ≥ 0.65 greedy one-to-one matching (Everingham
//!   et al.'s protocol), phase-1 (label-free segmentation) and phase-2
//!   (label-gated end-to-end) precision/recall/F1;
//! * [`stats`] — Pearson correlation, Welch's t-test (the §6.4
//!   significance claim) and a Shapiro–Wilk normality check (the §5.2.1
//!   corpus-construction stopping rule).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extraction;
pub mod matching;
pub mod stats;

pub use extraction::{evaluate_end_to_end, normalize_text, texts_match, ExtractionItem};
pub use matching::{
    evaluate_extraction, evaluate_segmentation, match_boxes, LabeledBox, PrCounts, IOU_THRESHOLD,
};
pub use stats::{pearson, shapiro_wilk, welch_t_test, TestResult};

#[cfg(test)]
mod proptests {
    use crate::matching::{evaluate_segmentation, match_boxes};
    use proptest::prelude::*;
    use vs2_docmodel::BBox;

    fn arb_boxes() -> impl Strategy<Value = Vec<BBox>> {
        proptest::collection::vec(
            (0.0..200.0f64, 0.0..200.0f64, 1.0..60.0f64, 1.0..60.0f64)
                .prop_map(|(x, y, w, h)| BBox::new(x, y, w, h)),
            0..12,
        )
    }

    proptest! {
        #[test]
        fn matching_is_one_to_one(p in arb_boxes(), t in arb_boxes()) {
            let m = match_boxes(&p, &t, 0.3);
            let mut ps: Vec<usize> = m.iter().map(|x| x.0).collect();
            let mut ts: Vec<usize> = m.iter().map(|x| x.1).collect();
            let (lp, lt) = (ps.len(), ts.len());
            ps.sort_unstable(); ps.dedup();
            ts.sort_unstable(); ts.dedup();
            prop_assert_eq!(ps.len(), lp);
            prop_assert_eq!(ts.len(), lt);
        }

        #[test]
        fn counts_are_consistent(p in arb_boxes(), t in arb_boxes()) {
            let c = evaluate_segmentation(&p, &t);
            prop_assert_eq!(c.true_positives + c.false_positives, p.len());
            prop_assert_eq!(c.true_positives + c.false_negatives, t.len());
            prop_assert!((0.0..=1.0).contains(&c.precision()));
            prop_assert!((0.0..=1.0).contains(&c.recall()));
            prop_assert!((0.0..=1.0).contains(&c.f1()));
        }

        #[test]
        fn self_evaluation_is_perfect(p in arb_boxes()) {
            let c = evaluate_segmentation(&p, &p);
            prop_assert_eq!(c.false_negatives, 0);
            // Duplicate-free inputs match perfectly; duplicates may
            // compete for the same truth box, so only recall is exact.
            prop_assert_eq!(c.recall(), 1.0);
        }
    }
}
