//! Baseline A5: Tesseract-style hierarchical layout analysis.
//!
//! Mirrors Tesseract's page layout stage at the granularity VS2 consumes:
//! words → text lines (by vertical overlap) → paragraph blocks (lines
//! joined when the leading is ordinary and the indentation compatible).
//! Purely typographic: it has no notion of semantic coherence, so it
//! over-segments visually ornate documents into many small paragraph
//! fragments — the behaviour the paper reports for A5 on D2/D3.

use crate::seg::Segmenter;
use vs2_core::segment::LogicalBlock;
use vs2_docmodel::{BBox, Document, ElementRef};

/// Tesseract-like line/paragraph segmenter.
#[derive(Debug, Clone, Copy)]
pub struct TesseractSegmenter {
    /// Maximum baseline distance for two lines to share a paragraph, as a
    /// multiple of the line height.
    pub max_leading: f64,
    /// Maximum font-size ratio within a paragraph.
    pub max_font_ratio: f64,
    /// Maximum horizontal misalignment of line starts, in multiples of
    /// the line height.
    pub max_indent: f64,
}

impl Default for TesseractSegmenter {
    fn default() -> Self {
        Self {
            max_leading: 1.8,
            max_font_ratio: 1.25,
            max_indent: 2.5,
        }
    }
}

#[derive(Debug, Clone)]
struct Line {
    bbox: BBox,
    elements: Vec<ElementRef>,
}

fn build_lines(doc: &Document) -> Vec<Line> {
    let mut items: Vec<(ElementRef, BBox)> = doc
        .element_refs()
        .into_iter()
        .map(|r| (r, doc.bbox_of(r)))
        .collect();
    items.sort_by(|a, b| {
        a.1.y
            .partial_cmp(&b.1.y)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut rows: Vec<Line> = Vec::new();
    for (r, b) in items {
        let mut placed = false;
        for line in rows.iter_mut() {
            let overlap = (line.bbox.bottom().min(b.bottom()) - line.bbox.y.max(b.y)).max(0.0);
            let min_h = line.bbox.h.min(b.h).max(1e-9);
            if overlap / min_h > 0.5 {
                line.bbox = line.bbox.union(&b);
                line.elements.push(r);
                placed = true;
                break;
            }
        }
        if !placed {
            rows.push(Line {
                bbox: b,
                elements: vec![r],
            });
        }
    }
    // Tesseract detects columns: a physical row splits into separate
    // lines at horizontal gaps larger than ~3x the text height.
    let mut lines: Vec<Line> = Vec::new();
    for row in rows {
        let mut elems: Vec<(ElementRef, BBox)> = row
            .elements
            .into_iter()
            .map(|r| (r, doc.bbox_of(r)))
            .collect();
        elems.sort_by(|a, b| {
            a.1.x
                .partial_cmp(&b.1.x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut current: Vec<(ElementRef, BBox)> = Vec::new();
        for (r, b) in elems {
            let split = current
                .last()
                .is_some_and(|(_, prev)| b.x - prev.right() > 3.0 * prev.h.max(b.h).max(1e-9));
            if split {
                let bbox = current
                    .iter()
                    .map(|(_, b)| *b)
                    .reduce(|a, b| a.union(&b))
                    .unwrap();
                lines.push(Line {
                    bbox,
                    elements: current.drain(..).map(|(r, _)| r).collect(),
                });
            }
            current.push((r, b));
        }
        if !current.is_empty() {
            let bbox = current
                .iter()
                .map(|(_, b)| *b)
                .reduce(|a, b| a.union(&b))
                .unwrap();
            lines.push(Line {
                bbox,
                elements: current.into_iter().map(|(r, _)| r).collect(),
            });
        }
    }
    lines.sort_by(|a, b| {
        a.bbox
            .y
            .partial_cmp(&b.bbox.y)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    lines
}

impl Segmenter for TesseractSegmenter {
    fn name(&self) -> &'static str {
        "Tesseract"
    }

    fn segment(&self, doc: &Document) -> Vec<LogicalBlock> {
        let lines = build_lines(doc);
        let mut paragraphs: Vec<Vec<Line>> = Vec::new();
        for line in lines {
            let joined = paragraphs.last_mut().is_some_and(|para| {
                let prev = para.last().unwrap();
                let leading = line.bbox.y - prev.bbox.y;
                let h = prev.bbox.h.max(1e-9);
                let font_ratio = {
                    let (a, b) = (prev.bbox.h.max(1e-9), line.bbox.h.max(1e-9));
                    (a / b).max(b / a)
                };
                let indent = (line.bbox.x - prev.bbox.x).abs();
                // Horizontally, the lines must overlap at all.
                let x_overlap =
                    line.bbox.right().min(prev.bbox.right()) - line.bbox.x.max(prev.bbox.x);
                leading <= self.max_leading * h
                    && font_ratio <= self.max_font_ratio
                    && indent <= self.max_indent * h
                    && x_overlap > 0.0
            });
            if joined {
                paragraphs.last_mut().unwrap().push(line);
            } else {
                paragraphs.push(vec![line]);
            }
        }
        paragraphs
            .into_iter()
            .map(|para| {
                let bbox = para
                    .iter()
                    .map(|l| l.bbox)
                    .reduce(|a, b| a.union(&b))
                    .unwrap();
                LogicalBlock {
                    bbox,
                    elements: para.into_iter().flat_map(|l| l.elements).collect(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::testdoc::two_paragraphs;
    use vs2_docmodel::TextElement;

    #[test]
    fn paragraphs_form_from_lines() {
        let doc = two_paragraphs();
        let blocks = TesseractSegmenter::default().segment(&doc);
        assert_eq!(blocks.len(), 2, "{blocks:?}");
    }

    #[test]
    fn font_change_breaks_paragraphs() {
        let mut d = Document::new("fonts", 300.0, 100.0);
        d.push_text(TextElement::word(
            "TITLE",
            BBox::new(10.0, 10.0, 120.0, 28.0),
        ));
        d.push_text(TextElement::word("body", BBox::new(10.0, 44.0, 60.0, 9.0)));
        let blocks = TesseractSegmenter::default().segment(&d);
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn column_misalignment_breaks_paragraphs() {
        // Same font, ordinary leading, but the second line starts far to
        // the right (a different column) — split.
        let mut d = Document::new("cols", 400.0, 100.0);
        d.push_text(TextElement::word("left", BBox::new(10.0, 10.0, 60.0, 10.0)));
        d.push_text(TextElement::word(
            "right",
            BBox::new(250.0, 24.0, 60.0, 10.0),
        ));
        let blocks = TesseractSegmenter::default().segment(&d);
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn empty_document() {
        let d = Document::new("e", 10.0, 10.0);
        assert!(TesseractSegmenter::default().segment(&d).is_empty());
    }

    #[test]
    fn elements_preserved() {
        let doc = two_paragraphs();
        let blocks = TesseractSegmenter::default().segment(&doc);
        let total: usize = blocks.iter().map(|b| b.elements.len()).sum();
        assert_eq!(total, doc.len());
    }
}
