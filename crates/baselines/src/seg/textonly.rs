//! Baseline A1: text-only embedding clustering.
//!
//! "A text-based baseline method that groups words with similar
//! word-embeddings into the same clusters" — no visual features at all.
//! The transcription is walked in reading order and a new cluster opens
//! whenever a word's embedding departs from the running cluster centroid
//! (TextTiling-style sequential segmentation). Geometry plays no role,
//! so any layout whose reading order interleaves regions shatters or
//! fuses — the failure the paper's A1 row exhibits on D2/D3, while the
//! strictly row-major D1 forms survive better.

use crate::seg::Segmenter;
use vs2_core::segment::LogicalBlock;
use vs2_docmodel::{BBox, Document, ElementRef};
use vs2_nlp::embedding::{cosine, Embedder, LexiconEmbedding, Vector};

/// Sequential embedding segmentation of the reading-order stream.
#[derive(Debug, Clone, Copy)]
pub struct TextOnlySegmenter {
    /// Cosine similarity below which a new cluster opens.
    pub min_similarity: f64,
}

impl Default for TextOnlySegmenter {
    fn default() -> Self {
        Self {
            min_similarity: 0.30,
        }
    }
}

impl Segmenter for TextOnlySegmenter {
    fn name(&self) -> &'static str {
        "Text-only"
    }

    fn segment(&self, doc: &Document) -> Vec<LogicalBlock> {
        let embedder = LexiconEmbedding;
        let order = doc.reading_order(&doc.element_refs());
        let mut clusters: Vec<(Vector, usize, Vec<ElementRef>)> = Vec::new();
        for r in order {
            let Some(text) = doc.text_of(r) else {
                clusters.push(([0.0; vs2_nlp::DIM], 0, vec![r]));
                continue;
            };
            let v = embedder.embed(text);
            let joined = clusters.last_mut().is_some_and(|(sum, count, _)| {
                if *count == 0 {
                    return false;
                }
                let mut mean = *sum;
                let n = *count as f64;
                for x in mean.iter_mut() {
                    *x /= n;
                }
                cosine(&v, &mean) >= self.min_similarity
            });
            if joined {
                let (sum, count, members) = clusters.last_mut().unwrap();
                for (acc, x) in sum.iter_mut().zip(v.iter()) {
                    *acc += x;
                }
                *count += 1;
                members.push(r);
            } else {
                clusters.push((v, 1, vec![r]));
            }
        }
        clusters
            .into_iter()
            .map(|(_, _, elements)| {
                let boxes: Vec<BBox> = elements.iter().map(|r| doc.bbox_of(*r)).collect();
                LogicalBlock {
                    bbox: BBox::enclosing(boxes.iter()).unwrap_or_default(),
                    elements,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::TextElement;

    #[test]
    fn topic_shift_opens_a_new_block() {
        let mut d = Document::new("t", 600.0, 40.0);
        for (i, w) in ["concert", "festival", "workshop", "acres", "sqft", "beds"]
            .iter()
            .enumerate()
        {
            d.push_text(TextElement::word(
                *w,
                BBox::new(10.0 + 60.0 * i as f64, 10.0, 50.0, 10.0),
            ));
        }
        let blocks = TextOnlySegmenter::default().segment(&d);
        assert_eq!(blocks.len(), 2, "{blocks:?}");
        assert_eq!(blocks[0].elements.len(), 3);
    }

    #[test]
    fn interleaved_reading_order_shatters_blocks() {
        // Two columns; reading order alternates topics — the sequential
        // text-only method opens a block on every word.
        let mut d = Document::new("cols", 400.0, 100.0);
        for i in 0..3 {
            d.push_text(TextElement::word(
                "concert",
                BBox::new(10.0, 10.0 + 14.0 * i as f64, 60.0, 10.0),
            ));
            d.push_text(TextElement::word(
                "acres",
                BBox::new(300.0, 10.0 + 14.0 * i as f64, 60.0, 10.0),
            ));
        }
        let blocks = TextOnlySegmenter::default().segment(&d);
        assert!(blocks.len() >= 4, "{blocks:?}");
    }

    #[test]
    fn empty_document() {
        let d = Document::new("e", 10.0, 10.0);
        assert!(TextOnlySegmenter::default().segment(&d).is_empty());
    }
}
