//! Segmentation baselines of Table 5 (A1–A5).
//!
//! Every baseline implements [`Segmenter`] and can be plugged into the
//! same VS2-Select stage through
//! [`vs2_core::Vs2Pipeline::candidates_on_blocks`], which is how the
//! Table 5 comparison localises named entities per algorithm.

pub mod tesseract;
pub mod textonly;
pub mod vips;
pub mod voronoi;
pub mod xycut;

use vs2_core::segment::{logical_blocks, LogicalBlock, SegmentConfig};
use vs2_docmodel::Document;

/// A page-segmentation algorithm producing logical-block proposals.
pub trait Segmenter {
    /// Display name used in the Table 5 rows.
    fn name(&self) -> &'static str;

    /// Decomposes a document into blocks.
    fn segment(&self, doc: &Document) -> Vec<LogicalBlock>;

    /// `false` when the algorithm cannot run on markup-free documents
    /// (VIPS on dataset D1, per the paper).
    fn requires_markup(&self) -> bool {
        false
    }
}

/// VS2-Segment itself (row A6), wrapped for the common interface.
#[derive(Debug, Clone, Default)]
pub struct Vs2Segmenter {
    /// Segmentation configuration.
    pub config: SegmentConfig,
}

impl Segmenter for Vs2Segmenter {
    fn name(&self) -> &'static str {
        "VS2-Segment"
    }

    fn segment(&self, doc: &Document) -> Vec<LogicalBlock> {
        logical_blocks(doc, &self.config)
    }
}

pub use tesseract::TesseractSegmenter;
pub use textonly::TextOnlySegmenter;
pub use vips::VipsSegmenter;
pub use voronoi::VoronoiSegmenter;
pub use xycut::XyCutSegmenter;

#[cfg(test)]
pub(crate) mod testdoc {
    use vs2_docmodel::{BBox, Document, MarkupClass, TextElement};

    /// A two-paragraph document with markup hints, shared by the
    /// baseline tests.
    pub fn two_paragraphs() -> Document {
        let mut d = Document::new("base", 200.0, 220.0);
        for line in 0..3 {
            for col in 0..4 {
                d.push_text(
                    TextElement::word(
                        "concert",
                        BBox::new(
                            10.0 + col as f64 * 45.0,
                            10.0 + line as f64 * 14.0,
                            40.0,
                            10.0,
                        ),
                    )
                    .with_markup(MarkupClass::Heading2),
                );
            }
        }
        for line in 0..3 {
            for col in 0..4 {
                d.push_text(
                    TextElement::word(
                        "acres",
                        BBox::new(
                            10.0 + col as f64 * 45.0,
                            140.0 + line as f64 * 14.0,
                            40.0,
                            10.0,
                        ),
                    )
                    .with_markup(MarkupClass::Paragraph),
                );
            }
        }
        d
    }
}
