//! Baseline A2: recursive XY-Cut.
//!
//! The classic top-down projection-profile segmenter (Nagy et al.): a
//! region is split at its widest empty valley in the horizontal or
//! vertical projection profile, recursively, until no valley exceeds a
//! fixed absolute threshold. Its fixed threshold — no font-relative
//! normalisation, no semantics — is exactly what VS2's Algorithm 1
//! improves on, and is why XY-Cut degrades on heterogeneous layouts
//! (Table 5: strong on D1's uniform grid, weak on D2/D3).

use crate::seg::Segmenter;
use vs2_core::segment::LogicalBlock;
use vs2_docmodel::{BBox, Document, ElementRef};

/// Recursive XY-Cut with a fixed valley threshold.
#[derive(Debug, Clone, Copy)]
pub struct XyCutSegmenter {
    /// Minimum empty-valley extent (document units) to cut at.
    pub min_gap: f64,
    /// Maximum recursion depth.
    pub max_depth: usize,
}

impl Default for XyCutSegmenter {
    fn default() -> Self {
        Self {
            min_gap: 10.0,
            max_depth: 8,
        }
    }
}

/// Largest empty valley of a set of 1-D intervals; returns the valley
/// centre and extent.
fn largest_valley(mut intervals: Vec<(f64, f64)>) -> Option<(f64, f64)> {
    if intervals.len() < 2 {
        return None;
    }
    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut best: Option<(f64, f64)> = None;
    let mut cover_end = intervals[0].1;
    for w in intervals.windows(2) {
        cover_end = cover_end.max(w[0].1);
        let gap = w[1].0 - cover_end;
        if gap > 0.0 && best.is_none_or(|(_, g)| gap > g) {
            best = Some((cover_end + gap / 2.0, gap));
        }
    }
    best
}

fn cut(
    doc: &Document,
    elements: Vec<ElementRef>,
    depth: usize,
    cfg: &XyCutSegmenter,
    out: &mut Vec<LogicalBlock>,
) {
    let emit = |elements: Vec<ElementRef>, out: &mut Vec<LogicalBlock>| {
        let boxes: Vec<BBox> = elements.iter().map(|r| doc.bbox_of(*r)).collect();
        if let Some(bbox) = BBox::enclosing(boxes.iter()) {
            out.push(LogicalBlock { bbox, elements });
        }
    };
    if depth >= cfg.max_depth || elements.len() < 2 {
        emit(elements, out);
        return;
    }
    let ys: Vec<(f64, f64)> = elements
        .iter()
        .map(|r| {
            let b = doc.bbox_of(*r);
            (b.y, b.bottom())
        })
        .collect();
    let xs: Vec<(f64, f64)> = elements
        .iter()
        .map(|r| {
            let b = doc.bbox_of(*r);
            (b.x, b.right())
        })
        .collect();
    let vy = largest_valley(ys).filter(|(_, g)| *g >= cfg.min_gap);
    let vx = largest_valley(xs).filter(|(_, g)| *g >= cfg.min_gap);

    // Cut along the wider valley.
    let (horizontal, at) = match (vy, vx) {
        (Some((cy, gy)), Some((cx, gx))) => {
            if gy >= gx {
                (true, cy)
            } else {
                (false, cx)
            }
        }
        (Some((cy, _)), None) => (true, cy),
        (None, Some((cx, _))) => (false, cx),
        (None, None) => {
            emit(elements, out);
            return;
        }
    };
    let (a, b): (Vec<ElementRef>, Vec<ElementRef>) = elements.into_iter().partition(|r| {
        let c = doc.bbox_of(*r).centroid();
        if horizontal {
            c.y < at
        } else {
            c.x < at
        }
    });
    if a.is_empty() || b.is_empty() {
        // Degenerate cut — stop here.
        emit(a.into_iter().chain(b).collect(), out);
        return;
    }
    cut(doc, a, depth + 1, cfg, out);
    cut(doc, b, depth + 1, cfg, out);
}

impl Segmenter for XyCutSegmenter {
    fn name(&self) -> &'static str {
        "XY-Cut"
    }

    fn segment(&self, doc: &Document) -> Vec<LogicalBlock> {
        let elements = doc.element_refs();
        if elements.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        cut(doc, elements, 0, self, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::testdoc::two_paragraphs;

    #[test]
    fn splits_clear_paragraph_gap() {
        let doc = two_paragraphs();
        let blocks = XyCutSegmenter::default().segment(&doc);
        assert_eq!(blocks.len(), 2, "{blocks:?}");
    }

    #[test]
    fn fixed_threshold_misses_small_gaps() {
        // Gap of 8 < min_gap 10 — XY-Cut keeps one block where a
        // font-relative method would split 8-unit text.
        let mut d = Document::new("small", 100.0, 100.0);
        for (y, w) in [(10.0, "a"), (26.0, "b")] {
            d.push_text(vs2_docmodel::TextElement::word(
                w,
                BBox::new(10.0, y, 80.0, 8.0),
            ));
        }
        let blocks = XyCutSegmenter::default().segment(&d);
        assert_eq!(blocks.len(), 1);
    }

    #[test]
    fn valley_helper() {
        let v = largest_valley(vec![(0.0, 10.0), (30.0, 40.0), (12.0, 14.0)]);
        let (center, gap) = v.unwrap();
        assert_eq!(gap, 16.0);
        assert_eq!(center, 22.0);
        assert!(largest_valley(vec![(0.0, 10.0)]).is_none());
    }

    #[test]
    fn empty_document() {
        let d = Document::new("e", 10.0, 10.0);
        assert!(XyCutSegmenter::default().segment(&d).is_empty());
    }

    #[test]
    fn all_elements_preserved() {
        let doc = two_paragraphs();
        let blocks = XyCutSegmenter::default().segment(&doc);
        let total: usize = blocks.iter().map(|b| b.elements.len()).sum();
        assert_eq!(total, doc.len());
    }
}
