//! Baseline A4: VIPS-style vision-based page segmentation.
//!
//! Cai et al.'s VIPS exploits HTML-specific features — tag boundaries
//! plus rectangular separators — to partition a rendered page. The
//! reproduction consumes the [`MarkupClass`] hints that HTML-born
//! documents carry: a block boundary opens whenever the markup class
//! changes or a large vertical gap intervenes. Documents without markup
//! (scanned forms, mobile captures) cannot be processed — "Evidently, A4
//! could not be applied on dataset D1" — and the paper's noted weakness,
//! the inability to separate areas not delimited by a rectangular
//! separator or a tag change, carries over.

use crate::seg::Segmenter;
use vs2_core::segment::LogicalBlock;
use vs2_docmodel::{BBox, Document, ElementRef, MarkupClass};

/// VIPS-like markup-driven segmenter.
#[derive(Debug, Clone, Copy)]
pub struct VipsSegmenter {
    /// Vertical gap (multiples of font height) that separates blocks even
    /// within one markup class.
    pub gap_factor: f64,
}

impl Default for VipsSegmenter {
    fn default() -> Self {
        Self { gap_factor: 2.0 }
    }
}

impl Segmenter for VipsSegmenter {
    fn name(&self) -> &'static str {
        "VIPS"
    }

    fn requires_markup(&self) -> bool {
        true
    }

    fn segment(&self, doc: &Document) -> Vec<LogicalBlock> {
        // Reading-order walk; a new block opens on markup-class change or
        // a rectangular (large vertical) separator.
        let order = doc.reading_order(&doc.element_refs());
        let mut blocks: Vec<(Option<MarkupClass>, BBox, Vec<ElementRef>)> = Vec::new();
        for r in order {
            let bbox = doc.bbox_of(r);
            let markup = match r {
                ElementRef::Text(i) => doc.texts[i].markup,
                ElementRef::Image(_) => None,
            };
            let fits = blocks.last().is_some_and(|(m, bb, _)| {
                let gap = (bbox.y - bb.bottom()).max(0.0);
                *m == markup && gap <= self.gap_factor * bbox.h.max(1e-9)
            });
            if fits {
                let (_, bb, elems) = blocks.last_mut().unwrap();
                *bb = bb.union(&bbox);
                elems.push(r);
            } else {
                blocks.push((markup, bbox, vec![r]));
            }
        }
        blocks
            .into_iter()
            .map(|(_, bbox, elements)| LogicalBlock { bbox, elements })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::testdoc::two_paragraphs;
    use vs2_docmodel::TextElement;

    #[test]
    fn markup_change_opens_blocks() {
        let doc = two_paragraphs(); // Heading2 then Paragraph markup
        let blocks = VipsSegmenter::default().segment(&doc);
        assert_eq!(blocks.len(), 2, "{blocks:?}");
    }

    #[test]
    fn same_markup_with_overlapping_content_merges() {
        // Two visually separate columns that share a markup class and
        // interleave in reading order — VIPS cannot separate them (the
        // paper's under-segmentation failure mode).
        let mut d = Document::new("cols", 400.0, 60.0);
        for i in 0..3 {
            d.push_text(
                TextElement::word("left", BBox::new(10.0, 10.0 + i as f64 * 14.0, 60.0, 10.0))
                    .with_markup(MarkupClass::Paragraph),
            );
            d.push_text(
                TextElement::word(
                    "right",
                    BBox::new(300.0, 10.0 + i as f64 * 14.0, 60.0, 10.0),
                )
                .with_markup(MarkupClass::Paragraph),
            );
        }
        let blocks = VipsSegmenter::default().segment(&d);
        assert_eq!(blocks.len(), 1, "{blocks:?}");
    }

    #[test]
    fn requires_markup_flag() {
        assert!(VipsSegmenter::default().requires_markup());
        assert!(!crate::seg::XyCutSegmenter::default().requires_markup());
    }

    #[test]
    fn large_gap_splits_same_markup() {
        let mut d = Document::new("gap", 100.0, 300.0);
        d.push_text(
            TextElement::word("a", BBox::new(10.0, 10.0, 30.0, 10.0))
                .with_markup(MarkupClass::Paragraph),
        );
        d.push_text(
            TextElement::word("b", BBox::new(10.0, 200.0, 30.0, 10.0))
                .with_markup(MarkupClass::Paragraph),
        );
        let blocks = VipsSegmenter::default().segment(&d);
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn empty_document() {
        let d = Document::new("e", 10.0, 10.0);
        assert!(VipsSegmenter::default().segment(&d).is_empty());
    }
}
