//! Baseline A3: Voronoi-style area segmentation.
//!
//! Kise-style point-diagram segmentation approximated over word boxes:
//! neighbouring elements are linked when their gap is small relative to
//! the corpus-level statistics of nearest-neighbour distances and their
//! font sizes agree ("summary statistics such as the distribution of font
//! size, area ratio, angular distance are taken into consideration");
//! connected components of the link graph are the blocks. Bottom-up and
//! adaptive, it is the strongest classical baseline in Table 5.

use crate::seg::Segmenter;
use vs2_core::segment::LogicalBlock;
use vs2_docmodel::{BBox, Document, ElementRef};

/// Voronoi-style connected-component segmenter.
#[derive(Debug, Clone, Copy)]
pub struct VoronoiSegmenter {
    /// Link threshold as a multiple of the median nearest-neighbour gap.
    pub gap_factor: f64,
    /// Maximum allowed font-size ratio between linked elements.
    pub max_font_ratio: f64,
}

impl Default for VoronoiSegmenter {
    fn default() -> Self {
        Self {
            gap_factor: 2.2,
            max_font_ratio: 1.8,
        }
    }
}

impl Segmenter for VoronoiSegmenter {
    fn name(&self) -> &'static str {
        "Voronoi"
    }

    fn segment(&self, doc: &Document) -> Vec<LogicalBlock> {
        let elements = doc.element_refs();
        let n = elements.len();
        if n == 0 {
            return Vec::new();
        }
        let boxes: Vec<BBox> = elements.iter().map(|r| doc.bbox_of(*r)).collect();

        // Median nearest-neighbour gap — the adaptive scale.
        let mut nn_gaps: Vec<f64> = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i)
                    .map(|j| boxes[i].distance(&boxes[j]))
                    .fold(f64::INFINITY, f64::min)
            })
            .filter(|g| g.is_finite())
            .collect();
        nn_gaps.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median_gap = nn_gaps.get(nn_gaps.len() / 2).copied().unwrap_or(0.0);
        let threshold = (median_gap * self.gap_factor).max(1.0);

        // Union-find over qualifying links.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        for i in 0..n {
            for j in i + 1..n {
                let gap = boxes[i].distance(&boxes[j]);
                let (ha, hb) = (boxes[i].h.max(1e-9), boxes[j].h.max(1e-9));
                // Link when the gap is small by the *global* statistic or
                // by the *local* font scale (Kise-style area ratios).
                let local = 1.25 * ha.min(hb);
                if gap > threshold.max(local) {
                    continue;
                }
                let font_ratio = (ha / hb).max(hb / ha);
                if font_ratio > self.max_font_ratio {
                    continue;
                }
                let (ra, rb) = (find(&mut parent, i), find(&mut parent, j));
                if ra != rb {
                    parent[ra] = rb;
                }
            }
        }

        let mut groups: std::collections::BTreeMap<usize, Vec<ElementRef>> =
            std::collections::BTreeMap::new();
        for (i, el) in elements.iter().enumerate() {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(*el);
        }
        groups
            .into_values()
            .map(|elems| {
                let bs: Vec<BBox> = elems.iter().map(|r| doc.bbox_of(*r)).collect();
                LogicalBlock {
                    bbox: BBox::enclosing(bs.iter()).unwrap(),
                    elements: elems,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::testdoc::two_paragraphs;

    #[test]
    fn splits_paragraphs_by_distance() {
        let doc = two_paragraphs();
        let blocks = VoronoiSegmenter::default().segment(&doc);
        assert_eq!(blocks.len(), 2, "{blocks:?}");
    }

    #[test]
    fn font_contrast_breaks_links() {
        // Two adjacent lines with very different fonts stay separate.
        let mut d = Document::new("fonts", 300.0, 100.0);
        d.push_text(vs2_docmodel::TextElement::word(
            "TITLE",
            BBox::new(10.0, 10.0, 120.0, 30.0),
        ));
        d.push_text(vs2_docmodel::TextElement::word(
            "body",
            BBox::new(10.0, 44.0, 40.0, 9.0),
        ));
        d.push_text(vs2_docmodel::TextElement::word(
            "text",
            BBox::new(55.0, 44.0, 40.0, 9.0),
        ));
        let blocks = VoronoiSegmenter::default().segment(&d);
        assert_eq!(blocks.len(), 2, "{blocks:?}");
    }

    #[test]
    fn adapts_to_dense_layouts() {
        // Uniformly dense words: everything is one component regardless of
        // the absolute scale.
        let mut d = Document::new("dense", 100.0, 100.0);
        for row in 0..5 {
            for col in 0..5 {
                d.push_text(vs2_docmodel::TextElement::word(
                    "w",
                    BBox::new(col as f64 * 18.0, row as f64 * 12.0, 14.0, 8.0),
                ));
            }
        }
        let blocks = VoronoiSegmenter::default().segment(&d);
        assert_eq!(blocks.len(), 1);
    }

    #[test]
    fn empty_and_singleton() {
        let d = Document::new("e", 10.0, 10.0);
        assert!(VoronoiSegmenter::default().segment(&d).is_empty());
        let mut d1 = Document::new("one", 10.0, 10.0);
        d1.push_text(vs2_docmodel::TextElement::word(
            "x",
            BBox::new(1.0, 1.0, 3.0, 3.0),
        ));
        assert_eq!(VoronoiSegmenter::default().segment(&d1).len(), 1);
    }
}
