//! Table 7 baseline: Frequent Subtree Mining extraction (FSM).
//!
//! "For every named entity to be extracted, it finds the most frequent
//! subtrees within the dependency trees for entries against that named
//! entity in the holdout corpus. The syntactic patterns defined by these
//! subtrees are then searched within the transcribed text of a test
//! document" — i.e. exactly VS2's learned patterns, but with **no visual
//! segmentation**: the whole transcription is one context, and conflicts
//! resolve by gloss overlap. The gap between FSM and VS2 in Table 7 is
//! therefore precisely the value of the logical blocks.

use crate::ie::{Extractor, Prediction};
use vs2_core::pipeline::{DisambiguationMode, Vs2Pipeline};
use vs2_core::segment::LogicalBlock;
use vs2_docmodel::Document;

/// Learned-pattern search over the unsegmented document.
#[derive(Debug, Clone)]
pub struct FsmExtractor {
    pipeline: Vs2Pipeline,
}

impl FsmExtractor {
    /// Uses the same learned pipeline, with Lesk conflict resolution.
    pub fn new(mut pipeline: Vs2Pipeline) -> Self {
        pipeline.config.disambiguation = DisambiguationMode::Lesk;
        Self { pipeline }
    }
}

impl Extractor for FsmExtractor {
    fn name(&self) -> &'static str {
        "FSM"
    }

    fn extract(&self, doc: &Document) -> Vec<Prediction> {
        let whole = LogicalBlock {
            bbox: doc.page_bbox(),
            elements: doc.element_refs(),
        };
        self.pipeline
            .extract_on_blocks(doc, &[whole])
            .into_iter()
            .map(|e| Prediction {
                entity: e.entity,
                text: e.text,
                bbox: e.span_bbox,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_core::pipeline::Vs2Config;
    use vs2_docmodel::{BBox, TextElement};

    #[test]
    fn whole_document_context_finds_patterns() {
        let entries: Vec<(&str, &str, &str)> = vec![
            ("phone", "(614) 555-0175", "call (614) 555-0175"),
            ("phone", "330-555-8921", "call 330-555-8921"),
            ("phone", "(740) 555-3321", "call (740) 555-3321"),
        ];
        let pipeline = Vs2Pipeline::learn(entries, Vs2Config::default());
        let fsm = FsmExtractor::new(pipeline);
        let mut d = Document::new("f", 400.0, 50.0);
        for (i, w) in ["call", "614-555-0175", "today"].iter().enumerate() {
            d.push_text(TextElement::word(
                *w,
                BBox::new(10.0 + 80.0 * i as f64, 10.0, 70.0, 10.0),
            ));
        }
        let preds = fsm.extract(&d);
        assert_eq!(preds.len(), 1);
        assert!(preds[0].text.contains("614"));
    }

    #[test]
    fn applicable_everywhere() {
        let pipeline = Vs2Pipeline::with_patterns(Default::default(), Vs2Config::default());
        assert!(FsmExtractor::new(pipeline).supports_markup_free());
    }
}
