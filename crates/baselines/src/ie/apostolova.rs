//! Table 7 baseline: Apostolova & Tomuro's visual+textual SVM (EMNLP
//! 2014, "Combining Visual and Textual Features for Information
//! Extraction from Online Flyers").
//!
//! A per-entity linear SVM over candidate lines, with both textual and
//! visual features (font scale, position, colour, width), trained on the
//! 60% split. Stronger than the text-only ML baseline on visually rich
//! data, but — as the paper argues — still short of VS2 because it lacks
//! the context boundaries a prior segmentation provides.

use crate::ie::candidates::{
    line_candidates, line_is_positive, text_features, vectorize, visual_features, DIMS,
};
use crate::ie::{Extractor, Prediction};
use std::collections::BTreeMap;
use vs2_docmodel::{AnnotatedDocument, Document};
use vs2_ml::{train_svm, Example, LinearModel, TrainConfig};

/// Per-entity linear SVM over visual+textual line features.
#[derive(Debug, Clone)]
pub struct ApostolovaExtractor {
    models: BTreeMap<String, LinearModel>,
}

fn combined_features(doc: &Document, line: &vs2_core::segment::LogicalBlock) -> Vec<String> {
    let mut f = text_features(doc, line);
    f.extend(visual_features(doc, line));
    f
}

impl ApostolovaExtractor {
    /// Trains one SVM per entity on labelled documents.
    pub fn train(docs: &[AnnotatedDocument], entities: &[String], seed: u64) -> Self {
        let mut per_entity: BTreeMap<String, Vec<Example>> = BTreeMap::new();
        for ad in docs {
            let lines = line_candidates(&ad.doc);
            for line in &lines {
                let features = vectorize(&combined_features(&ad.doc, line));
                for entity in entities {
                    per_entity.entry(entity.clone()).or_default().push(Example {
                        features: features.clone(),
                        label: line_is_positive(&ad.doc, line, ad, entity),
                    });
                }
            }
        }
        let models = per_entity
            .into_iter()
            .map(|(entity, examples)| {
                let cfg = TrainConfig {
                    dims: DIMS,
                    epochs: 10,
                    rate: 0.3,
                    l2: 1e-4,
                    seed,
                };
                (entity, train_svm(&examples, cfg))
            })
            .collect();
        Self { models }
    }
}

impl Extractor for ApostolovaExtractor {
    fn name(&self) -> &'static str {
        "Apostolova"
    }

    fn extract(&self, doc: &Document) -> Vec<Prediction> {
        let lines = line_candidates(doc);
        let feats: Vec<_> = lines
            .iter()
            .map(|l| vectorize(&combined_features(doc, l)))
            .collect();
        let mut out = Vec::new();
        for (entity, model) in &self.models {
            let best = lines
                .iter()
                .zip(&feats)
                .map(|(l, f)| (model.decision(f), l))
                .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            if let Some((score, line)) = best {
                if score > 0.0 {
                    out.push(Prediction {
                        entity: entity.clone(),
                        text: doc.transcribe(&line.elements),
                        bbox: line.bbox,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::{BBox, EntityAnnotation, TextElement};

    /// Titles are visually distinct (big font, top of page); the entity
    /// is learnable from visual features even when words vary wildly.
    fn labelled_doc(i: usize) -> AnnotatedDocument {
        let mut d = Document::new(format!("a{i}"), 300.0, 200.0);
        let title_word = format!("zz{i}q"); // out-of-lexicon, varies per doc
        d.push_text(
            TextElement::word(&title_word, BBox::new(40.0, 15.0, 180.0, 30.0)).with_font_size(30.0),
        );
        for (k, w) in ["body", "words", "below"].iter().enumerate() {
            d.push_text(TextElement::word(
                *w,
                BBox::new(10.0 + 60.0 * k as f64, 120.0, 50.0, 9.0),
            ));
        }
        AnnotatedDocument {
            doc: d.clone(),
            annotations: vec![EntityAnnotation::new(
                "title",
                BBox::new(40.0, 15.0, 180.0, 30.0),
                title_word,
            )],
        }
    }

    #[test]
    fn visual_features_carry_the_signal() {
        let train: Vec<AnnotatedDocument> = (0..10).map(labelled_doc).collect();
        let model = ApostolovaExtractor::train(&train, &["title".to_string()], 5);
        let test = labelled_doc(99);
        let preds = model.extract(&test.doc);
        assert_eq!(preds.len(), 1, "{preds:?}");
        assert!(preds[0].text.contains("zz99q"));
    }

    #[test]
    fn applicable_everywhere() {
        let model = ApostolovaExtractor::train(&[], &[], 1);
        assert!(model.supports_markup_free());
    }
}
