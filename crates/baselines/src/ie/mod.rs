//! End-to-end information-extraction baselines of Table 7 (and the
//! text-only baseline of Tables 6 and 8).
//!
//! Every baseline implements [`Extractor`]; trained baselines additionally
//! take labelled documents (the paper's 60%/40% split) at construction.

pub mod apostolova;
pub mod candidates;
pub mod clausie;
pub mod fsm;
pub mod mlbased;
pub mod reportminer;
pub mod textonly;

use vs2_docmodel::{BBox, Document};

/// One predicted entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Entity key.
    pub entity: String,
    /// Extracted text.
    pub text: String,
    /// Bounding box of the extraction.
    pub bbox: BBox,
}

/// An end-to-end extractor.
pub trait Extractor {
    /// Display name used in the Table 7 rows.
    fn name(&self) -> &'static str;

    /// Extracts at most one prediction per entity from a document.
    fn extract(&self, doc: &Document) -> Vec<Prediction>;

    /// `false` when the method cannot run on the dataset class (the
    /// paper's "-" rows: ClausIE and the ML-based extractor on D1).
    fn supports_markup_free(&self) -> bool {
        true
    }
}

pub use apostolova::ApostolovaExtractor;
pub use clausie::ClausIeExtractor;
pub use fsm::FsmExtractor;
pub use mlbased::MlBasedExtractor;
pub use reportminer::ReportMinerExtractor;
pub use textonly::TextOnlyExtractor;
