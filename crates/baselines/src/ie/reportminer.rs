//! Table 7 baseline: ReportMiner-style rule masks.
//!
//! ReportMiner is a commercial human-in-the-loop tool: experts draw a
//! custom mask (a region) per named entity for each document layout, and
//! "for each test document, the most appropriate rule is selected
//! manually". The reproduction automates the expert: masks are recorded
//! from the 60% training split (the entity's normalised bounding box per
//! layout), layouts are keyed by a coarse occupancy signature, and at
//! test time the nearest stored layout's masks are applied. Excellent on
//! fixed templates (D1), degraded as layout variability grows (the
//! paper: "performance worsened as the variability in document layouts
//! increased").

use crate::ie::{Extractor, Prediction};
use std::collections::BTreeMap;
use vs2_docmodel::{AnnotatedDocument, BBox, Document};

/// Grid resolution of the layout signature.
const SIG: usize = 8;

/// Occupancy signature: fraction of each cell of an 8×8 page grid
/// covered by text.
fn signature(doc: &Document) -> [f64; SIG * SIG] {
    let mut sig = [0.0; SIG * SIG];
    let (cw, ch) = (doc.width / SIG as f64, doc.height / SIG as f64);
    if cw <= 0.0 || ch <= 0.0 {
        return sig;
    }
    for t in &doc.texts {
        let c = t.bbox.centroid();
        let col = ((c.x / cw) as usize).min(SIG - 1);
        let row = ((c.y / ch) as usize).min(SIG - 1);
        sig[row * SIG + col] += t.bbox.area();
    }
    let total: f64 = sig.iter().sum();
    if total > 0.0 {
        for v in sig.iter_mut() {
            *v /= total;
        }
    }
    sig
}

fn signature_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// One stored layout: its signature plus per-entity masks in normalised
/// page coordinates.
#[derive(Debug, Clone)]
struct LayoutRule {
    signature: [f64; SIG * SIG],
    masks: BTreeMap<String, BBox>,
}

/// Mask-based template extractor.
#[derive(Debug, Clone)]
pub struct ReportMinerExtractor {
    rules: Vec<LayoutRule>,
}

impl ReportMinerExtractor {
    /// Records one rule per training document (the expert's mask set).
    pub fn train(docs: &[AnnotatedDocument]) -> Self {
        let rules = docs
            .iter()
            .map(|ad| {
                let masks = ad
                    .annotations
                    .iter()
                    .map(|a| {
                        let norm = BBox::new(
                            a.bbox.x / ad.doc.width.max(1e-9),
                            a.bbox.y / ad.doc.height.max(1e-9),
                            a.bbox.w / ad.doc.width.max(1e-9),
                            a.bbox.h / ad.doc.height.max(1e-9),
                        );
                        (a.entity.clone(), norm)
                    })
                    .collect();
                LayoutRule {
                    signature: signature(&ad.doc),
                    masks,
                }
            })
            .collect();
        Self { rules }
    }

    /// Number of stored rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}

impl Extractor for ReportMinerExtractor {
    fn name(&self) -> &'static str {
        "ReportMiner"
    }

    fn extract(&self, doc: &Document) -> Vec<Prediction> {
        let sig = signature(doc);
        let Some(rule) = self.rules.iter().min_by(|a, b| {
            signature_distance(&a.signature, &sig)
                .partial_cmp(&signature_distance(&b.signature, &sig))
                .unwrap_or(std::cmp::Ordering::Equal)
        }) else {
            return Vec::new();
        };
        rule.masks
            .iter()
            .filter_map(|(entity, mask)| {
                let region = BBox::new(
                    mask.x * doc.width,
                    mask.y * doc.height,
                    mask.w * doc.width,
                    mask.h * doc.height,
                )
                .inflate(2.0);
                let elems = doc.elements_in(&region);
                let text = doc.transcribe(&elems);
                if text.is_empty() {
                    return None;
                }
                let boxes: Vec<BBox> = elems.iter().map(|r| doc.bbox_of(*r)).collect();
                Some(Prediction {
                    entity: entity.clone(),
                    text,
                    bbox: BBox::enclosing(boxes.iter()).unwrap_or(region),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::{EntityAnnotation, TextElement};

    fn template_doc(value: &str) -> AnnotatedDocument {
        let mut d = Document::new(format!("r-{value}"), 200.0, 200.0);
        d.push_text(TextElement::word(
            "Label",
            BBox::new(10.0, 10.0, 40.0, 10.0),
        ));
        d.push_text(TextElement::word(value, BBox::new(60.0, 10.0, 60.0, 10.0)));
        d.push_text(TextElement::word(
            "footer",
            BBox::new(10.0, 180.0, 40.0, 8.0),
        ));
        AnnotatedDocument {
            doc: d,
            annotations: vec![EntityAnnotation::new(
                "field",
                BBox::new(60.0, 10.0, 60.0, 10.0),
                value,
            )],
        }
    }

    #[test]
    fn masks_extract_from_matching_template() {
        let train = vec![template_doc("aaa"), template_doc("bbb")];
        let rm = ReportMinerExtractor::train(&train);
        assert_eq!(rm.rule_count(), 2);
        let test = template_doc("ccc");
        let preds = rm.extract(&test.doc);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].text, "ccc");
    }

    #[test]
    fn mask_fails_on_shifted_layout() {
        let train = vec![template_doc("aaa")];
        let rm = ReportMinerExtractor::train(&train);
        // A document whose value sits elsewhere entirely.
        let mut d = Document::new("shift", 200.0, 200.0);
        d.push_text(TextElement::word(
            "Label",
            BBox::new(10.0, 150.0, 40.0, 10.0),
        ));
        d.push_text(TextElement::word("xyz", BBox::new(60.0, 150.0, 60.0, 10.0)));
        let preds = rm.extract(&d);
        // The mask region (top of page) holds no text → no/garbled output.
        assert!(preds.is_empty() || preds[0].text != "xyz");
    }

    #[test]
    fn empty_training() {
        let rm = ReportMinerExtractor::train(&[]);
        assert!(rm.extract(&template_doc("x").doc).is_empty());
    }

    #[test]
    fn signature_is_normalised() {
        let d = template_doc("aaa").doc;
        let s = signature(&d);
        let total: f64 = s.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
