//! Table 7 baseline: the supervised ML-based extractor (Zhou & Mashuq).
//!
//! A per-entity logistic-regression classifier over candidate text lines
//! with *textual* features only, trained on the labelled 60% split. The
//! paper notes it requires HTML conversion, so it is not applicable to
//! the scanned D1 forms.

use crate::ie::candidates::{line_candidates, line_is_positive, text_features, vectorize, DIMS};
use crate::ie::{Extractor, Prediction};
use std::collections::BTreeMap;
use vs2_docmodel::{AnnotatedDocument, Document};
use vs2_ml::{train_logistic, Example, LinearModel, TrainConfig};

/// Per-entity logistic-regression line classifier.
#[derive(Debug, Clone)]
pub struct MlBasedExtractor {
    models: BTreeMap<String, LinearModel>,
    /// Minimum probability to emit a prediction.
    pub min_probability: f64,
}

impl MlBasedExtractor {
    /// Trains one classifier per entity on labelled documents.
    pub fn train(docs: &[AnnotatedDocument], entities: &[String], seed: u64) -> Self {
        let mut per_entity: BTreeMap<String, Vec<Example>> = BTreeMap::new();
        for ad in docs {
            let lines = line_candidates(&ad.doc);
            for line in &lines {
                let features = vectorize(&text_features(&ad.doc, line));
                for entity in entities {
                    per_entity.entry(entity.clone()).or_default().push(Example {
                        features: features.clone(),
                        label: line_is_positive(&ad.doc, line, ad, entity),
                    });
                }
            }
        }
        let models = per_entity
            .into_iter()
            .map(|(entity, examples)| {
                let cfg = TrainConfig {
                    dims: DIMS,
                    epochs: 12,
                    rate: 0.3,
                    l2: 1e-5,
                    seed,
                };
                (entity, train_logistic(&examples, cfg))
            })
            .collect();
        Self {
            models,
            min_probability: 0.35,
        }
    }

    /// Entities with a trained model.
    pub fn entities(&self) -> Vec<&str> {
        self.models.keys().map(|s| s.as_str()).collect()
    }
}

impl Extractor for MlBasedExtractor {
    fn name(&self) -> &'static str {
        "ML-based"
    }

    fn supports_markup_free(&self) -> bool {
        // Requires HTML conversion (paper: "-" on D1).
        false
    }

    fn extract(&self, doc: &Document) -> Vec<Prediction> {
        let lines = line_candidates(doc);
        let feats: Vec<_> = lines
            .iter()
            .map(|l| vectorize(&text_features(doc, l)))
            .collect();
        let mut out = Vec::new();
        for (entity, model) in &self.models {
            let best = lines
                .iter()
                .zip(&feats)
                .map(|(l, f)| (model.probability(f), l))
                .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            if let Some((p, line)) = best {
                if p >= self.min_probability {
                    out.push(Prediction {
                        entity: entity.clone(),
                        text: doc.transcribe(&line.elements),
                        bbox: line.bbox,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::{BBox, EntityAnnotation, TextElement};

    fn labelled_doc(phone: &str, seed_y: f64) -> AnnotatedDocument {
        let mut d = Document::new(format!("m{seed_y}"), 300.0, 120.0);
        let mut ann = Vec::new();
        for (i, w) in ["Phone", phone].iter().enumerate() {
            d.push_text(TextElement::word(
                *w,
                BBox::new(10.0 + 80.0 * i as f64, seed_y, 70.0, 10.0),
            ));
        }
        ann.push(EntityAnnotation::new(
            "phone",
            BBox::new(10.0, seed_y, 150.0, 10.0),
            phone.to_string(),
        ));
        for (i, w) in ["spacious", "warehouse", "available"].iter().enumerate() {
            d.push_text(TextElement::word(
                *w,
                BBox::new(10.0 + 80.0 * i as f64, seed_y + 40.0, 70.0, 10.0),
            ));
        }
        AnnotatedDocument {
            doc: d,
            annotations: ann,
        }
    }

    #[test]
    fn learns_to_pick_phone_lines() {
        let train: Vec<AnnotatedDocument> = (0..8)
            .map(|i| labelled_doc(&format!("61{i}-555-017{i}"), 10.0 + i as f64))
            .collect();
        let model = MlBasedExtractor::train(&train, &["phone".to_string()], 3);
        assert_eq!(model.entities(), vec!["phone"]);
        let test = labelled_doc("330-555-9999", 12.0);
        let preds = model.extract(&test.doc);
        assert_eq!(preds.len(), 1, "{preds:?}");
        assert!(preds[0].text.contains("330-555-9999"));
    }

    #[test]
    fn not_applicable_to_markup_free() {
        let model = MlBasedExtractor::train(&[], &[], 1);
        assert!(!model.supports_markup_free());
    }
}
