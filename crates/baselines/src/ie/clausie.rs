//! Table 7 baseline: ClausIE-style clause-based open information
//! extraction (Del Corro & Gemulla, WWW 2013).
//!
//! ClausIE derives clauses (subject–verb–object structures) from raw
//! text and applies clause-level rules per entity. Over visually rich
//! documents the raw transcription rarely forms grammatical clauses, so
//! recall collapses — the paper's weakest baseline on D2/D3, and not
//! applicable to D1's form fields at all.

use crate::ie::{Extractor, Prediction};
use std::collections::BTreeMap;
use vs2_core::pipeline::{DisambiguationMode, Vs2Config, Vs2Pipeline};
use vs2_core::segment::LogicalBlock;
use vs2_core::select::SyntacticPattern;
use vs2_docmodel::Document;
use vs2_nlp::chunk::PhraseKind;

/// Clause-rule extraction over the raw, unsegmented transcription.
#[derive(Debug, Clone)]
pub struct ClausIeExtractor {
    pipeline: Vs2Pipeline,
}

impl ClausIeExtractor {
    /// Restricts a learned pattern inventory to clause-level (VP/SVO)
    /// windows — the clause rules ClausIE would derive.
    pub fn new(source: &Vs2Pipeline) -> Self {
        let clause_patterns: BTreeMap<String, Vec<SyntacticPattern>> = source
            .patterns()
            .iter()
            .map(|(entity, patterns)| {
                let clauses: Vec<SyntacticPattern> = patterns
                    .iter()
                    .filter_map(|p| match p {
                        SyntacticPattern::Window { kind, required } => match kind {
                            Some(PhraseKind::Vp) | Some(PhraseKind::Svo) | None => Some(p.clone()),
                            // Noun-phrase rules become clause-argument
                            // windows (NER spans / whole clause).
                            Some(PhraseKind::Np) => Some(SyntacticPattern::Window {
                                kind: None,
                                required: required.clone(),
                            }),
                        },
                        SyntacticPattern::ExactPhrase(_) => None,
                    })
                    .collect();
                (entity.clone(), clauses)
            })
            .filter(|(_, v)| !v.is_empty())
            .collect();
        let config = Vs2Config {
            disambiguation: DisambiguationMode::FirstMatch,
            ..source.config
        };
        Self {
            pipeline: Vs2Pipeline::with_patterns(clause_patterns, config),
        }
    }
}

impl Extractor for ClausIeExtractor {
    fn name(&self) -> &'static str {
        "ClausIE"
    }

    fn supports_markup_free(&self) -> bool {
        // Form fields carry no clause structure; the paper marks D1 "-".
        false
    }

    fn extract(&self, doc: &Document) -> Vec<Prediction> {
        // No segmentation: one block spanning the whole page.
        let whole = LogicalBlock {
            bbox: doc.page_bbox(),
            elements: doc.element_refs(),
        };
        self.pipeline
            .extract_on_blocks(doc, &[whole])
            .into_iter()
            .map(|e| Prediction {
                entity: e.entity,
                text: e.text,
                bbox: e.span_bbox,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::{BBox, TextElement};

    fn learned() -> Vs2Pipeline {
        let entries: Vec<(&str, &str, &str)> = vec![
            ("who", "James Wilson", "x"),
            ("who", "Robert Brown", "x"),
            ("who", "Linda Garcia", "x"),
        ];
        Vs2Pipeline::learn(entries, Vs2Config::default())
    }

    #[test]
    fn keeps_only_clause_patterns() {
        let clausie = ClausIeExtractor::new(&learned());
        for patterns in clausie.pipeline.patterns().values() {
            for p in patterns {
                match p {
                    SyntacticPattern::Window { kind, .. } => {
                        assert!(!matches!(kind, Some(PhraseKind::Np)));
                    }
                    SyntacticPattern::ExactPhrase(_) => panic!("exact pattern kept"),
                }
            }
        }
    }

    #[test]
    fn extracts_from_clause_text() {
        // A grammatical clause — ClausIE's home turf.
        let entries: Vec<(&str, &str, &str)> = vec![
            ("who", "hosted by James Wilson", "x"),
            ("who", "hosted by Robert Brown", "x"),
            ("who", "hosted by Linda Garcia", "x"),
        ];
        let pipeline = Vs2Pipeline::learn(entries, Vs2Config::default());
        let clausie = ClausIeExtractor::new(&pipeline);
        let mut d = Document::new("c", 400.0, 50.0);
        for (i, w) in ["the", "gala", "is", "hosted", "by", "Mary", "Davis"]
            .iter()
            .enumerate()
        {
            d.push_text(TextElement::word(
                *w,
                BBox::new(10.0 + 45.0 * i as f64, 10.0, 40.0, 10.0),
            ));
        }
        let preds = clausie.extract(&d);
        assert!(!preds.is_empty());
    }

    #[test]
    fn not_applicable_to_markup_free() {
        assert!(!ClausIeExtractor::new(&learned()).supports_markup_free());
    }
}
