//! The text-only IE baseline of §6.4 (the ΔF1 reference of Tables 6/8).
//!
//! "Using Tesseract to segment the input document, it searches for
//! syntactic patterns within the text transcribed from each segmented
//! area. Entity disambiguation is performed using Lesk." — i.e. the same
//! learned patterns as VS2, but typographic segmentation instead of
//! VS2-Segment and gloss overlap instead of the multimodal Eq. 2.

use crate::ie::{Extractor, Prediction};
use crate::seg::{Segmenter, TesseractSegmenter};
use vs2_core::pipeline::{DisambiguationMode, Vs2Pipeline};
use vs2_docmodel::Document;

/// Tesseract segmentation + pattern search + Lesk disambiguation.
#[derive(Debug, Clone)]
pub struct TextOnlyExtractor {
    pipeline: Vs2Pipeline,
    segmenter: TesseractSegmenter,
}

impl TextOnlyExtractor {
    /// Wraps a learned pipeline, forcing Lesk disambiguation.
    pub fn new(mut pipeline: Vs2Pipeline) -> Self {
        pipeline.config.disambiguation = DisambiguationMode::Lesk;
        Self {
            pipeline,
            segmenter: TesseractSegmenter::default(),
        }
    }
}

impl Extractor for TextOnlyExtractor {
    fn name(&self) -> &'static str {
        "Text-only"
    }

    fn extract(&self, doc: &Document) -> Vec<Prediction> {
        let blocks = self.segmenter.segment(doc);
        self.pipeline
            .extract_on_blocks(doc, &blocks)
            .into_iter()
            .map(|e| Prediction {
                entity: e.entity,
                text: e.text,
                bbox: e.span_bbox,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_core::pipeline::Vs2Config;

    #[test]
    fn extracts_with_lesk_selection() {
        let entries: Vec<(&str, &str, &str)> = vec![
            ("who", "James Wilson", "hosted by James Wilson"),
            ("who", "Robert Brown", "hosted by Robert Brown"),
            ("who", "Linda Garcia", "hosted by Linda Garcia"),
        ];
        let pipeline = Vs2Pipeline::learn(entries, Vs2Config::default());
        let ex = TextOnlyExtractor::new(pipeline);
        assert_eq!(ex.pipeline.config.disambiguation, DisambiguationMode::Lesk);

        let mut d = Document::new("t", 300.0, 100.0);
        for (i, w) in ["Hosted", "by", "James", "Wilson"].iter().enumerate() {
            d.push_text(vs2_docmodel::TextElement::word(
                *w,
                vs2_docmodel::BBox::new(10.0 + 50.0 * i as f64, 10.0, 45.0, 10.0),
            ));
        }
        let preds = ex.extract(&d);
        assert_eq!(preds.len(), 1);
        assert!(preds[0].text.contains("James"));
    }
}
