//! Shared candidate and feature machinery for the learned baselines
//! (Zhou-style ML extractor, Apostolova-style SVM).
//!
//! Candidates are Tesseract-style text lines; features are hashed bags of
//! textual and (optionally) visual descriptors. Training labels come from
//! the ground-truth annotations of the 60% split.

use crate::seg::{Segmenter, TesseractSegmenter};
use vs2_core::segment::LogicalBlock;
use vs2_core::select::BlockText;
use vs2_docmodel::{AnnotatedDocument, Document};
use vs2_eval::texts_match;
use vs2_ml::{FeatureHasher, SparseVec};
use vs2_nlp::stem::stem;
use vs2_nlp::stopwords::is_stopword;

/// Hash-space dimensionality shared by the learned baselines.
pub const DIMS: u32 = 1 << 13;

/// Candidate spans: the Tesseract-style lines of a document.
pub fn line_candidates(doc: &Document) -> Vec<LogicalBlock> {
    // A pure line segmentation: paragraphs disabled by a zero leading cap.
    let seg = TesseractSegmenter {
        max_leading: 0.0,
        ..TesseractSegmenter::default()
    };
    seg.segment(doc)
}

/// Textual feature names of a candidate line.
pub fn text_features(doc: &Document, block: &LogicalBlock) -> Vec<String> {
    let bt = BlockText::build(doc, block);
    let mut out = Vec::new();
    for t in &bt.ann.tokens {
        if !t.norm.is_empty() && !is_stopword(&t.norm) {
            if t.is_numeric() {
                out.push("has_number".to_string());
            } else {
                out.push(format!("stem={}", stem(&t.norm)));
            }
        }
    }
    for span in &bt.ann.ner {
        out.push(format!("ner={:?}", span.tag));
    }
    out.push(format!("len_bucket={}", (bt.len() / 4).min(6)));
    for r in &block.elements {
        if let vs2_docmodel::ElementRef::Text(i) = r {
            if let Some(m) = doc.texts[*i].markup {
                out.push(format!("markup={m:?}"));
                break;
            }
        }
    }
    out
}

/// Visual feature names of a candidate line (the Apostolova extension).
pub fn visual_features(doc: &Document, block: &LogicalBlock) -> Vec<String> {
    let b = block.bbox;
    let max_font = doc.texts.iter().map(|t| t.bbox.h).fold(1e-9, f64::max);
    let font = block
        .elements
        .iter()
        .map(|r| doc.bbox_of(*r).h)
        .fold(0.0, f64::max);
    let mut out = vec![
        format!(
            "ypos={}",
            ((b.centroid().y / doc.height.max(1e-9)) * 10.0) as u32
        ),
        format!(
            "xpos={}",
            ((b.centroid().x / doc.width.max(1e-9)) * 4.0) as u32
        ),
        format!("font_rel={}", ((font / max_font) * 5.0) as u32),
        format!("width_rel={}", ((b.w / doc.width.max(1e-9)) * 5.0) as u32),
    ];
    if let Some(vs2_docmodel::ElementRef::Text(i)) = block.elements.first() {
        out.push(format!("light={}", (doc.texts[*i].color.l / 25.0) as u32));
    }
    out
}

/// Hashes a feature-name bag into a sparse vector.
pub fn vectorize(names: &[String]) -> SparseVec {
    let h = FeatureHasher::new(DIMS);
    h.vectorize(names.iter().map(|n| (n.as_str(), 1.0)))
}

/// `true` when a candidate line carries the ground truth of `entity`
/// in `doc` — used to label training candidates.
pub fn line_is_positive(
    doc: &Document,
    block: &LogicalBlock,
    annotated: &AnnotatedDocument,
    entity: &str,
) -> bool {
    annotated.annotations_for(entity).iter().any(|a| {
        block.bbox.iou(&a.bbox) >= 0.5
            || a.bbox.contains_box(&block.bbox)
            || texts_match(&doc.transcribe(&block.elements), &a.text)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::{BBox, EntityAnnotation, TextElement};

    fn doc() -> Document {
        let mut d = Document::new("c", 300.0, 100.0);
        for (i, w) in ["Phone", "614-555-0175"].iter().enumerate() {
            d.push_text(TextElement::word(
                *w,
                BBox::new(10.0 + 80.0 * i as f64, 10.0, 70.0, 10.0),
            ));
        }
        for (i, w) in ["spacious", "warehouse"].iter().enumerate() {
            d.push_text(TextElement::word(
                *w,
                BBox::new(10.0 + 80.0 * i as f64, 50.0, 70.0, 10.0),
            ));
        }
        d
    }

    #[test]
    fn lines_are_candidates() {
        let d = doc();
        let lines = line_candidates(&d);
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn features_are_informative() {
        let d = doc();
        let lines = line_candidates(&d);
        let tf = text_features(&d, &lines[0]);
        assert!(tf.iter().any(|f| f.starts_with("ner=Phone")), "{tf:?}");
        assert!(tf.iter().any(|f| f == "stem=phone"), "{tf:?}");
        let vf = visual_features(&d, &lines[0]);
        assert!(vf.iter().any(|f| f.starts_with("ypos=")));
        let v = vectorize(&tf);
        assert!(v.nnz() > 0);
    }

    #[test]
    fn positive_labeling() {
        let d = doc();
        let lines = line_candidates(&d);
        let annotated = AnnotatedDocument {
            doc: d.clone(),
            annotations: vec![EntityAnnotation::new(
                "phone",
                BBox::new(10.0, 10.0, 150.0, 10.0),
                "614-555-0175",
            )],
        };
        assert!(line_is_positive(&d, &lines[0], &annotated, "phone"));
        assert!(!line_is_positive(&d, &lines[1], &annotated, "phone"));
    }
}
