//! # vs2-baselines
//!
//! Every comparison method of the VS2 paper's evaluation (§6), rebuilt on
//! the shared substrate:
//!
//! * [`seg`] — the Table 5 segmentation baselines: text-only embedding
//!   clustering (A1), recursive XY-Cut (A2), Voronoi-style tessellation
//!   (A3), VIPS-like markup segmentation (A4), Tesseract-like layout
//!   analysis (A5), plus a wrapper for VS2-Segment itself (A6);
//! * [`ie`] — the Table 7 end-to-end baselines: the text-only pipeline
//!   (Tesseract + patterns + Lesk), ClausIE-style clause rules, FSM
//!   (patterns without segmentation), the Zhou-style supervised ML
//!   extractor, the Apostolova-style visual+textual SVM, and
//!   ReportMiner-style template masks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ie;
pub mod seg;

pub use ie::{
    ApostolovaExtractor, ClausIeExtractor, Extractor, FsmExtractor, MlBasedExtractor, Prediction,
    ReportMinerExtractor, TextOnlyExtractor,
};
pub use seg::{
    Segmenter, TesseractSegmenter, TextOnlySegmenter, VipsSegmenter, VoronoiSegmenter,
    Vs2Segmenter, XyCutSegmenter,
};
