//! Per-job document context for the zero-copy pipeline.
//!
//! [`DocContext`] is built exactly once per job from a borrowed
//! [`Document`]. It owns everything that used to be re-derived at every
//! stage boundary:
//!
//! * the [`DocView`] — every text element tokenised once, tokens
//!   interned into one per-document bump region
//!   (`vs2_docmodel::arena`);
//! * a canonical [`Token`] per distinct [`TokenId`] (shared `Arc<str>`
//!   forms: block texts clone tokens by bumping refcounts);
//! * per-distinct-token derived columns — stem, noun hypernym-sense
//!   mask, verb-sense mask — computed once instead of once per token
//!   instance per block;
//! * a memoising [`CtxEmbedder`] so segmentation's semantic merge and
//!   selection's interest points embed each distinct word once per job.
//!
//! Every derived value is a pure function of the token string, so the
//! context path is observationally identical to the owned path that
//! recomputes them per instance — which `tests/arena_equiv.rs` and the
//! interner proptest battery in `vs2-conformance` pin.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use vs2_docmodel::{DocView, Document, TokenId};
use vs2_nlp::embedding::{Embedder, LexiconEmbedding, Vector};
use vs2_nlp::hypernym::{self, Sense};
use vs2_nlp::stem::stem;
use vs2_nlp::stopwords::is_stopword;
use vs2_nlp::token::{tokenize_each, Token};
use vs2_nlp::verbs;

/// The shared empty-string `Arc` used for the "no stem" sentinel, so
/// ineligible tokens never pay an allocation.
pub(crate) fn empty_arc() -> Arc<str> {
    static EMPTY: OnceLock<Arc<str>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from("")).clone()
}

/// Per-thread cache of the derived forms of one distinct token, keyed by
/// its raw text. Templated traffic re-uses a dataset's vocabulary
/// heavily, so after the first few documents a context build for repeat
/// vocabulary is pure `Arc` refcount bumps. Every cached value is a pure
/// function of the raw text (`norm` is the deterministic normalisation
/// the tokeniser produces), so a hit is observationally identical to
/// recomputation. The cap bounds memory on adversarial vocabularies;
/// past it, misses recompute without inserting.
struct CachedForms {
    raw: Arc<str>,
    norm: Arc<str>,
    stem: Arc<str>,
    sense: u16,
    vsense: u8,
}

const FORM_CACHE_CAP: usize = 1 << 16;

thread_local! {
    static FORM_CACHE: RefCell<HashMap<Box<str>, CachedForms>> =
        RefCell::new(HashMap::new());
}

// Per-thread word-embedding memo (same rationale and cap as the form
// cache; `embed` is a pure function of the word, so hits are bit-exact).
thread_local! {
    static EMBED_CACHE: RefCell<HashMap<Box<str>, Vector>> = RefCell::new(HashMap::new());
}

/// Borrowed, fully tokenised view of one document plus every
/// per-distinct-token derivation the pipeline consumes. Built once per
/// job; all stages take `&DocContext`.
pub struct DocContext<'d> {
    /// The interned token view (owns the bump region).
    pub view: DocView<'d>,
    /// Canonical token per [`TokenId`] (index = id).
    tokens: Vec<Token>,
    /// Per-id stem column: the stem when the token is stem-eligible
    /// (non-empty norm, not a stopword, not numeric), else `""`.
    stems: Vec<Arc<str>>,
    /// Per-id noun hypernym-sense mask (`Entity` omitted, mirroring
    /// `FeatureTable::build`).
    sense: Vec<u16>,
    /// Per-id verb-sense mask.
    vsense: Vec<u8>,
}

impl<'d> DocContext<'d> {
    /// Tokenises and interns every text element of `doc` and derives the
    /// per-distinct-token columns.
    pub fn build(doc: &'d Document) -> Self {
        let mut scratch = String::new();
        let view = DocView::build(doc, |text, sink| {
            tokenize_each(text, &mut scratch, |raw, norm| sink(raw, norm));
        });
        let n = view.distinct_tokens();
        let mut tokens = Vec::with_capacity(n);
        let mut stems = Vec::with_capacity(n);
        let mut sense = Vec::with_capacity(n);
        let mut vsense = Vec::with_capacity(n);
        let empty = empty_arc();
        FORM_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            for (_, raw, norm) in view.interner.iter() {
                if let Some(f) = cache.get(raw) {
                    debug_assert_eq!(&*f.norm, norm, "norm must be pure in raw");
                    tokens.push(Token::from_parts(f.raw.clone(), f.norm.clone()));
                    stems.push(f.stem.clone());
                    sense.push(f.sense);
                    vsense.push(f.vsense);
                    continue;
                }
                // Already-normalised words (the common case) share one Arc
                // for both forms; ditto stems that the stemmer leaves alone.
                let raw_arc: Arc<str> = Arc::from(raw);
                let norm_arc: Arc<str> = if norm == raw {
                    Arc::clone(&raw_arc)
                } else {
                    Arc::from(norm)
                };
                let tok = Token::from_parts(raw_arc, norm_arc);
                let eligible = !tok.norm.is_empty() && !is_stopword(&tok.norm) && !tok.is_numeric();
                let stem_arc = if eligible {
                    let s = stem(&tok.norm);
                    if s.as_str() == &*tok.norm {
                        Arc::clone(&tok.norm)
                    } else {
                        Arc::from(s.as_str())
                    }
                } else {
                    empty.clone()
                };
                let s = hypernym::sense_of(&tok.norm);
                let smask = if s != Sense::Entity {
                    1 << crate::select::pattern::sense_code(s)
                } else {
                    0
                };
                let mut vmask = 0u8;
                for v in verbs::senses_of(&tok.norm) {
                    vmask |= 1 << crate::select::pattern::vsense_code(v);
                }
                if cache.len() < FORM_CACHE_CAP {
                    cache.insert(
                        raw.into(),
                        CachedForms {
                            raw: tok.raw.clone(),
                            norm: tok.norm.clone(),
                            stem: stem_arc.clone(),
                            sense: smask,
                            vsense: vmask,
                        },
                    );
                }
                stems.push(stem_arc);
                sense.push(smask);
                vsense.push(vmask);
                tokens.push(tok);
            }
        });
        Self {
            view,
            tokens,
            stems,
            sense,
            vsense,
        }
    }

    /// The underlying document.
    pub fn doc(&self) -> &'d Document {
        self.view.doc
    }

    /// Canonical token for `id` (clone it to share the `Arc<str>`s).
    pub fn token(&self, id: TokenId) -> &Token {
        &self.tokens[id.index()]
    }

    /// Stem column entry for `id` (`""` when the token contributes no
    /// stem feature).
    pub fn stem_of(&self, id: TokenId) -> &Arc<str> {
        &self.stems[id.index()]
    }

    /// Noun hypernym-sense mask for `id`.
    pub fn sense_mask(&self, id: TokenId) -> u16 {
        self.sense[id.index()]
    }

    /// Verb-sense mask for `id`.
    pub fn vsense_mask(&self, id: TokenId) -> u8 {
        self.vsense[id.index()]
    }

    /// A memoising embedder over the per-thread embedding cache.
    /// Deterministically identical to [`LexiconEmbedding`] (`embed` is
    /// pure); each distinct word is embedded once per thread.
    pub fn embedder(&self) -> CtxEmbedder {
        CtxEmbedder(())
    }
}

impl std::fmt::Debug for DocContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocContext")
            .field("doc", &self.view.doc.id)
            .field("distinct_tokens", &self.tokens.len())
            .field("token_instances", &self.view.token_instances())
            .finish()
    }
}

/// [`Embedder`] that memoises [`LexiconEmbedding`] in the per-thread
/// embedding cache. `embed` is a pure function of the word, so
/// memoisation is bit-exact.
pub struct CtxEmbedder(());

impl Embedder for CtxEmbedder {
    fn embed(&self, word: &str) -> Vector {
        EMBED_CACHE.with(|cache| {
            if let Some(v) = cache.borrow().get(word) {
                return *v;
            }
            let v = LexiconEmbedding.embed(word);
            let mut cache = cache.borrow_mut();
            if cache.len() < FORM_CACHE_CAP {
                cache.insert(word.into(), v);
            }
            v
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::{BBox, TextElement};
    use vs2_nlp::token::tokenize;

    fn doc_with(texts: &[&str]) -> Document {
        let mut doc = Document::new("ctx", 200.0, 100.0);
        for (i, t) in texts.iter().enumerate() {
            doc.push_text(TextElement::word(
                *t,
                BBox::new(5.0, i as f64 * 12.0, 80.0, 9.0),
            ));
        }
        doc
    }

    #[test]
    fn context_tokens_match_owned_tokenize() {
        let doc = doc_with(&["Jazz Concert, tonight!", "Hosted by James Wilson.", ""]);
        let ctx = DocContext::build(&doc);
        for (i, t) in doc.texts.iter().enumerate() {
            let owned = tokenize(&t.text);
            let viewed: Vec<&Token> = ctx
                .view
                .tokens_of_text(i)
                .iter()
                .map(|id| ctx.token(*id))
                .collect();
            assert_eq!(owned.len(), viewed.len());
            for (o, v) in owned.iter().zip(viewed) {
                assert_eq!(o, v, "token divergence in element {i}");
            }
        }
    }

    #[test]
    fn stems_match_per_instance_derivation() {
        let doc = doc_with(&["hosted hosting the 2,465 hosted"]);
        let ctx = DocContext::build(&doc);
        for id in ctx.view.tokens_of_text(0) {
            let tok = ctx.token(*id);
            let want = if !tok.norm.is_empty() && !is_stopword(&tok.norm) && !tok.is_numeric() {
                stem(&tok.norm)
            } else {
                String::new()
            };
            assert_eq!(&**ctx.stem_of(*id), want.as_str());
        }
    }

    #[test]
    fn memoised_embedder_is_bit_exact() {
        let ctx_doc = doc_with(&["concert gala concert"]);
        let ctx = DocContext::build(&ctx_doc);
        let e = ctx.embedder();
        for w in ["concert", "gala", "Σίσυφος", "2,465"] {
            assert_eq!(e.embed(w), LexiconEmbedding.embed(w), "embed({w})");
            // Second call hits the memo and must be identical.
            assert_eq!(e.embed(w), LexiconEmbedding.embed(w));
        }
    }
}
