//! Segmentation plans: a serialisable skeleton of one full segmentation
//! run, replayable against a new document after a cheap validation pass.
//!
//! A [`SegmentationPlan`] records the layout tree produced by
//! [`crate::segment::segment`] — every live node for the skeleton, plus
//! the leaf partition (region, element count, mean element height) that
//! [`crate::segment::blocks_of_tree`] would extract. Replay against a
//! new document does **not** re-run XY-cut, clustering or semantic
//! merging: it re-assigns the new document's elements to the recorded
//! leaf regions and materialises fresh tight bounding boxes.
//!
//! Validation is deliberately strict — every check that fails falls the
//! document back to full segmentation, so a false *reject* only costs
//! latency while a false *accept* could change extraction output:
//!
//! 1. page dimensions match the recorded page;
//! 2. the total element count matches exactly;
//! 3. every element's centroid lies in exactly one leaf region (strict
//!    containment first; the `cover_tolerance`-inflated region only
//!    breaks zero-cover, and any ambiguity rejects);
//! 4. per leaf: the assigned element count matches exactly, the tight
//!    bbox of the assigned elements and the recorded region mutually
//!    contain each other within `cover_tolerance`, and the mean element
//!    height stays within `height_tolerance` (a font swap between
//!    near-miss templates moves this even when centroids coincide).
//!
//! Capture-time self-validation (see [`crate::plan::planned_blocks`])
//! additionally guarantees a plan is only ever cached if replaying it
//! against its *own* source document reproduces the full segmentation
//! partition bit-for-bit.

use crate::segment::LogicalBlock;
use vs2_docmodel::{BBox, Document, ElementRef, LayoutTree};

use super::fingerprint::FingerprintConfig;

/// Tolerances of the plan subsystem: fingerprint quantisation plus the
/// validation slack that absorbs the OCR channel's bbox jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanConfig {
    /// Fingerprint quantisation (the cache-key sketch).
    pub fingerprint: FingerprintConfig,
    /// Slack (document units) for centroid cover and bounds checks.
    /// Must exceed the worst-case tight-bbox drift under jitter
    /// (`1.5 ×` the per-coordinate jitter bound).
    pub cover_tolerance: f64,
    /// Maximum page width/height drift before a plan is rejected.
    pub page_tolerance: f64,
    /// Maximum drift of a leaf's mean element height.
    pub height_tolerance: f64,
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self {
            fingerprint: FingerprintConfig::default(),
            cover_tolerance: 3.0,
            page_tolerance: 1.0,
            height_tolerance: 2.0,
        }
    }
}

/// Why a cached plan refused to replay against a document. Each variant
/// maps to one validation stage; the daemon surfaces the aggregate as
/// the `plan_validation_rejects` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationReject {
    /// Page dimensions differ from the recorded page.
    PageMismatch,
    /// Total element count differs.
    ElementCount,
    /// An element's centroid fell outside every leaf region.
    Uncovered,
    /// An element's centroid was claimed by more than one leaf region.
    Ambiguous,
    /// A leaf received a different number of elements than recorded.
    LeafCount,
    /// A leaf's element extent drifted outside the recorded region.
    LeafBounds,
    /// A leaf's mean element height drifted beyond tolerance.
    LeafHeight,
}

impl ValidationReject {
    /// Stable kind string for logs and span tags.
    pub fn kind(&self) -> &'static str {
        match self {
            ValidationReject::PageMismatch => "page_mismatch",
            ValidationReject::ElementCount => "element_count",
            ValidationReject::Uncovered => "uncovered",
            ValidationReject::Ambiguous => "ambiguous",
            ValidationReject::LeafCount => "leaf_count",
            ValidationReject::LeafBounds => "leaf_bounds",
            ValidationReject::LeafHeight => "leaf_height",
        }
    }
}

impl std::fmt::Display for ValidationReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.kind())
    }
}

/// One node of the captured layout-tree skeleton, in live-arena order.
/// Replay only consumes the leaves; interior nodes keep the plan a
/// faithful, inspectable record of the cut sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Depth below the root (root = 0).
    pub depth: usize,
    /// The node's bounding box at capture time.
    pub bbox: BBox,
    /// Number of elements in the node's area.
    pub count: usize,
    /// `true` when the node was a leaf (a logical block when non-empty).
    pub is_leaf: bool,
}

/// One logical block of the captured partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanLeaf {
    /// Tight bounding box of the block's elements at capture time.
    pub region: BBox,
    /// Exact element count of the block.
    pub count: usize,
    /// Mean element height of the block (font-size proxy).
    pub mean_height: f64,
}

/// A replayable record of one full segmentation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentationPlan {
    /// Page width at capture time.
    pub page_w: f64,
    /// Page height at capture time.
    pub page_h: f64,
    /// Total element count (sum of leaf counts).
    pub total_elements: usize,
    /// Layout-tree skeleton, live nodes in arena order.
    pub nodes: Vec<PlanNode>,
    /// The leaf partition in arena order — the order
    /// [`crate::segment::blocks_of_tree`] emits blocks in, which the
    /// select stage's block indexing depends on.
    pub leaves: Vec<PlanLeaf>,
}

impl SegmentationPlan {
    /// Captures the plan of a finished segmentation run over `doc`.
    pub fn capture(doc: &Document, tree: &LayoutTree) -> Self {
        let mut nodes = Vec::new();
        let mut leaves = Vec::new();
        let mut total = 0usize;
        for id in tree.live_ids() {
            let n = tree.node(id);
            let is_leaf = n.is_leaf();
            nodes.push(PlanNode {
                depth: tree.depth(id),
                bbox: n.bbox,
                count: n.elements.len(),
                is_leaf,
            });
            if is_leaf && !n.elements.is_empty() {
                total += n.elements.len();
                leaves.push(PlanLeaf {
                    region: n.bbox,
                    count: n.elements.len(),
                    mean_height: mean_height(doc, &n.elements),
                });
            }
        }
        Self {
            page_w: doc.width,
            page_h: doc.height,
            total_elements: total,
            nodes,
            leaves,
        }
    }

    /// Validates the plan against `doc` and, on success, returns the
    /// per-leaf element assignment (leaves in plan order, elements in
    /// ascending [`ElementRef`] order).
    pub fn validate(
        &self,
        doc: &Document,
        cfg: &PlanConfig,
    ) -> Result<Vec<Vec<ElementRef>>, ValidationReject> {
        if (doc.width - self.page_w).abs() > cfg.page_tolerance
            || (doc.height - self.page_h).abs() > cfg.page_tolerance
        {
            return Err(ValidationReject::PageMismatch);
        }
        let refs = doc.element_refs();
        if refs.len() != self.total_elements {
            return Err(ValidationReject::ElementCount);
        }
        let inflated: Vec<BBox> = self
            .leaves
            .iter()
            .map(|l| l.region.inflate(cfg.cover_tolerance))
            .collect();
        let mut assignment: Vec<Vec<ElementRef>> = vec![Vec::new(); self.leaves.len()];
        // `element_refs` yields texts then images, each in index order —
        // already ascending in `ElementRef`'s derived ordering — so the
        // per-leaf element lists come out sorted without an extra pass.
        for r in refs {
            let c = doc.bbox_of(r).centroid();
            let mut strict = None;
            let mut strict_n = 0usize;
            for (i, leaf) in self.leaves.iter().enumerate() {
                if leaf.region.contains_point(c) {
                    strict = Some(i);
                    strict_n += 1;
                }
            }
            let owner = match strict_n {
                1 => strict.expect("counted"),
                0 => {
                    let mut loose = None;
                    let mut loose_n = 0usize;
                    for (i, region) in inflated.iter().enumerate() {
                        if region.contains_point(c) {
                            loose = Some(i);
                            loose_n += 1;
                        }
                    }
                    match loose_n {
                        1 => loose.expect("counted"),
                        0 => return Err(ValidationReject::Uncovered),
                        _ => return Err(ValidationReject::Ambiguous),
                    }
                }
                _ => return Err(ValidationReject::Ambiguous),
            };
            assignment[owner].push(r);
        }
        for (leaf, members) in self.leaves.iter().zip(&assignment) {
            if members.len() != leaf.count {
                return Err(ValidationReject::LeafCount);
            }
            let tight = tight_bbox(doc, members);
            if !leaf
                .region
                .inflate(cfg.cover_tolerance)
                .contains_box(&tight)
                || !tight
                    .inflate(cfg.cover_tolerance)
                    .contains_box(&leaf.region)
            {
                return Err(ValidationReject::LeafBounds);
            }
            if (mean_height(doc, members) - leaf.mean_height).abs() > cfg.height_tolerance {
                return Err(ValidationReject::LeafHeight);
            }
        }
        Ok(assignment)
    }

    /// Materialises the logical blocks of a validated assignment.
    /// Bounding boxes are recomputed tight over the *new* document's
    /// elements — exactly what a full segmentation run would produce
    /// for the same partition, since leaf boxes are tight by
    /// construction and box union is order-independent.
    pub fn replay(&self, doc: &Document, assignment: &[Vec<ElementRef>]) -> Vec<LogicalBlock> {
        assignment
            .iter()
            .map(|members| LogicalBlock {
                bbox: tight_bbox(doc, members),
                elements: members.clone(),
            })
            .collect()
    }
}

fn tight_bbox(doc: &Document, elements: &[ElementRef]) -> BBox {
    let boxes: Vec<BBox> = elements.iter().map(|r| doc.bbox_of(*r)).collect();
    BBox::enclosing(boxes.iter()).unwrap_or_default()
}

fn mean_height(doc: &Document, elements: &[ElementRef]) -> f64 {
    if elements.is_empty() {
        return 0.0;
    }
    elements.iter().map(|r| doc.bbox_of(*r).h).sum::<f64>() / elements.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{blocks_of_tree, segment, SegmentConfig};
    use vs2_docmodel::TextElement;

    /// Two well-separated paragraphs of three words each.
    fn two_block_doc(jitter: f64) -> Document {
        let mut d = Document::new("plan-test", 600.0, 800.0);
        for (bx, by) in [(60.0, 60.0), (60.0, 400.0)] {
            for i in 0..3 {
                d.push_text(TextElement::word(
                    format!("w{i}"),
                    BBox::new(bx + i as f64 * 50.0 + jitter, by + jitter, 40.0, 12.0),
                ));
            }
        }
        d
    }

    fn captured(doc: &Document) -> (SegmentationPlan, Vec<LogicalBlock>) {
        let cfg = SegmentConfig::default();
        let tree = segment(doc, &cfg);
        (SegmentationPlan::capture(doc, &tree), blocks_of_tree(&tree))
    }

    #[test]
    fn self_replay_reproduces_the_partition() {
        let doc = two_block_doc(0.0);
        let (plan, blocks) = captured(&doc);
        assert_eq!(plan.leaves.len(), blocks.len());
        assert_eq!(plan.total_elements, 6);
        let assignment = plan.validate(&doc, &PlanConfig::default()).expect("valid");
        let replayed = plan.replay(&doc, &assignment);
        assert_eq!(replayed.len(), blocks.len());
        for (r, b) in replayed.iter().zip(&blocks) {
            assert_eq!(r.bbox, b.bbox);
            let mut expected = b.elements.clone();
            expected.sort();
            assert_eq!(r.elements, expected);
        }
    }

    #[test]
    fn jittered_family_member_replays() {
        let base = two_block_doc(0.0);
        let (plan, _) = captured(&base);
        let shifted = two_block_doc(1.0);
        let assignment = plan
            .validate(&shifted, &PlanConfig::default())
            .expect("jitter within tolerance must validate");
        let replayed = plan.replay(&shifted, &assignment);
        assert_eq!(replayed.len(), plan.leaves.len());
        // Boxes are tight over the *shifted* geometry, not the recorded one.
        assert_ne!(replayed[0].bbox, plan.leaves[0].region);
    }

    #[test]
    fn element_count_change_rejects() {
        let base = two_block_doc(0.0);
        let (plan, _) = captured(&base);
        let mut extra = two_block_doc(0.0);
        extra.push_text(TextElement::word("x", BBox::new(300.0, 700.0, 30.0, 12.0)));
        assert_eq!(
            plan.validate(&extra, &PlanConfig::default()),
            Err(ValidationReject::ElementCount)
        );
    }

    #[test]
    fn displaced_layout_rejects() {
        let base = two_block_doc(0.0);
        let (plan, _) = captured(&base);
        let mut moved = Document::new("plan-test", 600.0, 800.0);
        for t in &base.texts {
            moved.push_text(TextElement::word(
                t.text.clone(),
                t.bbox.translate(0.0, 150.0),
            ));
        }
        assert!(plan.validate(&moved, &PlanConfig::default()).is_err());
    }

    #[test]
    fn page_resize_rejects() {
        let base = two_block_doc(0.0);
        let (plan, _) = captured(&base);
        let mut resized = Document::new("plan-test", 900.0, 800.0);
        for t in &base.texts {
            resized.push_text(t.clone());
        }
        assert_eq!(
            plan.validate(&resized, &PlanConfig::default()),
            Err(ValidationReject::PageMismatch)
        );
    }

    #[test]
    fn font_swap_rejects_via_height() {
        let base = two_block_doc(0.0);
        let (plan, _) = captured(&base);
        // Same centroids, moderately taller glyph boxes — a near-miss
        // template with a different typeface scale. The 2.5-unit extent
        // growth stays inside `cover_tolerance`, so only the mean-height
        // check can catch it.
        let mut swapped = Document::new("plan-test", 600.0, 800.0);
        for t in &base.texts {
            let c = t.bbox.centroid();
            swapped.push_text(TextElement::word(
                t.text.clone(),
                BBox::new(c.x - t.bbox.w / 2.0, c.y - 8.5, t.bbox.w, 17.0),
            ));
        }
        assert_eq!(
            plan.validate(&swapped, &PlanConfig::default()),
            Err(ValidationReject::LeafHeight)
        );
    }

    #[test]
    fn empty_document_round_trips() {
        let doc = Document::new("empty", 600.0, 800.0);
        let (plan, blocks) = captured(&doc);
        assert!(blocks.is_empty());
        assert_eq!(plan.total_elements, 0);
        let assignment = plan.validate(&doc, &PlanConfig::default()).expect("valid");
        assert!(plan.replay(&doc, &assignment).is_empty());
    }
}
