//! Template fingerprinting and segmentation-plan caching (ROADMAP
//! item 3).
//!
//! Templated traffic — per-broker flyers, fixed form faces — pays full
//! segmentation for every document even though near-duplicate layouts
//! dominate. This subsystem routes such documents down a cheap path:
//!
//! 1. [`LayoutFingerprint`] — a quantised, content-blind sketch of the
//!    element geometry, computed before segmentation ([`fingerprint`]);
//! 2. [`SegmentationPlan`] — a serialisable record of one full
//!    segmentation run, replayable after a strict validation pass
//!    ([`replay`]);
//! 3. [`PlanStore`] + [`planned_blocks`] — the bounded LRU cache and
//!    the fingerprint → validate → replay → fallback driver
//!    ([`store`]).
//!
//! Correctness stance: replay must be *byte-identical* to full
//! segmentation or not happen at all. Validation rejects fall back to
//! the full path, captured plans are self-validated before insertion,
//! and the conformance suite runs cache-on vs cache-off differentials
//! over every corpus, including adversarial near-miss templates built
//! to collide fingerprints.

pub mod fingerprint;
pub mod replay;
pub mod store;

pub use fingerprint::{FingerprintConfig, LayoutFingerprint, CENTROID_MARGIN, STABLE_JITTER};
pub use replay::{PlanConfig, PlanLeaf, PlanNode, SegmentationPlan, ValidationReject};
pub use store::{
    planned_blocks, planned_blocks_ctx, PlanCounters, PlanOutcome, PlanStore, PlanStoreConfig,
};
