//! The bounded plan store and the cache-aware segmentation entry point.
//!
//! [`PlanStore`] maps [`LayoutFingerprint`]s to cached
//! [`SegmentationPlan`]s with LRU eviction and hit/miss/reject
//! counters. [`planned_blocks`] is the drop-in replacement for
//! [`crate::segment::logical_blocks`] used by the serving layer when
//! the plan cache is enabled: fingerprint → lookup → validate → replay,
//! falling back to full segmentation (and capturing a new plan) on any
//! miss or rejection.
//!
//! ## Cache-consistency invariants
//!
//! * **First plan wins.** A validation reject never replaces the cached
//!   plan — an adversarial near-miss template that collides with a
//!   family's fingerprint cannot evict or poison the family's plan by
//!   merely arriving (it falls back to full segmentation instead).
//! * **Self-validation before insert.** A freshly captured plan is
//!   cached only if validating and replaying it against its *own*
//!   source document reproduces the full-segmentation partition
//!   exactly. Documents whose geometry defeats the validator (e.g.
//!   overlapping blocks) are simply never cached.
//! * **Skew bypass.** When deskew is enabled and the estimated page
//!   skew reaches [`crate::segment::SKEW_EPSILON`], the plan path is
//!   bypassed entirely: rotation-corrected analysis is inherently
//!   content-dependent, so such documents always take the full path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::segment::{self, LogicalBlock, SegmentConfig};
use vs2_docmodel::Document;

use super::fingerprint::LayoutFingerprint;
use super::replay::{PlanConfig, SegmentationPlan, ValidationReject};

/// Capacity bound of a [`PlanStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStoreConfig {
    /// Maximum number of cached plans; the least recently used plan is
    /// evicted on overflow. A capacity of 0 disables insertion.
    pub capacity: usize,
}

impl Default for PlanStoreConfig {
    fn default() -> Self {
        Self { capacity: 256 }
    }
}

/// Counter snapshot of a [`PlanStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCounters {
    /// Lookups that validated and replayed a cached plan.
    pub hits: u64,
    /// Lookups with no plan under the fingerprint.
    pub misses: u64,
    /// Lookups whose cached plan failed validation (full fallback).
    pub validation_rejects: u64,
    /// Plans admitted into the store.
    pub inserts: u64,
    /// Plans evicted by the LRU bound.
    pub evictions: u64,
    /// Documents that bypassed the plan path (page skew).
    pub bypasses: u64,
    /// Captured plans refused at insert (failed self-validation).
    pub uncacheable: u64,
}

impl PlanCounters {
    /// Accumulates `other` into `self`, field by field — used to
    /// aggregate counters across plan namespaces.
    pub fn add(&mut self, other: &PlanCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.validation_rejects += other.validation_rejects;
        self.inserts += other.inserts;
        self.evictions += other.evictions;
        self.bypasses += other.bypasses;
        self.uncacheable += other.uncacheable;
    }
}

/// How [`planned_blocks`] produced its blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOutcome {
    /// A cached plan validated and was replayed — no segmentation ran.
    Replayed,
    /// No plan was cached; full segmentation ran. `inserted` tells
    /// whether the captured plan passed self-validation and was cached.
    Miss {
        /// `true` when the capture was admitted into the store.
        inserted: bool,
    },
    /// A cached plan failed validation; full segmentation ran and the
    /// cached plan was left untouched.
    Rejected(ValidationReject),
    /// The plan path was skipped (estimated skew at or above
    /// [`crate::segment::SKEW_EPSILON`] with deskew enabled).
    Bypassed,
}

struct Slot {
    plan: Arc<SegmentationPlan>,
    last_used: u64,
}

struct Inner {
    slots: HashMap<LayoutFingerprint, Slot>,
    clock: u64,
}

/// Bounded, thread-safe fingerprint → plan cache with LRU eviction.
pub struct PlanStore {
    config: PlanStoreConfig,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    validation_rejects: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
    uncacheable: AtomicU64,
}

impl PlanStore {
    /// Creates an empty store with the given bound.
    pub fn new(config: PlanStoreConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            validation_rejects: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan store lock").slots.len()
    }

    /// `true` when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the plan under `fp`, refreshing its LRU stamp.
    /// Does not touch the hit/miss counters — [`planned_blocks`] counts
    /// outcomes, not raw probes.
    pub fn lookup(&self, fp: &LayoutFingerprint) -> Option<Arc<SegmentationPlan>> {
        let mut inner = self.inner.lock().expect("plan store lock");
        inner.clock += 1;
        let now = inner.clock;
        inner.slots.get_mut(fp).map(|slot| {
            slot.last_used = now;
            Arc::clone(&slot.plan)
        })
    }

    /// Inserts a plan under `fp`, evicting the least recently used
    /// entry on overflow. Existing entries are never replaced (first
    /// plan wins); returns `false` when the insert was skipped.
    pub fn insert(&self, fp: LayoutFingerprint, plan: Arc<SegmentationPlan>) -> bool {
        if self.config.capacity == 0 {
            return false;
        }
        let mut inner = self.inner.lock().expect("plan store lock");
        if inner.slots.contains_key(&fp) {
            return false;
        }
        if inner.slots.len() >= self.config.capacity {
            // O(n) victim scan: capacities are small (hundreds) and
            // inserts only happen on cache misses that already paid for
            // a full segmentation run.
            if let Some(victim) = inner
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.slots.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.clock += 1;
        let now = inner.clock;
        inner.slots.insert(
            fp,
            Slot {
                plan,
                last_used: now,
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Exports every cached plan, sorted by fingerprint digest — the
    /// drain/handoff serialization order. Counters and LRU stamps are
    /// left untouched.
    pub fn export(&self) -> Vec<(LayoutFingerprint, Arc<SegmentationPlan>)> {
        let inner = self.inner.lock().expect("plan store lock");
        let mut out: Vec<_> = inner
            .slots
            .iter()
            .map(|(fp, slot)| (fp.clone(), Arc::clone(&slot.plan)))
            .collect();
        out.sort_by_key(|(fp, _)| fp.digest());
        out
    }

    /// Preloads plans into an empty-or-warm store without touching the
    /// insert/eviction counters — warm-starting from a handoff snapshot
    /// must not masquerade as serving traffic. Existing fingerprints are
    /// never replaced (first plan wins) and loading stops at capacity.
    /// Returns the number of plans admitted.
    pub fn preload(
        &self,
        entries: impl IntoIterator<Item = (LayoutFingerprint, Arc<SegmentationPlan>)>,
    ) -> usize {
        if self.config.capacity == 0 {
            return 0;
        }
        let mut inner = self.inner.lock().expect("plan store lock");
        let mut admitted = 0;
        for (fp, plan) in entries {
            if inner.slots.len() >= self.config.capacity {
                break;
            }
            if inner.slots.contains_key(&fp) {
                continue;
            }
            inner.clock += 1;
            let now = inner.clock;
            inner.slots.insert(
                fp,
                Slot {
                    plan,
                    last_used: now,
                },
            );
            admitted += 1;
        }
        admitted
    }

    /// Records a replayed lookup from outside the plan driver (the
    /// triage router's cheap-path probe replays plans too).
    pub(crate) fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a validation reject from outside the plan driver.
    pub(crate) fn note_validation_reject(&self) {
        self.validation_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn counters(&self) -> PlanCounters {
        PlanCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            validation_rejects: self.validation_rejects.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
        }
    }
}

impl Default for PlanStore {
    fn default() -> Self {
        Self::new(PlanStoreConfig::default())
    }
}

/// Cache-aware segmentation: the plan-path equivalent of
/// [`crate::segment::logical_blocks`]. Returns the logical blocks plus
/// how they were produced. Emits the `vs2.plan.*` span family; the full
/// fallback path emits the usual `vs2.segment.*` spans unchanged.
pub fn planned_blocks(
    doc: &Document,
    seg: &SegmentConfig,
    cfg: &PlanConfig,
    store: &PlanStore,
) -> (Vec<LogicalBlock>, PlanOutcome) {
    planned_blocks_with(doc, seg, cfg, store, &vs2_nlp::LexiconEmbedding)
}

/// Cache-aware segmentation over a borrowed [`DocContext`]: identical
/// decision logic to [`planned_blocks`], but every full-segmentation
/// fallback (skew bypass, validation reject, cache miss) runs through
/// the context's memoizing embedder instead of re-deriving embeddings
/// per call. Replay and fingerprinting are embedding-free, so hit-path
/// behaviour is unchanged.
pub fn planned_blocks_ctx(
    ctx: &crate::context::DocContext<'_>,
    seg: &SegmentConfig,
    cfg: &PlanConfig,
    store: &PlanStore,
) -> (Vec<LogicalBlock>, PlanOutcome) {
    planned_blocks_with(ctx.doc(), seg, cfg, store, &ctx.embedder())
}

fn planned_blocks_with<E: vs2_nlp::Embedder>(
    doc: &Document,
    seg: &SegmentConfig,
    cfg: &PlanConfig,
    store: &PlanStore,
    embedder: &E,
) -> (Vec<LogicalBlock>, PlanOutcome) {
    let fp = {
        let span = vs2_obs::span(vs2_obs::stages::PLAN_FINGERPRINT);
        if seg.deskew && segment::estimate_skew(doc).abs() >= segment::SKEW_EPSILON {
            span.tag("bypass", 1);
            drop(span);
            store.bypasses.fetch_add(1, Ordering::Relaxed);
            let tree = segment::segment_with_embedder(doc, seg, embedder);
            return (segment::blocks_of_tree(&tree), PlanOutcome::Bypassed);
        }
        let fp = LayoutFingerprint::compute(doc, &cfg.fingerprint);
        span.tag("digest", fp.digest());
        fp
    };

    if let Some(plan) = store.lookup(&fp) {
        let validated = {
            let _span = vs2_obs::span(vs2_obs::stages::PLAN_VALIDATE);
            plan.validate(doc, cfg)
        };
        match validated {
            Ok(assignment) => {
                let blocks = {
                    let span = vs2_obs::span(vs2_obs::stages::PLAN_REPLAY);
                    span.tag("blocks", assignment.len() as u64);
                    plan.replay(doc, &assignment)
                };
                store.hits.fetch_add(1, Ordering::Relaxed);
                return (blocks, PlanOutcome::Replayed);
            }
            Err(reject) => {
                store.validation_rejects.fetch_add(1, Ordering::Relaxed);
                // First plan wins: the cached plan stays; this document
                // pays for full segmentation and is not captured (its
                // fingerprint slot is taken).
                let tree = segment::segment_with_embedder(doc, seg, embedder);
                return (
                    segment::blocks_of_tree(&tree),
                    PlanOutcome::Rejected(reject),
                );
            }
        }
    }

    store.misses.fetch_add(1, Ordering::Relaxed);
    let tree = segment::segment_with_embedder(doc, seg, embedder);
    let blocks = segment::blocks_of_tree(&tree);
    let plan = SegmentationPlan::capture(doc, &tree);
    let inserted = if self_replay_matches(&plan, doc, cfg, &blocks) {
        store.insert(fp, Arc::new(plan))
    } else {
        store.uncacheable.fetch_add(1, Ordering::Relaxed);
        false
    };
    (blocks, PlanOutcome::Miss { inserted })
}

/// Capture-time self-validation: the plan must validate against its own
/// source document and replay the exact partition the full run
/// produced — same leaf order, same element sets, same tight boxes.
fn self_replay_matches(
    plan: &SegmentationPlan,
    doc: &Document,
    cfg: &PlanConfig,
    blocks: &[LogicalBlock],
) -> bool {
    let Ok(assignment) = plan.validate(doc, cfg) else {
        return false;
    };
    let replayed = plan.replay(doc, &assignment);
    if replayed.len() != blocks.len() {
        return false;
    }
    replayed.iter().zip(blocks).all(|(r, b)| {
        let mut expected = b.elements.clone();
        expected.sort();
        r.bbox == b.bbox && r.elements == expected
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::{BBox, TextElement};

    fn block_doc(id: &str, origin_y: f64) -> Document {
        let mut d = Document::new(id, 600.0, 800.0);
        for (bx, by) in [(60.0, origin_y), (60.0, origin_y + 300.0)] {
            for i in 0..3 {
                d.push_text(TextElement::word(
                    format!("w{i}"),
                    BBox::new(bx + i as f64 * 50.0, by, 40.0, 12.0),
                ));
            }
        }
        d
    }

    fn run(doc: &Document, store: &PlanStore) -> (Vec<LogicalBlock>, PlanOutcome) {
        planned_blocks(
            doc,
            &SegmentConfig::default(),
            &PlanConfig::default(),
            store,
        )
    }

    #[test]
    fn miss_then_hit_produces_identical_blocks() {
        let store = PlanStore::default();
        let doc = block_doc("a", 60.0);
        let (cold, o1) = run(&doc, &store);
        assert_eq!(o1, PlanOutcome::Miss { inserted: true });
        let (warm, o2) = run(&doc, &store);
        assert_eq!(o2, PlanOutcome::Replayed);
        assert_eq!(cold.len(), warm.len());
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.bbox, w.bbox);
            let mut ce = c.elements.clone();
            ce.sort();
            assert_eq!(ce, w.elements);
        }
        let counters = store.counters();
        assert_eq!(counters.misses, 1);
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.inserts, 1);
    }

    #[test]
    fn different_layouts_do_not_share_plans() {
        let store = PlanStore::default();
        let (_, o1) = run(&block_doc("a", 60.0), &store);
        assert_eq!(o1, PlanOutcome::Miss { inserted: true });
        let (_, o2) = run(&block_doc("b", 200.0), &store);
        // Shifted layout → different fingerprint → its own plan.
        assert_eq!(o2, PlanOutcome::Miss { inserted: true });
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn lru_eviction_order_is_pinned() {
        let store = PlanStore::new(PlanStoreConfig { capacity: 2 });
        let a = block_doc("a", 40.0);
        let b = block_doc("b", 120.0);
        let c = block_doc("c", 200.0);
        run(&a, &store);
        run(&b, &store);
        run(&a, &store); // refresh a: b is now least recently used
        run(&c, &store); // evicts b
        assert_eq!(store.counters().evictions, 1);
        assert_eq!(run(&a, &store).1, PlanOutcome::Replayed);
        assert_eq!(run(&c, &store).1, PlanOutcome::Replayed);
        assert!(matches!(run(&b, &store).1, PlanOutcome::Miss { .. }));
    }

    #[test]
    fn zero_capacity_disables_insertion() {
        let store = PlanStore::new(PlanStoreConfig { capacity: 0 });
        let doc = block_doc("a", 60.0);
        let (_, o) = run(&doc, &store);
        assert_eq!(o, PlanOutcome::Miss { inserted: false });
        assert!(store.is_empty());
        assert!(matches!(run(&doc, &store).1, PlanOutcome::Miss { .. }));
    }

    #[test]
    fn first_plan_wins_on_reject() {
        let store = PlanStore::default();
        let doc = block_doc("a", 60.0);
        run(&doc, &store);
        // Same fingerprint cell occupancy but one extra element →
        // ElementCount reject; the cached plan must survive.
        let mut collider = block_doc("a", 60.0);
        collider.push_text(TextElement::word("x", BBox::new(62.0, 62.0, 10.0, 10.0)));
        let (_, o) = run(&collider, &store);
        if let PlanOutcome::Rejected(_) = o {
            // Reject path: the original family still replays.
            assert_eq!(run(&doc, &store).1, PlanOutcome::Replayed);
        } else {
            // The extra element changed the fingerprint — also fine,
            // but the original plan must still be intact.
            assert_eq!(run(&doc, &store).1, PlanOutcome::Replayed);
        }
    }

    #[test]
    fn export_and_preload_round_trip_without_counter_noise() {
        let store = PlanStore::default();
        run(&block_doc("a", 60.0), &store);
        run(&block_doc("b", 200.0), &store);
        let exported = store.export();
        assert_eq!(exported.len(), 2);
        // Export order is pinned by digest.
        assert!(exported[0].0.digest() < exported[1].0.digest());

        let warm = PlanStore::default();
        assert_eq!(warm.preload(exported.clone()), 2);
        assert_eq!(warm.len(), 2);
        // Preload is invisible to the counters...
        assert_eq!(warm.counters(), PlanCounters::default());
        // ...but the plans replay as first-class cache hits.
        assert_eq!(run(&block_doc("a", 60.0), &warm).1, PlanOutcome::Replayed);
        assert_eq!(run(&block_doc("b", 200.0), &warm).1, PlanOutcome::Replayed);
        assert_eq!(warm.counters().hits, 2);
        assert_eq!(warm.counters().misses, 0);

        // First plan wins on preload too, and capacity bounds the load.
        assert_eq!(warm.preload(exported.clone()), 0);
        let tiny = PlanStore::new(PlanStoreConfig { capacity: 1 });
        assert_eq!(tiny.preload(exported), 1);
        let disabled = PlanStore::new(PlanStoreConfig { capacity: 0 });
        assert_eq!(disabled.preload(store.export()), 0);
        assert!(disabled.is_empty());
    }

    #[test]
    fn skewed_documents_bypass() {
        // A visibly rotated multi-line doc: lines with a consistent slope.
        let mut d = Document::new("skewed", 600.0, 800.0);
        for line in 0..6 {
            for i in 0..8 {
                let x = 40.0 + i as f64 * 60.0;
                let y = 80.0 + line as f64 * 60.0 + x * 0.02;
                d.push_text(TextElement::word(
                    format!("w{line}{i}"),
                    BBox::new(x, y, 40.0, 12.0),
                ));
            }
        }
        assert!(crate::segment::estimate_skew(&d).abs() >= crate::segment::SKEW_EPSILON);
        let store = PlanStore::default();
        let (_, o) = run(&d, &store);
        assert_eq!(o, PlanOutcome::Bypassed);
        assert!(store.is_empty());
        assert_eq!(store.counters().bypasses, 1);
    }
}
