//! Layout fingerprinting: a quantised sketch of a document's element
//! geometry, computed *before* segmentation and used as the plan-cache
//! lookup key (ROADMAP item 3; cf. VRDSynth's cross-document layout
//! regularity).
//!
//! The fingerprint combines a grid-binned occupancy histogram of element
//! centroids with an exact element-count / quantised page-shape
//! signature. It is deterministic in the document geometry and ignores
//! all textual content, so members of one template family — documents
//! whose token boxes are template-fixed and only differ in glyph
//! content — share a fingerprint.
//!
//! ## Robustness contract
//!
//! No quantised sketch can be invariant under *arbitrary* perturbation —
//! a centroid sitting exactly on a cell boundary flips cells under any
//! nonzero jitter. Stability is therefore a joint contract with the
//! template source: as long as every element centroid stays at least
//! [`CENTROID_MARGIN`] document units away from every grid-cell
//! boundary, per-coordinate bounding-box jitter up to
//! [`STABLE_JITTER`] (the OCR channel's light/templated bound; jitter on
//! `x` plus half the jitter on `w` shifts a centroid by at most
//! `1.5 × jitter < CENTROID_MARGIN`) cannot move any centroid across a
//! boundary, and the fingerprint is bit-identical. The
//! `vs2_synth::templated` generator places all token boxes to honour the
//! margin; the conformance suite proves both properties.

use vs2_docmodel::{Document, Point};

/// Largest per-coordinate bounding-box jitter the fingerprint absorbs
/// for margin-respecting templates (matches the OCR channel's light
/// noise and the templated corpus default).
pub const STABLE_JITTER: f64 = 1.0;

/// Minimum distance every element centroid must keep from all grid-cell
/// boundaries for the robustness contract to hold. Jitter `j` on `x`/`y`
/// plus `j` on `w`/`h` displaces a centroid by at most `1.5 j` per axis;
/// `1.5 × STABLE_JITTER = 1.5 < 2.0` leaves slack.
pub const CENTROID_MARGIN: f64 = 2.0;

/// Quantisation parameters of [`LayoutFingerprint::compute`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FingerprintConfig {
    /// Horizontal grid resolution of the occupancy histogram.
    pub grid_cols: usize,
    /// Vertical grid resolution of the occupancy histogram.
    pub grid_rows: usize,
    /// Page width/height quantum (document units) for the page-shape
    /// signature. Page dimensions are metadata, untouched by OCR noise,
    /// so the quantum only coalesces near-identical paper sizes.
    pub page_quantum: f64,
}

impl Default for FingerprintConfig {
    fn default() -> Self {
        Self {
            grid_cols: 16,
            grid_rows: 16,
            page_quantum: 8.0,
        }
    }
}

impl FingerprintConfig {
    /// Distance from point `p` to the nearest grid-cell boundary on a
    /// `page_w × page_h` page — the margin the robustness contract is
    /// stated over. Template generators (and the conformance suite) use
    /// this to keep token centroids clear of boundaries.
    pub fn boundary_margin(&self, page_w: f64, page_h: f64, p: Point) -> f64 {
        let axis = |v: f64, extent: f64, n: usize| -> f64 {
            if extent <= 0.0 || n == 0 {
                return f64::INFINITY;
            }
            let step = extent / n as f64;
            let offset = (v / step).rem_euclid(1.0) * step;
            offset.min(step - offset)
        };
        axis(p.x, page_w, self.grid_cols).min(axis(p.y, page_h, self.grid_rows))
    }
}

/// The quantised layout sketch. All fields are integral, so equality,
/// hashing and ordering are exact; it is the key type of
/// [`crate::plan::PlanStore`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayoutFingerprint {
    /// Quantised page width (`floor(width / page_quantum)`).
    pub page_w_q: u32,
    /// Quantised page height.
    pub page_h_q: u32,
    /// Exact text-element count. OCR jitter never changes counts; drops,
    /// merges and splits do — such documents simply miss the cache.
    pub n_texts: u32,
    /// Exact image-element count.
    pub n_images: u32,
    /// Grid occupancy histogram: 2 bits per cell in row-major order
    /// (occupancy buckets 0, 1, 2–3, ≥4), packed little-endian into
    /// 64-bit words.
    pub cells: Vec<u64>,
}

impl LayoutFingerprint {
    /// Computes the fingerprint of `doc` under `cfg`. Pure geometry: the
    /// result depends only on page dimensions and element bounding
    /// boxes, never on text or colour.
    pub fn compute(doc: &Document, cfg: &FingerprintConfig) -> Self {
        let cols = cfg.grid_cols.max(1);
        let rows = cfg.grid_rows.max(1);
        let mut counts = vec![0u32; cols * rows];
        for r in doc.element_refs() {
            let c = doc.bbox_of(r).centroid();
            let col = cell_index(c.x, doc.width, cols);
            let row = cell_index(c.y, doc.height, rows);
            counts[row * cols + col] = counts[row * cols + col].saturating_add(1);
        }
        let mut cells = vec![0u64; (cols * rows * 2).div_ceil(64)];
        for (i, n) in counts.iter().enumerate() {
            let bucket: u64 = match n {
                0 => 0,
                1 => 1,
                2..=3 => 2,
                _ => 3,
            };
            cells[(i * 2) / 64] |= bucket << ((i * 2) % 64);
        }
        let quantise = |v: f64| -> u32 {
            if cfg.page_quantum > 0.0 && v.is_finite() && v > 0.0 {
                (v / cfg.page_quantum).floor().min(u32::MAX as f64) as u32
            } else {
                0
            }
        };
        Self {
            page_w_q: quantise(doc.width),
            page_h_q: quantise(doc.height),
            n_texts: doc.texts.len().min(u32::MAX as usize) as u32,
            n_images: doc.images.len().min(u32::MAX as usize) as u32,
            cells,
        }
    }

    /// A 64-bit FNV-1a digest of the fingerprint, for logging and span
    /// tags. Not the cache key (the full struct is).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.page_w_q as u64);
        eat(self.page_h_q as u64);
        eat(self.n_texts as u64);
        eat(self.n_images as u64);
        for w in &self.cells {
            eat(*w);
        }
        h
    }
}

/// Row/column of a coordinate, clamped into the grid so off-page
/// centroids (possible after heavy jitter near the page edge) still bin
/// deterministically.
fn cell_index(v: f64, extent: f64, n: usize) -> usize {
    if extent <= 0.0 || !v.is_finite() {
        return 0;
    }
    let raw = (v / extent * n as f64).floor();
    if raw.is_nan() {
        return 0;
    }
    (raw as i64).clamp(0, n as i64 - 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::{BBox, TextElement};

    fn doc_with(boxes: &[BBox]) -> Document {
        let mut d = Document::new("fp-test", 640.0, 800.0);
        for (i, b) in boxes.iter().enumerate() {
            d.push_text(TextElement::word(format!("w{i}"), *b));
        }
        d
    }

    #[test]
    fn geometry_only_text_changes_nothing() {
        let cfg = FingerprintConfig::default();
        let a = doc_with(&[BBox::new(100.0, 100.0, 40.0, 10.0)]);
        let mut b = doc_with(&[BBox::new(100.0, 100.0, 40.0, 10.0)]);
        b.texts[0].text = "different".into();
        assert_eq!(
            LayoutFingerprint::compute(&a, &cfg),
            LayoutFingerprint::compute(&b, &cfg)
        );
    }

    #[test]
    fn moved_element_changes_fingerprint() {
        let cfg = FingerprintConfig::default();
        let a = doc_with(&[BBox::new(100.0, 100.0, 40.0, 10.0)]);
        let b = doc_with(&[BBox::new(500.0, 700.0, 40.0, 10.0)]);
        assert_ne!(
            LayoutFingerprint::compute(&a, &cfg),
            LayoutFingerprint::compute(&b, &cfg)
        );
    }

    #[test]
    fn element_count_is_exact() {
        let cfg = FingerprintConfig::default();
        let one = doc_with(&[BBox::new(100.0, 100.0, 40.0, 10.0)]);
        let two = doc_with(&[
            BBox::new(100.0, 100.0, 40.0, 10.0),
            BBox::new(100.0, 100.0, 40.0, 10.0),
        ]);
        let (fa, fb) = (
            LayoutFingerprint::compute(&one, &cfg),
            LayoutFingerprint::compute(&two, &cfg),
        );
        assert_eq!(fa.n_texts, 1);
        assert_eq!(fb.n_texts, 2);
        assert_ne!(fa, fb);
    }

    #[test]
    fn margin_respecting_jitter_is_absorbed() {
        let cfg = FingerprintConfig::default();
        // 640/16 = 40-unit columns, 800/16 = 50-unit rows: a centroid at
        // (100, 125) sits 20 units from the nearest column boundary and
        // 25 from the nearest row boundary.
        let centre = BBox::new(76.0, 111.0, 48.0, 28.0); // centroid (100, 125)
        let base = doc_with(&[centre]);
        let fp = LayoutFingerprint::compute(&base, &cfg);
        let margin = cfg.boundary_margin(640.0, 800.0, centre.centroid());
        assert!(margin >= CENTROID_MARGIN, "margin {margin}");
        for (dx, dy, dw, dh) in [
            (STABLE_JITTER, STABLE_JITTER, STABLE_JITTER, STABLE_JITTER),
            (
                -STABLE_JITTER,
                -STABLE_JITTER,
                -STABLE_JITTER,
                -STABLE_JITTER,
            ),
            (STABLE_JITTER, -STABLE_JITTER, -STABLE_JITTER, STABLE_JITTER),
        ] {
            let jittered = doc_with(&[BBox::new(
                centre.x + dx,
                centre.y + dy,
                centre.w + dw,
                centre.h + dh,
            )]);
            assert_eq!(LayoutFingerprint::compute(&jittered, &cfg), fp);
        }
    }

    #[test]
    fn boundary_margin_measures_distance_to_grid_lines() {
        let cfg = FingerprintConfig::default();
        // 640/16 = 40-unit columns; x = 41 is 1 unit past a boundary.
        let m = cfg.boundary_margin(640.0, 800.0, Point::new(41.0, 120.0));
        assert!((m - 1.0).abs() < 1e-9, "{m}");
        let mid = cfg.boundary_margin(640.0, 800.0, Point::new(60.0, 125.0));
        assert!((mid - 20.0).abs() < 1e-9, "{mid}");
    }

    #[test]
    fn digest_is_stable_and_discriminating() {
        let cfg = FingerprintConfig::default();
        let a = doc_with(&[BBox::new(100.0, 100.0, 40.0, 10.0)]);
        let b = doc_with(&[BBox::new(500.0, 700.0, 40.0, 10.0)]);
        let fa = LayoutFingerprint::compute(&a, &cfg);
        assert_eq!(fa.digest(), LayoutFingerprint::compute(&a, &cfg).digest());
        assert_ne!(fa.digest(), LayoutFingerprint::compute(&b, &cfg).digest());
    }

    #[test]
    fn degenerate_pages_do_not_panic() {
        let cfg = FingerprintConfig::default();
        let mut d = Document::new("degenerate", 0.0, 0.0);
        d.push_text(TextElement::word("w", BBox::new(0.0, 0.0, 1.0, 1.0)));
        let fp = LayoutFingerprint::compute(&d, &cfg);
        assert_eq!(fp.n_texts, 1);
    }
}
