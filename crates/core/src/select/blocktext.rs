//! Token-to-element alignment for logical blocks.
//!
//! VS2-Select matches patterns over the *transcription* of a logical
//! block, but extractions must come back with bounding boxes. A
//! [`BlockText`] tokenises each word element separately, so every token
//! knows which atomic element produced it, and carries the full NLP
//! annotation of the block's text.

use crate::segment::LogicalBlock;
use vs2_docmodel::{BBox, Document, ElementRef};
use vs2_nlp::annotate::Annotated;
use vs2_nlp::chunk::chunk;
use vs2_nlp::ner::recognize;
use vs2_nlp::pos::tag;
use vs2_nlp::token::{tokenize, Token};

/// The annotated transcription of one logical block, with per-token
/// element provenance.
#[derive(Debug, Clone)]
pub struct BlockText {
    /// The block this text came from.
    pub bbox: BBox,
    /// Full NLP annotation (tokens, POS, phrases, NER).
    pub ann: Annotated,
    /// For each token, the element that produced it.
    pub elem_of: Vec<ElementRef>,
}

impl BlockText {
    /// Builds the aligned, annotated text of a block. Words are taken in
    /// reading order; each word may tokenise into several tokens (a
    /// trailing comma, say), all inheriting the word's element.
    pub fn build(doc: &Document, block: &LogicalBlock) -> Self {
        let order = doc.reading_order(&block.elements);
        let mut tokens: Vec<Token> = Vec::new();
        let mut elem_of: Vec<ElementRef> = Vec::new();
        for r in order {
            let Some(text) = doc.text_of(r) else { continue };
            for t in tokenize(text) {
                tokens.push(t);
                elem_of.push(r);
            }
        }
        let pos = tag(&tokens);
        let phrases = chunk(&tokens, &pos);
        let ner = recognize(&tokens, &pos);
        BlockText {
            bbox: block.bbox,
            ann: Annotated {
                tokens,
                pos,
                phrases,
                ner,
            },
            elem_of,
        }
    }

    /// Bounding box of the token span `[start, end)` — the union of the
    /// producing elements' boxes.
    pub fn span_bbox(&self, doc: &Document, start: usize, end: usize) -> BBox {
        let boxes: Vec<BBox> = self.elem_of[start..end.min(self.elem_of.len())]
            .iter()
            .map(|r| doc.bbox_of(*r))
            .collect();
        BBox::enclosing(boxes.iter()).unwrap_or(self.bbox)
    }

    /// Raw text of a token span.
    pub fn span_text(&self, start: usize, end: usize) -> String {
        self.ann.span_text(start, end)
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.ann.tokens.len()
    }

    /// `true` when the block transcribed to nothing.
    pub fn is_empty(&self) -> bool {
        self.ann.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::TextElement;

    fn block_with(words: &[(&str, f64)]) -> (Document, LogicalBlock) {
        let mut d = Document::new("bt", 300.0, 50.0);
        let mut elems = Vec::new();
        for (i, (w, x)) in words.iter().enumerate() {
            let _ = i;
            elems.push(d.push_text(TextElement::word(*w, BBox::new(*x, 10.0, 30.0, 10.0))));
        }
        let bbox = BBox::enclosing(
            elems
                .iter()
                .map(|r| d.bbox_of(*r))
                .collect::<Vec<_>>()
                .iter(),
        )
        .unwrap();
        (
            d,
            LogicalBlock {
                bbox,
                elements: elems,
            },
        )
    }

    #[test]
    fn tokens_align_to_elements() {
        let (d, b) = block_with(&[("Hosted", 10.0), ("by", 45.0), ("James,", 80.0)]);
        let bt = BlockText::build(&d, &b);
        // "James," splits into "James" + "," — 4 tokens from 3 elements.
        assert_eq!(bt.len(), 4);
        assert_eq!(bt.elem_of[2], bt.elem_of[3]);
        assert_ne!(bt.elem_of[0], bt.elem_of[2]);
    }

    #[test]
    fn span_bbox_covers_producing_words() {
        let (d, b) = block_with(&[("a", 10.0), ("b", 50.0), ("c", 90.0)]);
        let bt = BlockText::build(&d, &b);
        let bb = bt.span_bbox(&d, 1, 3);
        assert_eq!(bb.x, 50.0);
        assert_eq!(bb.right(), 120.0);
        // Full span equals the block bbox.
        assert_eq!(bt.span_bbox(&d, 0, 3), b.bbox);
    }

    #[test]
    fn annotation_is_present() {
        let (d, b) = block_with(&[
            ("Hosted", 10.0),
            ("by", 45.0),
            ("James", 80.0),
            ("Wilson", 115.0),
        ]);
        let bt = BlockText::build(&d, &b);
        assert!(bt.ann.ner.iter().any(|s| s.tag == vs2_nlp::NerTag::Person));
        assert!(!bt.is_empty());
    }

    #[test]
    fn empty_block() {
        let d = Document::new("e", 10.0, 10.0);
        let b = LogicalBlock {
            bbox: BBox::new(0.0, 0.0, 5.0, 5.0),
            elements: vec![],
        };
        let bt = BlockText::build(&d, &b);
        assert!(bt.is_empty());
        assert_eq!(bt.span_bbox(&d, 0, 0), b.bbox);
    }
}
