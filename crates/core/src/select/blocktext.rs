//! Token-to-element alignment for logical blocks.
//!
//! VS2-Select matches patterns over the *transcription* of a logical
//! block, but extractions must come back with bounding boxes. A
//! [`BlockText`] tokenises each word element separately, so every token
//! knows which atomic element produced it, and carries the full NLP
//! annotation of the block's text.

use std::sync::Arc;

use crate::context::{empty_arc, DocContext};
use crate::segment::LogicalBlock;
use vs2_docmodel::{BBox, Document, ElementRef, TokenId};
use vs2_nlp::annotate::Annotated;
use vs2_nlp::chunk::chunk;
use vs2_nlp::hypernym::{self, Sense};
use vs2_nlp::ner::recognize;
use vs2_nlp::pos::tag;
use vs2_nlp::stem::stem;
use vs2_nlp::stopwords::is_stopword;
use vs2_nlp::token::{tokenize, Token};
use vs2_nlp::verbs;
use vs2_nlp::{geocode, timex};

/// Bit in [`WindowRep::flags`]: a cardinal-number (CD) modifier.
pub const FLAG_CD: u8 = 1 << 0;
/// Bit in [`WindowRep::flags`]: an adjectival (JJ) modifier.
pub const FLAG_JJ: u8 = 1 << 1;
/// Bit in [`WindowRep::flags`]: the window normalises as TIMEX3.
pub const FLAG_TIMEX: u8 = 1 << 2;
/// Bit in [`WindowRep::flags`]: the window carries a valid geocode.
pub const FLAG_GEO: u8 = 1 << 3;

/// The bitmask feature summary of one candidate phrase window — the
/// precomputed form of `features_of_span` minus the lexical stems (stems
/// are tested against the per-token [`FeatureTable::stem`] column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowRep {
    /// First token index.
    pub start: usize,
    /// One past the last token.
    pub end: usize,
    /// CD / JJ / TIMEX / GEO bits (see the `FLAG_*` constants).
    pub flags: u8,
    /// NER-category bitset (bit index = `pattern::ner_code`).
    pub ner: u8,
    /// Hypernym-sense bitset (bit index = sense code; `Entity` omitted,
    /// mirroring `features_of_span`).
    pub sense: u16,
    /// VerbNet-lite sense bitset (bit index = verb-sense code).
    pub vsense: u8,
}

/// Per-block feature precomputation: everything `features_of_span`
/// recomputes per pattern call, hoisted to one pass in
/// [`BlockText::build`]. Per-token columns feed window aggregation; the
/// eager window table covers every window any pattern can consider
/// (shallow phrases, NER spans, the whole block), each with its TIMEX3 /
/// geocode validation already done.
#[derive(Debug, Clone, Default)]
pub struct FeatureTable {
    /// Per-token CD/JJ bits.
    pub flags: Vec<u8>,
    /// Per-token NER-category bitset (union of covering spans).
    pub ner: Vec<u8>,
    /// Per-token hypernym-sense bitset (nouns only, `Entity` omitted).
    pub sense: Vec<u16>,
    /// Per-token verb-sense bitset (verbs only).
    pub vsense: Vec<u8>,
    /// Per-token stem, or `""` when the token contributes no `Stem`
    /// feature (empty norm, stopword, numeric). Shared `Arc<str>`s: on
    /// the interned path the whole column is refcount bumps into the
    /// per-document stem table.
    pub stem: Vec<Arc<str>>,
    /// Interned token id per token, when built from a [`DocContext`]
    /// (`BlockText::build_in`); empty on the owned path.
    pub ids: Vec<TokenId>,
    /// Window reps aligned index-for-index with `ann.phrases`.
    pub phrase_windows: Vec<WindowRep>,
    /// Window reps aligned index-for-index with `ann.ner`.
    pub ner_windows: Vec<WindowRep>,
    /// The whole-block window `(0, len)`.
    pub block_window: WindowRep,
    /// Union of every window rep — the sound anchor prefilter: a
    /// feature absent here is absent from every candidate window.
    pub summary: WindowRep,
}

impl FeatureTable {
    fn build(ann: &Annotated) -> Self {
        let n = ann.tokens.len();
        let mut t = FeatureTable {
            flags: vec![0; n],
            ner: vec![0; n],
            sense: vec![0; n],
            vsense: vec![0; n],
            stem: Vec::with_capacity(n),
            ..FeatureTable::default()
        };
        for (i, tok) in ann.tokens.iter().enumerate() {
            let pos = ann.pos[i];
            match pos {
                vs2_nlp::PosTag::Cd => t.flags[i] |= FLAG_CD,
                vs2_nlp::PosTag::Jj => t.flags[i] |= FLAG_JJ,
                _ => {}
            }
            if pos.is_verb() {
                for v in verbs::senses_of(&tok.norm) {
                    t.vsense[i] |= 1 << crate::select::pattern::vsense_code(v);
                }
            } else if pos.is_noun() {
                let s = hypernym::sense_of(&tok.norm);
                if s != Sense::Entity {
                    t.sense[i] |= 1 << crate::select::pattern::sense_code(s);
                }
            }
            if !tok.norm.is_empty() && !is_stopword(&tok.norm) && !tok.is_numeric() {
                t.stem.push(Arc::from(stem(&tok.norm).as_str()));
            } else {
                t.stem.push(empty_arc());
            }
        }
        for span in &ann.ner {
            let code = crate::select::pattern::ner_code(span.tag);
            for i in span.start..span.end.min(n) {
                t.ner[i] |= 1 << code;
            }
        }
        t.phrase_windows = ann
            .phrases
            .iter()
            .map(|p| t.window_rep(ann, p.start, p.end))
            .collect();
        t.ner_windows = ann
            .ner
            .iter()
            .map(|s| t.window_rep(ann, s.start, s.end))
            .collect();
        t.block_window = t.window_rep(ann, 0, n);
        let mut summary = WindowRep::default();
        for w in t
            .phrase_windows
            .iter()
            .chain(t.ner_windows.iter())
            .chain(std::iter::once(&t.block_window))
        {
            summary.flags |= w.flags;
            summary.ner |= w.ner;
            summary.sense |= w.sense;
            summary.vsense |= w.vsense;
        }
        t.summary = summary;
        t
    }

    /// Builds the table from a [`DocContext`]'s interned columns: stems,
    /// noun senses and verb senses come from the per-distinct-token
    /// tables (computed once per document) instead of being re-derived
    /// per token instance. `ids[i]` is the interned id of `ann.tokens[i]`.
    /// Column-for-column byte-identical to [`FeatureTable::build`] —
    /// pinned by the interner proptest battery in `vs2-conformance`.
    fn build_interned(ann: &Annotated, ids: &[TokenId], ctx: &DocContext<'_>) -> Self {
        debug_assert_eq!(ann.tokens.len(), ids.len());
        let n = ann.tokens.len();
        let mut t = FeatureTable {
            flags: vec![0; n],
            ner: vec![0; n],
            sense: vec![0; n],
            vsense: vec![0; n],
            stem: Vec::with_capacity(n),
            ids: ids.to_vec(),
            ..FeatureTable::default()
        };
        for (i, id) in ids.iter().enumerate() {
            let pos = ann.pos[i];
            match pos {
                vs2_nlp::PosTag::Cd => t.flags[i] |= FLAG_CD,
                vs2_nlp::PosTag::Jj => t.flags[i] |= FLAG_JJ,
                _ => {}
            }
            if pos.is_verb() {
                t.vsense[i] |= ctx.vsense_mask(*id);
            } else if pos.is_noun() {
                t.sense[i] |= ctx.sense_mask(*id);
            }
            t.stem.push(ctx.stem_of(*id).clone());
        }
        for span in &ann.ner {
            let code = crate::select::pattern::ner_code(span.tag);
            for i in span.start..span.end.min(n) {
                t.ner[i] |= 1 << code;
            }
        }
        let mut scratch = String::new();
        t.phrase_windows = ann
            .phrases
            .iter()
            .map(|p| t.window_rep_into(ann, p.start, p.end, &mut scratch))
            .collect();
        t.ner_windows = ann
            .ner
            .iter()
            .map(|s| t.window_rep_into(ann, s.start, s.end, &mut scratch))
            .collect();
        t.block_window = t.window_rep_into(ann, 0, n, &mut scratch);
        let mut summary = WindowRep::default();
        for w in t
            .phrase_windows
            .iter()
            .chain(t.ner_windows.iter())
            .chain(std::iter::once(&t.block_window))
        {
            summary.flags |= w.flags;
            summary.ner |= w.ner;
            summary.sense |= w.sense;
            summary.vsense |= w.vsense;
        }
        t.summary = summary;
        t
    }

    /// [`FeatureTable::window_rep`] with a caller-owned span-text buffer,
    /// so table construction reuses one allocation across windows.
    fn window_rep_into(
        &self,
        ann: &Annotated,
        start: usize,
        end: usize,
        scratch: &mut String,
    ) -> WindowRep {
        let end = end.min(ann.tokens.len());
        let mut w = WindowRep {
            start,
            end,
            ..WindowRep::default()
        };
        for i in start..end {
            w.flags |= self.flags[i];
            w.ner |= self.ner[i];
            w.sense |= self.sense[i];
            w.vsense |= self.vsense[i];
        }
        ann.span_text_into(start, end, scratch);
        if timex::is_valid_timex(scratch) {
            w.flags |= FLAG_TIMEX;
        }
        if geocode::is_valid_geocode(scratch) {
            w.flags |= FLAG_GEO;
        }
        w
    }

    /// Aggregates the per-token columns over `[start, end)` and runs the
    /// window-level TIMEX3 / geocode validations — semantically identical
    /// to `features_of_span`, minus stems.
    pub fn window_rep(&self, ann: &Annotated, start: usize, end: usize) -> WindowRep {
        let end = end.min(ann.tokens.len());
        let mut w = WindowRep {
            start,
            end,
            ..WindowRep::default()
        };
        for i in start..end {
            w.flags |= self.flags[i];
            w.ner |= self.ner[i];
            w.sense |= self.sense[i];
            w.vsense |= self.vsense[i];
        }
        let text = ann.span_text(start, end);
        if timex::is_valid_timex(&text) {
            w.flags |= FLAG_TIMEX;
        }
        if geocode::is_valid_geocode(&text) {
            w.flags |= FLAG_GEO;
        }
        w
    }

    /// `true` when any token in `[start, end)` stems to `want`.
    pub fn span_has_stem(&self, start: usize, end: usize, want: &str) -> bool {
        self.stem[start..end.min(self.stem.len())]
            .iter()
            .any(|s| &**s == want)
    }

    /// `true` when any token of the block stems to `want`.
    pub fn block_has_stem(&self, want: &str) -> bool {
        self.span_has_stem(0, self.stem.len(), want)
    }
}

/// The annotated transcription of one logical block, with per-token
/// element provenance.
#[derive(Debug, Clone)]
pub struct BlockText {
    /// The block this text came from.
    pub bbox: BBox,
    /// Full NLP annotation (tokens, POS, phrases, NER).
    pub ann: Annotated,
    /// For each token, the element that produced it.
    pub elem_of: Vec<ElementRef>,
    /// Precomputed per-token/per-window feature tables (built once here,
    /// queried by every pattern of every entity).
    pub features: FeatureTable,
}

impl BlockText {
    /// Builds the aligned, annotated text of a block. Words are taken in
    /// reading order; each word may tokenise into several tokens (a
    /// trailing comma, say), all inheriting the word's element.
    pub fn build(doc: &Document, block: &LogicalBlock) -> Self {
        let order = doc.reading_order(&block.elements);
        let mut tokens: Vec<Token> = Vec::new();
        let mut elem_of: Vec<ElementRef> = Vec::new();
        for r in order {
            let Some(text) = doc.text_of(r) else { continue };
            for t in tokenize(text) {
                tokens.push(t);
                elem_of.push(r);
            }
        }
        let pos = tag(&tokens);
        let phrases = chunk(&tokens, &pos);
        let ner = recognize(&tokens, &pos);
        let ann = Annotated {
            tokens,
            pos,
            phrases,
            ner,
        };
        let features = FeatureTable::build(&ann);
        BlockText {
            bbox: block.bbox,
            ann,
            elem_of,
            features,
        }
    }

    /// Builds the aligned, annotated text of a block from a per-job
    /// [`DocContext`]: tokens come from the document's interned token
    /// view (tokenised once per job, cloned here by `Arc` refcount
    /// bumps) instead of re-tokenising every element's text per block —
    /// the double-tokenisation `BlockText::build` pays. Per-instance
    /// annotation (POS, chunking, NER) still runs per block because it
    /// is context-dependent; all string derivation is interned.
    /// Observationally identical to [`BlockText::build`].
    pub fn build_in(ctx: &DocContext<'_>, block: &LogicalBlock) -> Self {
        let doc = ctx.doc();
        let order = doc.reading_order(&block.elements);
        let count: usize = order
            .iter()
            .filter_map(|r| match r {
                ElementRef::Text(i) => Some(ctx.view.tokens_of_text(*i).len()),
                _ => None,
            })
            .sum();
        let mut tokens: Vec<Token> = Vec::with_capacity(count);
        let mut ids: Vec<TokenId> = Vec::with_capacity(count);
        let mut elem_of: Vec<ElementRef> = Vec::with_capacity(count);
        for r in order {
            let ElementRef::Text(i) = r else { continue };
            for id in ctx.view.tokens_of_text(i) {
                tokens.push(ctx.token(*id).clone());
                ids.push(*id);
                elem_of.push(r);
            }
        }
        let pos = tag(&tokens);
        let phrases = chunk(&tokens, &pos);
        let ner = recognize(&tokens, &pos);
        let ann = Annotated {
            tokens,
            pos,
            phrases,
            ner,
        };
        let features = FeatureTable::build_interned(&ann, &ids, ctx);
        BlockText {
            bbox: block.bbox,
            ann,
            elem_of,
            features,
        }
    }

    /// Bounding box of the token span `[start, end)` — the union of the
    /// producing elements' boxes.
    pub fn span_bbox(&self, doc: &Document, start: usize, end: usize) -> BBox {
        let mut it = self.elem_of[start..end.min(self.elem_of.len())]
            .iter()
            .map(|r| doc.bbox_of(*r));
        match it.next() {
            Some(first) => it.fold(first, |acc, b| acc.union(&b)),
            None => self.bbox,
        }
    }

    /// Raw text of a token span.
    pub fn span_text(&self, start: usize, end: usize) -> String {
        self.ann.span_text(start, end)
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.ann.tokens.len()
    }

    /// `true` when the block transcribed to nothing.
    pub fn is_empty(&self) -> bool {
        self.ann.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::TextElement;

    fn block_with(words: &[(&str, f64)]) -> (Document, LogicalBlock) {
        let mut d = Document::new("bt", 300.0, 50.0);
        let mut elems = Vec::new();
        for (i, (w, x)) in words.iter().enumerate() {
            let _ = i;
            elems.push(d.push_text(TextElement::word(*w, BBox::new(*x, 10.0, 30.0, 10.0))));
        }
        let bbox = BBox::enclosing(
            elems
                .iter()
                .map(|r| d.bbox_of(*r))
                .collect::<Vec<_>>()
                .iter(),
        )
        .unwrap();
        (
            d,
            LogicalBlock {
                bbox,
                elements: elems,
            },
        )
    }

    #[test]
    fn tokens_align_to_elements() {
        let (d, b) = block_with(&[("Hosted", 10.0), ("by", 45.0), ("James,", 80.0)]);
        let bt = BlockText::build(&d, &b);
        // "James," splits into "James" + "," — 4 tokens from 3 elements.
        assert_eq!(bt.len(), 4);
        assert_eq!(bt.elem_of[2], bt.elem_of[3]);
        assert_ne!(bt.elem_of[0], bt.elem_of[2]);
    }

    #[test]
    fn span_bbox_covers_producing_words() {
        let (d, b) = block_with(&[("a", 10.0), ("b", 50.0), ("c", 90.0)]);
        let bt = BlockText::build(&d, &b);
        let bb = bt.span_bbox(&d, 1, 3);
        assert_eq!(bb.x, 50.0);
        assert_eq!(bb.right(), 120.0);
        // Full span equals the block bbox.
        assert_eq!(bt.span_bbox(&d, 0, 3), b.bbox);
    }

    #[test]
    fn annotation_is_present() {
        let (d, b) = block_with(&[
            ("Hosted", 10.0),
            ("by", 45.0),
            ("James", 80.0),
            ("Wilson", 115.0),
        ]);
        let bt = BlockText::build(&d, &b);
        assert!(bt.ann.ner.iter().any(|s| s.tag == vs2_nlp::NerTag::Person));
        assert!(!bt.is_empty());
    }

    #[test]
    fn empty_block() {
        let d = Document::new("e", 10.0, 10.0);
        let b = LogicalBlock {
            bbox: BBox::new(0.0, 0.0, 5.0, 5.0),
            elements: vec![],
        };
        let bt = BlockText::build(&d, &b);
        assert!(bt.is_empty());
        assert_eq!(bt.span_bbox(&d, 0, 0), b.bbox);
    }
}
