//! The lexico-syntactic pattern language of VS2-Select (Tables 3 and 4).
//!
//! A pattern constrains a phrase window: its phrase kind (noun phrase,
//! verb phrase, SVO) and a conjunction of *features* that must hold
//! within the window — POS modifiers (`CD`/`JJ`), NER categories, TIMEX3
//! validity, geocode validity, hypernym senses, VerbNet senses, lexical
//! stems, and regex-like surface classes (phone, e-mail). Patterns are
//! either compiled from mined frequent subtrees (distant supervision,
//! §5.2.1) or written directly (the Table 3/4 inventories); an exact
//! phrase form covers D1's field-descriptor matching.

use crate::select::blocktext::BlockText;
use std::collections::BTreeSet;
use vs2_nlp::chunk::PhraseKind;
use vs2_nlp::hypernym::{self, Sense};
use vs2_nlp::ner::NerTag;
use vs2_nlp::stem::stem;
use vs2_nlp::stopwords::is_stopword;
use vs2_nlp::verbs::{self, VerbSense};
use vs2_nlp::{geocode, timex};

/// A single feature requirement inside a phrase window.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Feature {
    /// A cardinal-number modifier.
    Cd,
    /// An adjectival modifier.
    Jj,
    /// The window normalises as a TIMEX3 expression.
    Timex,
    /// The window carries a valid geocode tag.
    Geo,
    /// A named entity of the given category (ordered by its label).
    Ner(u8),
    /// A noun with the given hypernym sense.
    Sense(u8),
    /// A verb with the given VerbNet-lite sense.
    VSense(u8),
    /// A content word with the given stem.
    Stem(String),
}

impl Feature {
    /// Feature for an NER category.
    pub fn ner(tag: NerTag) -> Self {
        Feature::Ner(ner_code(tag))
    }

    /// Feature for a hypernym sense.
    pub fn sense(s: Sense) -> Self {
        Feature::Sense(sense_code(s))
    }

    /// Feature for a verb sense.
    pub fn vsense(v: VerbSense) -> Self {
        Feature::VSense(vsense_code(v))
    }

    /// Parses a dependency-tree leaf label (`CD`, `NER:person`, …).
    pub fn from_label(label: &str) -> Option<Feature> {
        match label {
            "CD" => Some(Feature::Cd),
            "JJ" => Some(Feature::Jj),
            "TIMEX" => Some(Feature::Timex),
            "GEO" => Some(Feature::Geo),
            _ => {
                if let Some(n) = label.strip_prefix("NER:") {
                    ner_from_str(n).map(Feature::ner)
                } else if let Some(s) = label.strip_prefix("SENSE:") {
                    sense_from_str(s).map(Feature::sense)
                } else if let Some(v) = label.strip_prefix("VSENSE:") {
                    vsense_from_str(v).map(Feature::vsense)
                } else {
                    label
                        .strip_prefix("STEM:")
                        .map(|s| Feature::Stem(s.to_string()))
                }
            }
        }
    }
}

pub(crate) fn ner_code(tag: NerTag) -> u8 {
    match tag {
        NerTag::Person => 0,
        NerTag::Organization => 1,
        NerTag::Location => 2,
        NerTag::Date => 3,
        NerTag::Time => 4,
        NerTag::Money => 5,
        NerTag::Email => 6,
        NerTag::Phone => 7,
    }
}

fn ner_from_str(s: &str) -> Option<NerTag> {
    Some(match s {
        "person" => NerTag::Person,
        "org" => NerTag::Organization,
        "location" => NerTag::Location,
        "date" => NerTag::Date,
        "time" => NerTag::Time,
        "money" => NerTag::Money,
        "email" => NerTag::Email,
        "phone" => NerTag::Phone,
        _ => return None,
    })
}

pub(crate) fn sense_code(s: Sense) -> u8 {
    match s {
        Sense::Measure => 0,
        Sense::Structure => 1,
        Sense::Estate => 2,
        Sense::Event => 3,
        Sense::Person => 4,
        Sense::Group => 5,
        Sense::Location => 6,
        Sense::TimeEntity => 7,
        Sense::Money => 8,
        Sense::Communication => 9,
        Sense::Entity => 10,
    }
}

fn sense_from_str(s: &str) -> Option<Sense> {
    Some(match s {
        "measure" => Sense::Measure,
        "structure" => Sense::Structure,
        "estate" => Sense::Estate,
        "event" => Sense::Event,
        "person" => Sense::Person,
        "group" => Sense::Group,
        "location" => Sense::Location,
        "time" => Sense::TimeEntity,
        "money" => Sense::Money,
        "communication" => Sense::Communication,
        "entity" => Sense::Entity,
        _ => return None,
    })
}

pub(crate) fn vsense_code(v: VerbSense) -> u8 {
    match v {
        VerbSense::Captain => 0,
        VerbSense::Create => 1,
        VerbSense::ReflexiveAppearance => 2,
        VerbSense::Transfer => 3,
        VerbSense::Communicate => 4,
        VerbSense::Motion => 5,
    }
}

fn vsense_from_str(s: &str) -> Option<VerbSense> {
    Some(match s {
        "captain" => VerbSense::Captain,
        "create" => VerbSense::Create,
        "reflexive_appearance" => VerbSense::ReflexiveAppearance,
        "transfer" => VerbSense::Transfer,
        "communicate" => VerbSense::Communicate,
        "motion" => VerbSense::Motion,
        _ => return None,
    })
}

/// A compiled syntactic pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum SyntacticPattern {
    /// Exact (normalised) phrase match — D1's field descriptors.
    ExactPhrase(String),
    /// A phrase window of the given kind containing all required features.
    Window {
        /// Required phrase kind; `None` matches any NER span or the whole
        /// block when it is short.
        kind: Option<PhraseKind>,
        /// Conjunction of required features.
        required: Vec<Feature>,
    },
}

/// A pattern match: a token span within a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternMatch {
    /// First token index.
    pub start: usize,
    /// One past the last token.
    pub end: usize,
}

/// Computes the feature set of a token window (mirrors the leaf labels of
/// `vs2-nlp::deptree`).
pub fn features_of_span(bt: &BlockText, start: usize, end: usize) -> BTreeSet<Feature> {
    let ann = &bt.ann;
    let end = end.min(ann.tokens.len());
    let mut set = BTreeSet::new();
    let text = ann.span_text(start, end);
    if timex::is_valid_timex(&text) {
        set.insert(Feature::Timex);
    }
    if geocode::is_valid_geocode(&text) {
        set.insert(Feature::Geo);
    }
    for span in &ann.ner {
        // Intersection, not containment: a span may begin on punctuation
        // the phrase window excludes (the "(" of a phone number).
        if span.start < end && span.end > start {
            set.insert(Feature::ner(span.tag));
        }
    }
    for i in start..end {
        let tok = &ann.tokens[i];
        let pos = ann.pos[i];
        match pos {
            vs2_nlp::PosTag::Cd => {
                set.insert(Feature::Cd);
            }
            vs2_nlp::PosTag::Jj => {
                set.insert(Feature::Jj);
            }
            _ => {}
        }
        if pos.is_verb() {
            for v in verbs::senses_of(&tok.norm) {
                set.insert(Feature::vsense(v));
            }
        } else if pos.is_noun() {
            let s = hypernym::sense_of(&tok.norm);
            if s != Sense::Entity {
                set.insert(Feature::sense(s));
            }
        }
        if !tok.norm.is_empty() && !is_stopword(&tok.norm) && !tok.is_numeric() {
            set.insert(Feature::Stem(stem(&tok.norm)));
        }
    }
    set
}

impl SyntacticPattern {
    /// All matches of the pattern within a block.
    pub fn matches(&self, bt: &BlockText) -> Vec<PatternMatch> {
        match self {
            SyntacticPattern::ExactPhrase(phrase) => exact_matches(bt, phrase),
            SyntacticPattern::Window { kind, required } => {
                let mut out = Vec::new();
                let windows: Vec<(usize, usize)> = match kind {
                    Some(k) => bt
                        .ann
                        .phrases
                        .iter()
                        .filter(|p| p.kind == *k)
                        .map(|p| (p.start, p.end))
                        .collect(),
                    None => {
                        // NER spans plus the whole block as fallback windows.
                        let mut w: Vec<(usize, usize)> =
                            bt.ann.ner.iter().map(|s| (s.start, s.end)).collect();
                        w.push((0, bt.len()));
                        w
                    }
                };
                for (s, e) in windows {
                    if e <= s {
                        continue;
                    }
                    let have = features_of_span(bt, s, e);
                    if required.iter().all(|f| have.contains(f)) {
                        // Regex-class entities (phone, e-mail — Table 4's
                        // "regular expression" patterns) return the NER
                        // span itself; other windows extend over any NER
                        // span they clip (the chunker may exclude the "("
                        // of a phone number).
                        let contact: Vec<NerTag> = required
                            .iter()
                            .filter_map(|f| match f {
                                Feature::Ner(c) => match c {
                                    6 => Some(NerTag::Email),
                                    7 => Some(NerTag::Phone),
                                    _ => None,
                                },
                                _ => None,
                            })
                            .collect();
                        if !contact.is_empty() {
                            let mut found = false;
                            for span in &bt.ann.ner {
                                if contact.contains(&span.tag) && span.start < e && span.end > s {
                                    out.push(PatternMatch {
                                        start: span.start,
                                        end: span.end,
                                    });
                                    found = true;
                                }
                            }
                            if found {
                                continue;
                            }
                        }
                        let required_ner: Vec<u8> = required
                            .iter()
                            .filter_map(|f| match f {
                                Feature::Ner(c) => Some(*c),
                                _ => None,
                            })
                            .collect();
                        let (mut s2, mut e2) = (s, e);
                        for span in &bt.ann.ner {
                            let intersects = span.start < e2 && span.end > s2;
                            // A span of a *required* category anywhere in
                            // the block joins the match ("December 1" plus
                            // its "8:30 pm" two phrases later).
                            let required_tag = required_ner.contains(&ner_code(span.tag));
                            if intersects || required_tag {
                                s2 = s2.min(span.start);
                                e2 = e2.max(span.end);
                            }
                        }
                        out.push(PatternMatch { start: s2, end: e2 });
                    }
                }
                dedup_matches(&mut out);
                out
            }
        }
    }
}

/// Canonicalises a match list: sorted by `(start, end)`, duplicates
/// removed. Every matcher (the window evaluator, the naive subsequence
/// scanner and the trie scanner in `select::index`) funnels its output
/// through here, so span dedup lives in exactly one place. Duplicate
/// spans arise naturally — a phone-NER span intersecting both its own
/// NER window and the whole-block window is pushed once per window, and
/// a phrase whose first token repeats inside the match window can be
/// reached by more than one scan anchor.
pub(crate) fn dedup_matches(out: &mut Vec<PatternMatch>) {
    out.sort_by_key(|m| (m.start, m.end));
    out.dedup();
}

/// Token-subsequence search for a normalised phrase.
fn exact_matches(bt: &BlockText, phrase: &str) -> Vec<PatternMatch> {
    let needle: Vec<String> = phrase
        .split_whitespace()
        .map(|w| w.to_lowercase())
        .collect();
    if needle.is_empty() {
        return Vec::new();
    }
    let norms: Vec<&str> = bt.ann.tokens.iter().map(|t| &*t.norm).collect();
    let word_matches = |have: &str, want: &str| -> bool {
        have == want || (want.len() >= 4 && vs2_nlp::lexicon::within_edit_one(have, want))
    };
    // Greedy aligner tolerating OCR word merges and splits: a block token
    // may equal the concatenation of two consecutive needle words, and a
    // needle word may have been split across two consecutive block tokens.
    let align_at = |start: usize| -> Option<usize> {
        let mut i = start;
        let mut j = 0;
        while j < needle.len() {
            if i >= norms.len() {
                return None;
            }
            if word_matches(norms[i], &needle[j]) {
                i += 1;
                j += 1;
                continue;
            }
            if j + 1 < needle.len() {
                let merged = format!("{}{}", needle[j], needle[j + 1]);
                if word_matches(norms[i], &merged) {
                    i += 1;
                    j += 2;
                    continue;
                }
            }
            if i + 1 < norms.len() {
                let rejoined = format!("{}{}", norms[i], norms[i + 1]);
                if word_matches(&rejoined, &needle[j]) {
                    i += 2;
                    j += 1;
                    continue;
                }
            }
            return None;
        }
        Some(i)
    };
    let mut out = Vec::new();
    for i in 0..norms.len() {
        if let Some(end) = align_at(i) {
            out.push(PatternMatch { start: i, end });
        }
    }
    // One scan start yields at most one span today, but the canonical
    // sorted/unique form is part of the matcher contract (pinned by the
    // dedup regression tests) — enforce it here, not in every caller.
    dedup_matches(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::LogicalBlock;
    use vs2_docmodel::{BBox, Document, TextElement};

    fn bt(text: &str) -> (Document, BlockText) {
        let mut d = Document::new("p", 500.0, 50.0);
        let mut elems = Vec::new();
        for (i, w) in text.split_whitespace().enumerate() {
            elems.push(d.push_text(TextElement::word(
                w,
                BBox::new(10.0 + 40.0 * i as f64, 10.0, 35.0, 10.0),
            )));
        }
        let block = LogicalBlock {
            bbox: BBox::new(
                10.0,
                10.0,
                40.0 * text.split_whitespace().count() as f64,
                10.0,
            ),
            elements: elems,
        };
        let bt = BlockText::build(&d, &block);
        (d, bt)
    }

    #[test]
    fn exact_phrase_matching() {
        let (_, b) = bt("Total wages income amount due");
        let p = SyntacticPattern::ExactPhrase("wages income".into());
        let ms = p.matches(&b);
        assert_eq!(ms, vec![PatternMatch { start: 1, end: 3 }]);
        // Case-insensitive.
        let p = SyntacticPattern::ExactPhrase("TOTAL WAGES".into());
        assert_eq!(p.matches(&b).len(), 1);
        // Absent phrase.
        let p = SyntacticPattern::ExactPhrase("refund owed".into());
        assert!(p.matches(&b).is_empty());
    }

    #[test]
    fn organizer_window() {
        let (_, b) = bt("Hosted by James Wilson tonight");
        let p = SyntacticPattern::Window {
            kind: None,
            required: vec![
                Feature::vsense(VerbSense::Captain),
                Feature::ner(NerTag::Person),
            ],
        };
        let ms = p.matches(&b);
        assert!(!ms.is_empty());
    }

    #[test]
    fn np_with_cd_modifier() {
        let (_, b) = bt("4 beds 2 baths");
        let p = SyntacticPattern::Window {
            kind: Some(PhraseKind::Np),
            required: vec![Feature::Cd, Feature::sense(Sense::Measure)],
        };
        assert!(!p.matches(&b).is_empty());
        // A plain NP without numbers must not match.
        let (_, b2) = bt("spacious warehouse available");
        assert!(p.matches(&b2).is_empty());
    }

    #[test]
    fn timex_and_geo_windows() {
        let (_, b) = bt("Saturday April 5 7 pm");
        let p = SyntacticPattern::Window {
            kind: None,
            required: vec![Feature::Timex],
        };
        assert!(!p.matches(&b).is_empty());

        let (_, b) = bt("1458 Maple Ave Columbus OH 43210");
        let p = SyntacticPattern::Window {
            kind: None,
            required: vec![Feature::Geo],
        };
        assert!(!p.matches(&b).is_empty());
    }

    #[test]
    fn phone_and_email_features() {
        let (_, b) = bt("call ( 614 ) 555-0175 or mary.davis@example.com");
        let phone = SyntacticPattern::Window {
            kind: None,
            required: vec![Feature::ner(NerTag::Phone)],
        };
        assert!(!phone.matches(&b).is_empty());
        let email = SyntacticPattern::Window {
            kind: None,
            required: vec![Feature::ner(NerTag::Email)],
        };
        assert!(!email.matches(&b).is_empty());
    }

    #[test]
    fn stem_requirement() {
        let (_, b) = bt("spacious warehouse with parking");
        let p = SyntacticPattern::Window {
            kind: Some(PhraseKind::Np),
            required: vec![Feature::Stem(stem("warehouses"))],
        };
        assert!(!p.matches(&b).is_empty());
    }

    #[test]
    fn feature_label_roundtrip() {
        for label in [
            "CD",
            "JJ",
            "TIMEX",
            "GEO",
            "NER:person",
            "NER:phone",
            "SENSE:measure",
            "VSENSE:captain",
            "STEM:host",
        ] {
            assert!(Feature::from_label(label).is_some(), "{label}");
        }
        assert!(Feature::from_label("NER:unknown").is_none());
        assert!(Feature::from_label("NP").is_none());
    }

    #[test]
    fn features_of_span_is_window_scoped() {
        let (_, b) = bt("free concert 1458 Maple Ave Columbus");
        let left = features_of_span(&b, 0, 2);
        let right = features_of_span(&b, 2, 6);
        assert!(left.contains(&Feature::Jj) || left.contains(&Feature::sense(Sense::Event)));
        assert!(!left.contains(&Feature::Geo));
        assert!(right.contains(&Feature::Geo));
    }
}
