//! VS2-Select: distantly supervised search-and-select extraction (§5.2,
//! §5.3 of the paper).
//!
//! [`blocktext`] aligns block transcriptions with their source elements
//! and precomputes per-block feature tables; [`pattern`] implements the
//! lexico-syntactic pattern language of Tables 3 and 4; [`index`] compiles
//! an entity inventory into the [`PatternIndex`] fast-path matcher (shared
//! phrase trie + anchor-grouped windows); [`naive`] keeps the original
//! triple-loop matcher as the executable reference spec; [`learn`] mines
//! patterns from a holdout corpus (distant supervision); [`interest`]
//! selects the interest points by non-dominated sorting; [`disambiguate`]
//! ranks conflicting matches with the multimodal distance of Eq. 2.

pub mod blocktext;
pub mod disambiguate;
pub mod index;
pub mod interest;
pub mod learn;
pub mod learn_weights;
pub mod naive;
pub mod pattern;
pub mod tables;

pub use blocktext::{BlockText, FeatureTable, WindowRep};
pub use disambiguate::{distance_to_nearest, eq2_distance, AreaEncoding, Eq2Weights, PageScale};
pub use index::{BlockBest, PatternIndex, ScanScratch};
pub use interest::{dominates, interest_points, objectives, Objectives};
pub use learn::{learn_patterns, LearnConfig};
pub use learn_weights::{learn_weights, weight_grid, WeightSearchConfig};
pub use pattern::{features_of_span, Feature, PatternMatch, SyntacticPattern};
pub use tables::{table3, table4};
