//! Multimodal entity disambiguation (§5.3.2, Eq. 2).
//!
//! When several candidates match an entity's patterns, each candidate is
//! encoded with visual and textual descriptors and ranked by its distance
//! to the *closest interest point* in the multimodal space:
//!
//! ```text
//! F(s, c) = α·ΔD(s, c) + β·ΔH(s, c) + γ·ΔSim(s, c) + ν·ΔWd(s, c)
//! ```
//!
//! where ΔD is the L1 distance between centroids, ΔH the height
//! difference, ΔSim the embedding dissimilarity of the texts, and ΔWd the
//! difference of distance-normalised word densities. All terms are
//! normalised to `[0, 1]`; the candidate with the minimal F against its
//! nearest interest point wins.

use vs2_docmodel::BBox;
use vs2_nlp::embedding::{cosine, Vector};

/// The Eq. 2 mixing weights. `α + β + γ + ν = 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eq2Weights {
    /// Weight of centroid distance ΔD.
    pub alpha: f64,
    /// Weight of height difference ΔH.
    pub beta: f64,
    /// Weight of textual dissimilarity ΔSim.
    pub gamma: f64,
    /// Weight of word-density difference ΔWd.
    pub nu: f64,
}

impl Eq2Weights {
    /// Balanced weights — "for a balanced corpus (e.g. first and third
    /// datasets), it is safe to assume α ≈ β ≈ ν ≈ γ" (§5.3.2).
    pub fn balanced() -> Self {
        Self {
            alpha: 0.25,
            beta: 0.25,
            gamma: 0.25,
            nu: 0.25,
        }
    }

    /// Visual-heavy weights for ornate, non-verbose corpora (dataset D2):
    /// "if the documents are not verbose but visually ornate, then
    /// α, β, ν ≥ γ".
    pub fn visual_heavy() -> Self {
        Self {
            alpha: 0.3,
            beta: 0.3,
            gamma: 0.1,
            nu: 0.3,
        }
    }

    /// Text-heavy weights for verbose, visually plain corpora:
    /// "if the corpus is not visually rich but verbose, then γ ≥ α, β, ν".
    pub fn text_heavy() -> Self {
        Self {
            alpha: 0.15,
            beta: 0.15,
            gamma: 0.55,
            nu: 0.15,
        }
    }

    /// `true` when the weights form a convex combination.
    pub fn is_valid(&self) -> bool {
        let sum = self.alpha + self.beta + self.gamma + self.nu;
        (sum - 1.0).abs() < 1e-9
            && [self.alpha, self.beta, self.gamma, self.nu]
                .iter()
                .all(|w| (0.0..=1.0).contains(w))
    }
}

/// The multimodal encoding of a visual area (candidate or interest
/// point): geometry plus text embedding plus word density.
#[derive(Debug, Clone)]
pub struct AreaEncoding {
    /// Bounding box of the area.
    pub bbox: BBox,
    /// Embedding of the area's text.
    pub embedding: Vector,
    /// Average word density of the area.
    pub density: f64,
}

/// Page-scale normalisers for Eq. 2.
#[derive(Debug, Clone, Copy)]
pub struct PageScale {
    /// Page width.
    pub width: f64,
    /// Page height.
    pub height: f64,
}

/// Eq. 2: the weighted multimodal distance between a candidate area `s`
/// and an interest point `c`.
pub fn eq2_distance(s: &AreaEncoding, c: &AreaEncoding, w: &Eq2Weights, page: &PageScale) -> f64 {
    let diag = (page.width + page.height).max(1e-9);
    let dd = s.bbox.centroid().l1_distance(&c.bbox.centroid()) / diag;
    let dh = (s.bbox.h - c.bbox.h).abs() / (s.bbox.h.max(c.bbox.h).max(1e-9));
    let dsim = 1.0 - cosine(&s.embedding, &c.embedding).clamp(-1.0, 1.0);
    let dwd = (s.density - c.density).abs() / s.density.max(c.density).max(1e-9);
    w.alpha * dd + w.beta * dh + w.gamma * (dsim / 2.0) + w.nu * dwd
}

/// Distance from a candidate to its *closest* interest point — the value
/// VS2-Select minimises over candidates.
pub fn distance_to_nearest(
    s: &AreaEncoding,
    interest: &[AreaEncoding],
    w: &Eq2Weights,
    page: &PageScale,
) -> f64 {
    interest
        .iter()
        .map(|c| eq2_distance(s, c, w, page))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_nlp::embedding::{Embedder, LexiconEmbedding};

    fn enc(x: f64, y: f64, h: f64, words: &[&str], density: f64) -> AreaEncoding {
        AreaEncoding {
            bbox: BBox::new(x, y, 100.0, h),
            embedding: LexiconEmbedding.embed_text(words.iter().copied()),
            density,
        }
    }

    const PAGE: PageScale = PageScale {
        width: 612.0,
        height: 792.0,
    };

    #[test]
    fn weights_presets_are_valid() {
        assert!(Eq2Weights::balanced().is_valid());
        assert!(Eq2Weights::visual_heavy().is_valid());
        assert!(Eq2Weights::text_heavy().is_valid());
        assert!(!Eq2Weights {
            alpha: 0.5,
            beta: 0.5,
            gamma: 0.5,
            nu: 0.5
        }
        .is_valid());
    }

    #[test]
    fn identical_areas_have_zero_distance() {
        let a = enc(10.0, 10.0, 20.0, &["concert"], 1.0);
        let d = eq2_distance(&a, &a, &Eq2Weights::balanced(), &PAGE);
        assert!(d.abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn proximity_dominates_under_alpha() {
        let w = Eq2Weights {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            nu: 0.0,
        };
        let ip = enc(100.0, 100.0, 20.0, &["concert"], 1.0);
        let near = enc(120.0, 110.0, 20.0, &["acres"], 5.0);
        let far = enc(500.0, 700.0, 20.0, &["concert"], 1.0);
        assert!(eq2_distance(&near, &ip, &w, &PAGE) < eq2_distance(&far, &ip, &w, &PAGE));
    }

    #[test]
    fn similarity_dominates_under_gamma() {
        let w = Eq2Weights {
            alpha: 0.0,
            beta: 0.0,
            gamma: 1.0,
            nu: 0.0,
        };
        let ip = enc(100.0, 100.0, 20.0, &["concert", "festival"], 1.0);
        let similar = enc(500.0, 700.0, 20.0, &["workshop"], 1.0);
        let dissimilar = enc(120.0, 110.0, 20.0, &["acres"], 1.0);
        assert!(eq2_distance(&similar, &ip, &w, &PAGE) < eq2_distance(&dissimilar, &ip, &w, &PAGE));
    }

    #[test]
    fn nearest_interest_point_is_used() {
        let w = Eq2Weights::balanced();
        let cand = enc(100.0, 100.0, 20.0, &["concert"], 1.0);
        let near_ip = enc(110.0, 105.0, 20.0, &["concert"], 1.0);
        let far_ip = enc(500.0, 700.0, 40.0, &["acres"], 9.0);
        let d = distance_to_nearest(&cand, &[far_ip.clone(), near_ip.clone()], &w, &PAGE);
        assert!((d - eq2_distance(&cand, &near_ip, &w, &PAGE)).abs() < 1e-12);
        assert!(d < eq2_distance(&cand, &far_ip, &w, &PAGE));
    }

    #[test]
    fn empty_interest_set_gives_infinity() {
        let cand = enc(0.0, 0.0, 10.0, &["x"], 1.0);
        assert!(distance_to_nearest(&cand, &[], &Eq2Weights::balanced(), &PAGE).is_infinite());
    }

    #[test]
    fn all_terms_bounded() {
        let a = enc(0.0, 0.0, 5.0, &["concert"], 0.1);
        let b = enc(612.0, 792.0, 500.0, &["acres"], 99.0);
        let d = eq2_distance(&a, &b, &Eq2Weights::balanced(), &PAGE);
        assert!(d <= 1.0 + 1e-9, "d = {d}");
        assert!(d > 0.0);
    }
}
