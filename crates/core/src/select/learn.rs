//! Distant-supervision pattern learning (§5.2.1).
//!
//! For every named entity, the annotated text entries of the holdout
//! corpus are NLP-annotated, turned into dependency-lite trees, and the
//! **maximal frequent subtrees** across those trees are mined with the
//! TreeMiner stand-in. Each mined tree compiles into a
//! [`SyntacticPattern`]: its phrase nodes become window constraints whose
//! required features are the mined leaf labels. Entities with a single
//! corpus entry (D1's field descriptors) compile to exact-phrase
//! patterns, as the paper does for D1.

use crate::select::pattern::{Feature, SyntacticPattern};
use std::collections::BTreeMap;
use vs2_nlp::annotate::annotate;
use vs2_nlp::chunk::PhraseKind;
use vs2_nlp::deptree::{build_tree, DepNode};
use vs2_treemine::{closed_with_tolerance, mine, MineConfig, Tree};

/// Learning knobs.
#[derive(Debug, Clone, Copy)]
pub struct LearnConfig {
    /// Minimum support as a fraction of an entity's corpus entries.
    pub min_support_frac: f64,
    /// Maximum mined-pattern size in tree nodes.
    pub max_tree_size: usize,
    /// Maximum number of compiled patterns kept per entity.
    pub max_patterns: usize,
}

impl Default for LearnConfig {
    fn default() -> Self {
        Self {
            min_support_frac: 0.3,
            max_tree_size: 5,
            max_patterns: 10,
        }
    }
}

fn dep_to_tree(d: &DepNode) -> Tree {
    Tree {
        label: d.label.clone(),
        children: d.children.iter().map(dep_to_tree).collect(),
    }
}

fn phrase_kind_of(label: &str) -> Option<PhraseKind> {
    match label {
        "NP" => Some(PhraseKind::Np),
        "VP" => Some(PhraseKind::Vp),
        "SVO" => Some(PhraseKind::Svo),
        _ => None,
    }
}

/// Compiles one mined tree into window patterns — one per phrase child of
/// the sentence root. Feature-free noun windows are dropped (they would
/// match any noun phrase).
fn compile(tree: &Tree) -> Vec<SyntacticPattern> {
    let phrase_nodes: Vec<&Tree> = if tree.label == "S" {
        tree.children.iter().collect()
    } else {
        vec![tree]
    };
    let mut out = Vec::new();
    for p in phrase_nodes {
        let Some(kind) = phrase_kind_of(&p.label) else {
            continue;
        };
        let mut required: Vec<Feature> = p
            .children
            .iter()
            .filter_map(|c| Feature::from_label(&c.label))
            .collect();
        required.sort();
        required.dedup();
        let informative = !required.is_empty() || matches!(kind, PhraseKind::Svo | PhraseKind::Vp);
        if informative {
            out.push(SyntacticPattern::Window {
                kind: Some(kind),
                required,
            });
        }
    }
    out
}

/// Ranks compiled patterns: higher corpus support first, then fewer
/// lexical stem anchors and more semantic features (they generalise
/// better to unseen documents).
fn pattern_rank(p: &SyntacticPattern, support: usize) -> (i64, i64, i64) {
    match p {
        SyntacticPattern::ExactPhrase(_) => (i64::MIN, 0, 0),
        SyntacticPattern::Window { required, .. } => {
            let stems = required
                .iter()
                .filter(|f| matches!(f, Feature::Stem(_)))
                .count() as i64;
            let semantic = required.len() as i64 - stems;
            (-(support as i64), stems, -semantic)
        }
    }
}

/// Learns the per-entity pattern inventory from `(entity, text)` pairs.
pub fn learn_patterns<'a, I>(
    entries: I,
    config: &LearnConfig,
) -> BTreeMap<String, Vec<SyntacticPattern>>
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut by_entity: BTreeMap<String, Vec<&'a str>> = BTreeMap::new();
    for (entity, text) in entries {
        by_entity.entry(entity.to_string()).or_default().push(text);
    }

    let mut out = BTreeMap::new();
    for (entity, texts) in by_entity {
        if texts.len() == 1 {
            // D1 mode: exact string match against the field descriptor.
            out.insert(
                entity,
                vec![SyntacticPattern::ExactPhrase(texts[0].to_lowercase())],
            );
            continue;
        }
        let trees: Vec<Tree> = texts
            .iter()
            .map(|t| dep_to_tree(&build_tree(&annotate(t))))
            .collect();
        let min_support = ((texts.len() as f64 * config.min_support_frac).ceil() as usize).max(2);
        let mined = mine(
            &trees,
            MineConfig {
                min_support,
                max_size: config.max_tree_size,
                min_size: 1,
            },
        );
        // Tolerantly-closed patterns: a general pattern survives only when
        // its specialisations lose real support (< 85%) — otherwise the
        // specialisation is the rule and the generic form only adds false
        // matches (e.g. a bare NP(CD) next to NP(CD, NER:phone)).
        let closed_patterns = closed_with_tolerance(&mined, 0.85);

        // Compile windows, keeping each window's best supporting tree.
        let mut windows: Vec<(SyntacticPattern, usize)> = Vec::new();
        for p in &closed_patterns {
            for w in compile(&p.tree) {
                match windows.iter_mut().find(|(existing, _)| *existing == w) {
                    Some((_, s)) => *s = (*s).max(p.support),
                    None => windows.push((w, p.support)),
                }
            }
        }
        // Window-level subset filtering with the same support tolerance:
        // a window whose requirements are a subset of a stronger window's
        // (same kind, ≥ 85% of its support) is redundant — the closed-tree
        // filter cannot see windows that re-emerge from separate phrase
        // children of one large tree.
        let is_subset = |a: &SyntacticPattern, b: &SyntacticPattern| -> bool {
            match (a, b) {
                (
                    SyntacticPattern::Window {
                        kind: ka,
                        required: ra,
                    },
                    SyntacticPattern::Window {
                        kind: kb,
                        required: rb,
                    },
                ) => ka == kb && ra.len() < rb.len() && ra.iter().all(|f| rb.contains(f)),
                _ => false,
            }
        };
        let kept: Vec<(SyntacticPattern, usize)> = windows
            .iter()
            .filter(|(w, s)| {
                !windows
                    .iter()
                    .any(|(other, os)| is_subset(w, other) && (*os as f64) >= 0.85 * *s as f64)
            })
            .cloned()
            .collect();

        let mut kept = kept;
        kept.sort_by(|(a, sa), (b, sb)| {
            pattern_rank(a, *sa)
                .cmp(&pattern_rank(b, *sb))
                .then_with(|| format!("{a:?}").cmp(&format!("{b:?}")))
        });
        let mut compiled: Vec<SyntacticPattern> = kept.into_iter().map(|(w, _)| w).collect();
        compiled.dedup();
        compiled.truncate(config.max_patterns);
        out.insert(entity, compiled);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_nlp::ner::NerTag;

    #[test]
    fn single_entry_entities_become_exact_phrases() {
        let patterns = learn_patterns(
            [
                ("field_a", "Total wages amount"),
                ("field_b", "Refund owed"),
            ],
            &LearnConfig::default(),
        );
        assert_eq!(
            patterns["field_a"],
            vec![SyntacticPattern::ExactPhrase("total wages amount".into())]
        );
        assert_eq!(patterns.len(), 2);
    }

    #[test]
    fn organizer_patterns_require_person_or_org() {
        let entries: Vec<(&str, &str)> = vec![
            ("org", "James Wilson"),
            ("org", "Mary Davis"),
            ("org", "Robert Brown"),
            ("org", "Linda Garcia"),
        ];
        let patterns = learn_patterns(entries, &LearnConfig::default());
        let has_person = patterns["org"].iter().any(|p| match p {
            SyntacticPattern::Window { required, .. } => {
                required.contains(&Feature::ner(NerTag::Person))
            }
            _ => false,
        });
        assert!(has_person, "{:?}", patterns["org"]);
    }

    #[test]
    fn measure_patterns_from_size_strings() {
        let entries: Vec<(&str, &str)> = vec![
            ("size", "4 beds 2 baths 2,465 sqft"),
            ("size", "3 beds 1 baths 1,200 sqft"),
            ("size", "6 beds 3 baths 4,100 sqft"),
        ];
        let patterns = learn_patterns(entries, &LearnConfig::default());
        let has_measure = patterns["size"].iter().any(|p| match p {
            SyntacticPattern::Window { required, .. } => {
                required.contains(&Feature::Cd)
                    && required.iter().any(|f| matches!(f, Feature::Sense(_)))
            }
            _ => false,
        });
        assert!(has_measure, "{:?}", patterns["size"]);
    }

    #[test]
    fn phone_patterns() {
        let entries: Vec<(&str, &str)> = vec![
            ("phone", "(614) 555-0175"),
            ("phone", "614-555-0175"),
            ("phone", "(330) 555-8921"),
            ("phone", "740-555-3321"),
        ];
        let patterns = learn_patterns(entries, &LearnConfig::default());
        let has_phone = patterns["phone"].iter().any(|p| match p {
            SyntacticPattern::Window { required, .. } => {
                required.contains(&Feature::ner(NerTag::Phone))
            }
            _ => false,
        });
        assert!(has_phone, "{:?}", patterns["phone"]);
    }

    #[test]
    fn pattern_cap_is_respected() {
        let cfg = LearnConfig {
            max_patterns: 2,
            ..LearnConfig::default()
        };
        let entries: Vec<(&str, &str)> = (0..6)
            .map(|_| ("e", "grand jazz festival with live music tonight"))
            .collect();
        let patterns = learn_patterns(entries, &cfg);
        assert!(patterns["e"].len() <= 2);
    }

    #[test]
    fn empty_corpus() {
        let patterns = learn_patterns(std::iter::empty::<(&str, &str)>(), &LearnConfig::default());
        assert!(patterns.is_empty());
    }
}
