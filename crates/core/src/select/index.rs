//! The compiled select-stage matcher: [`PatternIndex`].
//!
//! `candidates_on_blocks` used to run an entity × block × pattern triple
//! loop where every [`SyntacticPattern::matches`] call re-tokenised the
//! needle, re-derived every window's feature set and re-walked the NER
//! spans from scratch. The index is built **once per
//! [`crate::Vs2Model`]** and turns the per-block work into:
//!
//! * **One trie pass for all exact phrases.** Every entity's
//!   `ExactPhrase` patterns are interned into a shared token-trie; a
//!   single left-to-right scan over a block yields the phrase hits of
//!   every entity at once. The walk reproduces the greedy OCR-tolerant
//!   aligner of `pattern::exact_matches` branch for branch (direct word
//!   match first, then needle-merge, then token-split), including the
//!   rare case where a merge and a split fire on the same edge — the
//!   split continuation then excludes the merged grandchildren, exactly
//!   as per-phrase greedy alignment would.
//! * **Window patterns grouped by anchor feature.** Each compiled
//!   window pattern is bucketed under its most selective requirement
//!   (stem ≻ NER ≻ verb sense ≻ noun sense ≻ POS flag ≻ TIMEX/geocode);
//!   a bucket is evaluated only when its anchor occurs somewhere in the
//!   block's precomputed feature summary. Surviving patterns test
//!   candidate windows with bitmask subset checks against the block's
//!   [`FeatureTable`] instead of rebuilding `BTreeSet<Feature>`s.
//!
//! Tie-breaking is bit-for-bit the old loop's: longest match wins, ties
//! go to the lowest pattern rank, then the earliest `(start, end)` span.
//! The naive matcher survives as [`crate::select::naive`] and the
//! `select_equiv` differential suite in `vs2-conformance` proves the two
//! observationally identical.

use crate::select::blocktext::{BlockText, WindowRep, FLAG_CD, FLAG_GEO, FLAG_JJ, FLAG_TIMEX};
use crate::select::pattern::{ner_code, Feature, SyntacticPattern};
use crate::select::PatternMatch;
use std::collections::BTreeMap;
use vs2_nlp::chunk::PhraseKind;
use vs2_nlp::ner::NerTag;

/// The winning match of one entity within one block, as the naive
/// matcher's inner loop would have produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockBest {
    /// The winning span.
    pub m: PatternMatch,
    /// `true` when an exact-phrase pattern produced it (D1 semantics:
    /// the descriptor locates the field, the value sits beside it).
    pub exact: bool,
    /// Specificity of the most demanding pattern that fired in the
    /// block (not necessarily the winning one).
    pub specificity: usize,
}

/// Reusable buffers for the per-block scan: the phrase-walk DFS stack
/// and the OCR-split rejoin text (one buffer + span table instead of a
/// `String` per adjacent token pair). Create once per worker (or via
/// [`PatternIndex::scratch`]) and pass to
/// [`PatternIndex::block_best_with`] for every block of a job.
#[derive(Debug, Default)]
pub struct ScanScratch {
    stack: Vec<(usize, u32, Option<Vec<u32>>)>,
    rejoined_text: String,
    rejoined_spans: Vec<(u32, u32)>,
    acc: Vec<Acc>,
}

/// A registration of one pattern: which entity, at which rank within
/// that entity's inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    entity: u32,
    rank: u32,
}

/// A needle-merge continuation precomputed at build time: consuming one
/// block token may cover *two* consecutive phrase words (OCR merged
/// them). `word` is the concatenation, `target` the grandchild node,
/// `edge_idx` the grandchild's index among the child's edges (used to
/// exclude it from a simultaneous split continuation).
#[derive(Debug, Clone)]
struct Merged {
    word: String,
    target: u32,
    edge_idx: u32,
}

#[derive(Debug, Clone)]
struct Edge {
    word: String,
    node: u32,
    merged: Vec<Merged>,
}

#[derive(Debug, Clone, Default)]
struct TrieNode {
    children: Vec<Edge>,
    terminals: Vec<Slot>,
}

/// A window pattern compiled to bitmasks.
#[derive(Debug, Clone)]
struct CompiledWindow {
    slot: Slot,
    kind: Option<PhraseKind>,
    req_flags: u8,
    req_ner: u8,
    req_sense: u16,
    req_vsense: u8,
    stems: Vec<String>,
    spec: usize,
    /// Regex-class categories (email/phone) among the requirements.
    contact: Vec<NerTag>,
    /// All required NER codes (drives span extension).
    required_ner: Vec<u8>,
}

/// The anchor feature a window pattern is grouped under. Ordered by
/// selectivity: a stem is rarer than an NER category, which is rarer
/// than a sense, which is rarer than a POS flag.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Anchor {
    Stem(String),
    Ner(u8),
    VSense(u8),
    Sense(u8),
    Flag(u8),
    /// No requirements: evaluated on every block.
    Always,
}

impl Anchor {
    fn of(required: &[Feature]) -> Anchor {
        let mut best: Option<Anchor> = None;
        for f in required {
            let a = match f {
                Feature::Stem(s) => Anchor::Stem(s.clone()),
                Feature::Ner(c) => Anchor::Ner(*c),
                Feature::VSense(v) => Anchor::VSense(*v),
                Feature::Sense(s) => Anchor::Sense(*s),
                Feature::Cd => Anchor::Flag(FLAG_CD),
                Feature::Jj => Anchor::Flag(FLAG_JJ),
                Feature::Timex => Anchor::Flag(FLAG_TIMEX),
                Feature::Geo => Anchor::Flag(FLAG_GEO),
            };
            best = Some(match best {
                None => a,
                Some(b) => b.min(a),
            });
        }
        best.unwrap_or(Anchor::Always)
    }

    /// `true` when the anchor feature occurs anywhere in the block — a
    /// sound prefilter: the summary is the union over every candidate
    /// window, so an absent anchor means no window can satisfy it.
    fn present_in(&self, bt: &BlockText) -> bool {
        let s = &bt.features.summary;
        match self {
            Anchor::Stem(w) => bt.features.block_has_stem(w),
            Anchor::Ner(c) => s.ner & (1 << c) != 0,
            Anchor::VSense(v) => s.vsense & (1 << v) != 0,
            Anchor::Sense(c) => s.sense & (1 << c) != 0,
            Anchor::Flag(f) => s.flags & f != 0,
            Anchor::Always => true,
        }
    }
}

/// The compiled matching engine for VS2-Select: shared phrase trie plus
/// anchor-grouped, mask-compiled window patterns. Built once per model;
/// immutable and `Send + Sync`, so serving workers share it through the
/// model's `Arc` with no per-document rebuild.
#[derive(Debug, Clone, Default)]
pub struct PatternIndex {
    n_entities: usize,
    nodes: Vec<TrieNode>,
    /// Window patterns bucketed by anchor; buckets sorted for
    /// determinism (evaluation order does not affect results — the
    /// accumulator's tie-break key is order-free).
    groups: Vec<(Anchor, Vec<CompiledWindow>)>,
    n_phrases: usize,
    n_windows: usize,
}

/// Mirrors `pattern::exact_matches`' word comparator, with a cheap
/// length prefilter (equal strings have equal lengths; the edit-one
/// channel never bridges a length gap above one).
fn word_matches(have: &str, want: &str) -> bool {
    if have.len().abs_diff(want.len()) > 1 {
        return false;
    }
    have == want || (want.len() >= 4 && vs2_nlp::lexicon::within_edit_one(have, want))
}

impl PatternIndex {
    /// Compiles an entity → pattern inventory. Entity indices follow the
    /// map's (sorted) key order.
    pub fn build(patterns: &BTreeMap<String, Vec<SyntacticPattern>>) -> Self {
        let mut idx = PatternIndex {
            n_entities: patterns.len(),
            nodes: vec![TrieNode::default()],
            ..PatternIndex::default()
        };
        let mut grouped: BTreeMap<Anchor, Vec<CompiledWindow>> = BTreeMap::new();
        for (ei, pats) in patterns.values().enumerate() {
            for (rank, p) in pats.iter().enumerate() {
                let slot = Slot {
                    entity: ei as u32,
                    rank: rank as u32,
                };
                match p {
                    SyntacticPattern::ExactPhrase(phrase) => {
                        let needle: Vec<String> = phrase
                            .split_whitespace()
                            .map(|w| w.to_lowercase())
                            .collect();
                        if needle.is_empty() {
                            continue;
                        }
                        idx.insert_phrase(&needle, slot);
                        idx.n_phrases += 1;
                    }
                    SyntacticPattern::Window { kind, required } => {
                        let mut w = CompiledWindow {
                            slot,
                            kind: *kind,
                            req_flags: 0,
                            req_ner: 0,
                            req_sense: 0,
                            req_vsense: 0,
                            stems: Vec::new(),
                            spec: required.len().min(4),
                            contact: Vec::new(),
                            required_ner: Vec::new(),
                        };
                        for f in required {
                            match f {
                                Feature::Cd => w.req_flags |= FLAG_CD,
                                Feature::Jj => w.req_flags |= FLAG_JJ,
                                Feature::Timex => w.req_flags |= FLAG_TIMEX,
                                Feature::Geo => w.req_flags |= FLAG_GEO,
                                Feature::Ner(c) => {
                                    w.req_ner |= 1 << c;
                                    w.required_ner.push(*c);
                                    match c {
                                        6 => w.contact.push(NerTag::Email),
                                        7 => w.contact.push(NerTag::Phone),
                                        _ => {}
                                    }
                                }
                                Feature::Sense(s) => w.req_sense |= 1 << s,
                                Feature::VSense(v) => w.req_vsense |= 1 << v,
                                Feature::Stem(s) => w.stems.push(s.clone()),
                            }
                        }
                        grouped.entry(Anchor::of(required)).or_default().push(w);
                        idx.n_windows += 1;
                    }
                }
            }
        }
        idx.groups = grouped.into_iter().collect();
        idx.link_merged();
        idx
    }

    fn insert_phrase(&mut self, needle: &[String], slot: Slot) {
        let mut node = 0u32;
        for word in needle {
            let next = match self.nodes[node as usize]
                .children
                .iter()
                .find(|e| &e.word == word)
            {
                Some(e) => e.node,
                None => {
                    let id = self.nodes.len() as u32;
                    self.nodes.push(TrieNode::default());
                    self.nodes[node as usize].children.push(Edge {
                        word: word.clone(),
                        node: id,
                        merged: Vec::new(),
                    });
                    id
                }
            };
            node = next;
        }
        self.nodes[node as usize].terminals.push(slot);
    }

    /// Precomputes, for every edge, the concatenated two-word forms the
    /// OCR-merge branch compares against — so the hot scan never
    /// allocates needle-side strings.
    fn link_merged(&mut self) {
        for id in 0..self.nodes.len() {
            for ei in 0..self.nodes[id].children.len() {
                let child = self.nodes[id].children[ei].node;
                let word = self.nodes[id].children[ei].word.clone();
                let merged: Vec<Merged> = self.nodes[child as usize]
                    .children
                    .iter()
                    .enumerate()
                    .map(|(gi, g)| Merged {
                        word: format!("{}{}", word, g.word),
                        target: g.node,
                        edge_idx: gi as u32,
                    })
                    .collect();
                self.nodes[id].children[ei].merged = merged;
            }
        }
    }

    /// Number of entities the index was compiled over.
    pub fn entity_count(&self) -> usize {
        self.n_entities
    }

    /// Number of interned exact phrases.
    pub fn phrase_count(&self) -> usize {
        self.n_phrases
    }

    /// Number of compiled window patterns.
    pub fn window_count(&self) -> usize {
        self.n_windows
    }

    /// Scratch for [`PatternIndex::block_best_with`] — kept across
    /// blocks so the phrase-scan DFS stack and the OCR-split rejoin
    /// buffer are allocated once per worker, not once per block.
    /// (Defined on the impl for discoverability; see [`ScanScratch`].)
    pub fn scratch() -> ScanScratch {
        ScanScratch::default()
    }

    /// The per-entity best match within one block — observationally
    /// identical to running the naive per-entity loops (see
    /// [`crate::select::naive`]). Returns one slot per entity, in the
    /// inventory's entity order.
    pub fn block_best(&self, bt: &BlockText) -> Vec<Option<BlockBest>> {
        self.block_best_with(bt, &mut ScanScratch::default())
    }

    /// [`PatternIndex::block_best`] with caller-owned scan scratch, so a
    /// worker processing many blocks reuses the DFS stack and the
    /// rejoined-pair buffer instead of reallocating them per block.
    pub fn block_best_with(
        &self,
        bt: &BlockText,
        scratch: &mut ScanScratch,
    ) -> Vec<Option<BlockBest>> {
        let mut out = Vec::new();
        self.block_best_into(bt, scratch, &mut out);
        out
    }

    /// [`PatternIndex::block_best_with`] into a caller-owned output
    /// buffer, with the per-entity accumulators also drawn from the
    /// scratch — zero allocations per block once the buffers are warm.
    pub fn block_best_into(
        &self,
        bt: &BlockText,
        scratch: &mut ScanScratch,
        out: &mut Vec<Option<BlockBest>>,
    ) {
        // Take the accumulator out of the scratch so the scan borrows
        // don't collide; put it back when done.
        let mut acc = std::mem::take(&mut scratch.acc);
        acc.clear();
        acc.resize(self.n_entities, Acc::default());
        if !bt.is_empty() {
            self.scan_phrases(bt, &mut acc, scratch);
            self.scan_windows(bt, &mut acc);
        }
        out.clear();
        out.extend(acc.iter().map(|a| a.into_best()));
        scratch.acc = acc;
    }

    /// One left-to-right pass over the block: from every start token,
    /// walk the trie with the greedy aligner's branch order.
    fn scan_phrases(&self, bt: &BlockText, acc: &mut [Acc], scratch: &mut ScanScratch) {
        if self.nodes[0].children.is_empty() {
            return;
        }
        let tokens = &bt.ann.tokens;
        let n = tokens.len();
        let norm = |i: usize| -> &str { &tokens[i].norm };
        // Adjacent-token rejoins for the OCR-split branch, built once
        // per block into one reused buffer instead of one `String` per
        // adjacent pair.
        scratch.rejoined_text.clear();
        scratch.rejoined_spans.clear();
        for i in 0..n.saturating_sub(1) {
            let start = scratch.rejoined_text.len() as u32;
            scratch.rejoined_text.push_str(norm(i));
            scratch.rejoined_text.push_str(norm(i + 1));
            scratch
                .rejoined_spans
                .push((start, scratch.rejoined_text.len() as u32));
        }
        let rejoined = |i: usize| -> &str {
            let (s, e) = scratch.rejoined_spans[i];
            &scratch.rejoined_text[s as usize..e as usize]
        };
        let stack = &mut scratch.stack;
        stack.clear();
        for start in 0..n {
            stack.push((start, 0, None));
            while let Some((i, node_id, banned)) = stack.pop() {
                let node = &self.nodes[node_id as usize];
                for slot in &node.terminals {
                    update(acc, *slot, PatternMatch { start, end: i }, true, 4);
                }
                for (ei, edge) in node.children.iter().enumerate() {
                    if banned.as_ref().is_some_and(|b| b.contains(&(ei as u32))) {
                        continue;
                    }
                    if i < n && word_matches(norm(i), &edge.word) {
                        // Greedy: a direct hit commits every phrase
                        // through this edge; merge/split are fallbacks.
                        stack.push((i + 1, edge.node, None));
                        continue;
                    }
                    let mut merged_edges: Vec<u32> = Vec::new();
                    if i < n {
                        for m in &edge.merged {
                            if word_matches(norm(i), &m.word) {
                                stack.push((i + 1, m.target, None));
                                merged_edges.push(m.edge_idx);
                            }
                        }
                    }
                    if i + 1 < n && word_matches(rejoined(i), &edge.word) {
                        // Phrases whose continuation already merged must
                        // not also take the split path — per-phrase
                        // greedy alignment tries merge before split.
                        let b = (!merged_edges.is_empty()).then_some(merged_edges);
                        stack.push((i + 2, edge.node, b));
                    }
                }
            }
        }
    }

    fn scan_windows(&self, bt: &BlockText, acc: &mut [Acc]) {
        for (anchor, bucket) in &self.groups {
            if !anchor.present_in(bt) {
                continue;
            }
            for w in bucket {
                self.eval_window(bt, w, acc);
            }
        }
    }

    fn eval_window(&self, bt: &BlockText, w: &CompiledWindow, acc: &mut [Acc]) {
        // Full-requirement prefilter against the block summary — free
        // once the masks exist, and strictly stronger than the anchor.
        let s = &bt.features.summary;
        if w.req_flags & s.flags != w.req_flags
            || w.req_ner & s.ner != w.req_ner
            || w.req_sense & s.sense != w.req_sense
            || w.req_vsense & s.vsense != w.req_vsense
        {
            return;
        }
        let table = &bt.features;
        match w.kind {
            Some(k) => {
                for (p, rep) in bt.ann.phrases.iter().zip(table.phrase_windows.iter()) {
                    if p.kind == k {
                        self.eval_rep(bt, w, rep, acc);
                    }
                }
            }
            None => {
                for rep in table
                    .ner_windows
                    .iter()
                    .chain(std::iter::once(&table.block_window))
                {
                    self.eval_rep(bt, w, rep, acc);
                }
            }
        }
    }

    fn eval_rep(&self, bt: &BlockText, w: &CompiledWindow, rep: &WindowRep, acc: &mut [Acc]) {
        let table = &bt.features;
        {
            if rep.end <= rep.start {
                return;
            }
            if w.req_flags & rep.flags != w.req_flags
                || w.req_ner & rep.ner != w.req_ner
                || w.req_sense & rep.sense != w.req_sense
                || w.req_vsense & rep.vsense != w.req_vsense
            {
                return;
            }
            if !w
                .stems
                .iter()
                .all(|want| table.span_has_stem(rep.start, rep.end, want))
            {
                return;
            }
            // Post-processing identical to `SyntacticPattern::matches`:
            // regex-class (phone/e-mail) requirements return the NER
            // span itself; other windows extend over clipped NER spans
            // and over required-category spans anywhere in the block.
            if !w.contact.is_empty() {
                let mut found = false;
                for span in &bt.ann.ner {
                    if w.contact.contains(&span.tag) && span.start < rep.end && span.end > rep.start
                    {
                        update(
                            acc,
                            w.slot,
                            PatternMatch {
                                start: span.start,
                                end: span.end,
                            },
                            false,
                            w.spec,
                        );
                        found = true;
                    }
                }
                if found {
                    return;
                }
            }
            let (mut s2, mut e2) = (rep.start, rep.end);
            for span in &bt.ann.ner {
                let intersects = span.start < e2 && span.end > s2;
                let required_tag = w.required_ner.contains(&ner_code(span.tag));
                if intersects || required_tag {
                    s2 = s2.min(span.start);
                    e2 = e2.max(span.end);
                }
            }
            update(
                acc,
                w.slot,
                PatternMatch { start: s2, end: e2 },
                false,
                w.spec,
            );
        }
    }
}

/// Per-entity accumulator replicating the naive loop's tie-break: a new
/// match wins only when strictly longer, so the standing best is the
/// maximal-length match with the lowest `(rank, start, end)`.
#[derive(Debug, Clone, Copy, Default)]
struct Acc {
    best: Option<(PatternMatch, u32, bool)>,
    spec: usize,
}

impl Acc {
    fn into_best(self) -> Option<BlockBest> {
        self.best.map(|(m, _, exact)| BlockBest {
            m,
            exact,
            specificity: self.spec,
        })
    }
}

fn update(acc: &mut [Acc], slot: Slot, m: PatternMatch, exact: bool, spec: usize) {
    let a = &mut acc[slot.entity as usize];
    a.spec = a.spec.max(spec);
    let len = m.end - m.start;
    let key = (std::cmp::Reverse(len), slot.rank, m.start, m.end);
    let better = match &a.best {
        None => true,
        Some((cur, cur_rank, _)) => {
            key < (
                std::cmp::Reverse(cur.end - cur.start),
                *cur_rank,
                cur.start,
                cur.end,
            )
        }
    };
    if better {
        a.best = Some((m, slot.rank, exact));
    }
}

// The serving layer shares the index through the model's `Arc`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PatternIndex>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::LogicalBlock;
    use crate::select::naive;
    use vs2_docmodel::{BBox, Document, TextElement};
    use vs2_nlp::hypernym::Sense;
    use vs2_nlp::stem::stem;

    fn bt(text: &str) -> (Document, BlockText) {
        let mut d = Document::new("ix", 900.0, 50.0);
        let mut elems = Vec::new();
        for (i, w) in text.split_whitespace().enumerate() {
            elems.push(d.push_text(TextElement::word(
                w,
                BBox::new(10.0 + 40.0 * i as f64, 10.0, 35.0, 10.0),
            )));
        }
        let block = LogicalBlock {
            bbox: BBox::new(
                10.0,
                10.0,
                40.0 * text.split_whitespace().count().max(1) as f64,
                10.0,
            ),
            elements: elems,
        };
        let bt = BlockText::build(&d, &block);
        (d, bt)
    }

    fn assert_same_as_naive(patterns: &BTreeMap<String, Vec<SyntacticPattern>>, text: &str) {
        let (_, b) = bt(text);
        let index = PatternIndex::build(patterns);
        let indexed = index.block_best(&b);
        for (ei, pats) in patterns.values().enumerate() {
            let expected = naive::block_best(pats, &b).map(|(m, exact, specificity)| BlockBest {
                m,
                exact,
                specificity,
            });
            assert_eq!(indexed[ei], expected, "entity #{ei} over {text:?}");
        }
    }

    #[test]
    fn trie_pass_matches_all_entities_at_once() {
        let mut m = BTreeMap::new();
        m.insert(
            "a".to_string(),
            vec![SyntacticPattern::ExactPhrase("total wages".into())],
        );
        m.insert(
            "b".to_string(),
            vec![SyntacticPattern::ExactPhrase("wages income".into())],
        );
        let index = PatternIndex::build(&m);
        assert_eq!(index.phrase_count(), 2);
        let (_, b) = bt("Total wages income due");
        let best = index.block_best(&b);
        assert_eq!(
            best[0].map(|x| x.m),
            Some(PatternMatch { start: 0, end: 2 })
        );
        assert_eq!(
            best[1].map(|x| x.m),
            Some(PatternMatch { start: 1, end: 3 })
        );
        assert_same_as_naive(&m, "Total wages income due");
    }

    #[test]
    fn equal_length_overlap_resolves_by_pattern_rank() {
        // Two patterns of one entity matching overlapping spans of equal
        // length (tokens 0..2 and 1..3): the lower-ranked (earlier)
        // pattern's span must win.
        let mut m = BTreeMap::new();
        m.insert(
            "e".to_string(),
            vec![
                SyntacticPattern::ExactPhrase("wages income".into()),
                SyntacticPattern::ExactPhrase("total wages".into()),
            ],
        );
        let (_, b) = bt("Total wages income due");
        let index = PatternIndex::build(&m);
        let best = index.block_best(&b)[0].unwrap();
        // Rank 0 is "wages income" → span (1, 3), even though (0, 2)
        // starts earlier.
        assert_eq!(best.m, PatternMatch { start: 1, end: 3 });
        assert!(best.exact);
        assert_eq!(best.specificity, 4);
        assert_same_as_naive(&m, "Total wages income due");
    }

    #[test]
    fn duplicate_phrase_registered_by_two_entities() {
        let mut m = BTreeMap::new();
        m.insert(
            "first".to_string(),
            vec![SyntacticPattern::ExactPhrase("amount due".into())],
        );
        m.insert(
            "second".to_string(),
            vec![SyntacticPattern::ExactPhrase("amount due".into())],
        );
        let (_, b) = bt("Total amount due now");
        let index = PatternIndex::build(&m);
        let best = index.block_best(&b);
        let expected = PatternMatch { start: 1, end: 3 };
        assert_eq!(best[0].unwrap().m, expected);
        assert_eq!(best[1].unwrap().m, expected);
        assert_same_as_naive(&m, "Total amount due now");
    }

    #[test]
    fn window_anchor_token_appearing_twice() {
        // The stem anchor ("warehouse") appears in two separate noun
        // phrases; the winner must be the longest window, with ties
        // broken towards the earliest span.
        let mut m = BTreeMap::new();
        m.insert(
            "e".to_string(),
            vec![SyntacticPattern::Window {
                kind: Some(PhraseKind::Np),
                required: vec![Feature::Stem(stem("warehouse"))],
            }],
        );
        let text = "spacious warehouse available , warehouse parking lot nearby";
        let (_, b) = bt(text);
        let index = PatternIndex::build(&m);
        let naive_best = naive::block_best(&m["e"], &b).unwrap();
        let best = index.block_best(&b)[0].unwrap();
        assert_eq!(best.m, naive_best.0, "winning span must match naive");
        assert_eq!(best.specificity, 1);
        assert_same_as_naive(&m, text);
    }

    #[test]
    fn repeated_first_token_emits_unique_spans() {
        // Regression for the dedup hardening: a phrase whose first token
        // repeats inside the match window must yield strictly sorted,
        // unique spans from both matchers.
        let p = SyntacticPattern::ExactPhrase("pay pay stub".into());
        let (_, b) = bt("pay pay pay stub");
        let ms = p.matches(&b);
        let mut sorted = ms.clone();
        crate::select::pattern::dedup_matches(&mut sorted);
        assert_eq!(ms, sorted, "matches must be sorted and unique");
        assert!(!ms.is_empty());
        let mut m = BTreeMap::new();
        m.insert("e".to_string(), vec![p]);
        assert_same_as_naive(&m, "pay pay pay stub");
    }

    #[test]
    fn anchor_prefilter_skips_absent_features() {
        let mut m = BTreeMap::new();
        m.insert(
            "geo".to_string(),
            vec![SyntacticPattern::Window {
                kind: None,
                required: vec![Feature::Geo],
            }],
        );
        m.insert(
            "measure".to_string(),
            vec![SyntacticPattern::Window {
                kind: Some(PhraseKind::Np),
                required: vec![Feature::Cd, Feature::sense(Sense::Measure)],
            }],
        );
        // A block with neither geocodes nor numbers: both buckets skip.
        assert_same_as_naive(&m, "spacious warehouse with parking");
        // And blocks that do carry the anchors still match.
        assert_same_as_naive(&m, "4 beds 2 baths");
        assert_same_as_naive(&m, "1458 Maple Ave Columbus OH 43210");
    }

    #[test]
    fn ocr_merge_and_split_branches_match_naive() {
        let mut m = BTreeMap::new();
        m.insert(
            "e".to_string(),
            vec![SyntacticPattern::ExactPhrase("total wages income".into())],
        );
        // OCR merged two needle words into one token.
        assert_same_as_naive(&m, "totalwages income due");
        // OCR split one needle word across two tokens.
        assert_same_as_naive(&m, "total wa ges income");
        // Edit-one corruption.
        assert_same_as_naive(&m, "totel wages income");
    }

    #[test]
    fn empty_block_yields_nothing() {
        let m: BTreeMap<String, Vec<SyntacticPattern>> = [(
            "e".to_string(),
            vec![SyntacticPattern::ExactPhrase("x".into())],
        )]
        .into_iter()
        .collect();
        let (_, b) = bt("");
        let index = PatternIndex::build(&m);
        assert_eq!(index.block_best(&b), vec![None]);
    }
}
