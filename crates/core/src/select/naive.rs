//! The naive reference matcher — the pre-index entity × pattern × block
//! inner loop, kept verbatim.
//!
//! [`crate::select::index::PatternIndex`] is the production matcher; this
//! module preserves the original semantics as an executable
//! specification. The `select_equiv` differential suite in
//! `vs2-conformance` proptests the two against each other, and the
//! `select_perf` gate requires the index to be at least as fast. Nothing
//! in the serving path calls this module.

use crate::select::blocktext::BlockText;
use crate::select::pattern::{PatternMatch, SyntacticPattern};

/// The best match of one entity's pattern inventory within one block:
/// `(winning span, came from an exact-phrase pattern, specificity of the
/// most demanding pattern that fired)`.
///
/// Tie-breaking is the original loop's, bit for bit: iterate patterns in
/// rank order, each pattern's matches in ascending `(start, end)` order,
/// and replace the standing best only when the new match is *strictly*
/// longer ("the most optimal matched pattern", §5.2 of the paper).
pub fn block_best(
    patterns: &[SyntacticPattern],
    bt: &BlockText,
) -> Option<(PatternMatch, bool, usize)> {
    let mut best: Option<(PatternMatch, bool)> = None;
    let mut specificity = 0usize;
    for p in patterns {
        let (exact, spec) = match p {
            SyntacticPattern::ExactPhrase(_) => (true, 4),
            SyntacticPattern::Window { required, .. } => (false, required.len().min(4)),
        };
        for m in p.matches(bt) {
            specificity = specificity.max(spec);
            let better = match &best {
                None => true,
                Some((cur, _)) => (m.end - m.start) > (cur.end - cur.start),
            };
            if better {
                best = Some((m, exact));
            }
        }
    }
    best.map(|(m, exact)| (m, exact, specificity))
}
