//! Learning the Eq. 2 weights from labelled documents.
//!
//! §7 of the paper lists "learning to weight each feature based on
//! observed data" as future work; §5.3.2 only gives qualitative guidance
//! (visual-heavy for ornate corpora, text-heavy for verbose ones). This
//! module implements that extension: a coordinate grid search over the
//! simplex (α, β, γ, ν) that maximises end-to-end F1-like agreement on a
//! small labelled validation split.

use crate::pipeline::{Vs2Config, Vs2Pipeline};
use crate::select::disambiguate::Eq2Weights;
use vs2_docmodel::AnnotatedDocument;

/// Grid-search configuration.
#[derive(Debug, Clone, Copy)]
pub struct WeightSearchConfig {
    /// Number of grid steps per axis (weights move in `1/steps`
    /// increments over the simplex).
    pub steps: usize,
}

impl Default for WeightSearchConfig {
    fn default() -> Self {
        Self { steps: 4 }
    }
}

/// Agreement of a pipeline's extractions with the validation annotations:
/// the fraction of annotated entities whose extraction matches textually
/// or geometrically. (A lightweight F1 surrogate that needs no external
/// evaluator — `vs2-core` must not depend on `vs2-eval`.)
fn agreement(pipeline: &Vs2Pipeline, docs: &[AnnotatedDocument]) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for ad in docs {
        let extractions = pipeline.extract(&ad.doc);
        for a in &ad.annotations {
            total += 1;
            let matched = extractions.iter().any(|e| {
                e.entity == a.entity
                    && (e.span_bbox.iou(&a.bbox) >= 0.5
                        || a.bbox.inflate(0.5).contains_box(&e.span_bbox)
                        || normalized(&e.text) == normalized(&a.text))
            });
            if matched {
                hit += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        hit as f64 / total as f64
    }
}

fn normalized(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(|c| c.to_lowercase())
        .collect()
}

/// All weight combinations on the simplex with `1/steps` resolution.
/// `steps = 0` yields the empty grid (no candidates — the caller's
/// baseline weights win by default).
pub fn weight_grid(steps: usize) -> Vec<Eq2Weights> {
    if steps == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for a in 0..=steps {
        for b in 0..=steps.saturating_sub(a) {
            for g in 0..=steps.saturating_sub(a + b) {
                let n = steps - a - b - g;
                let s = steps as f64;
                out.push(Eq2Weights {
                    alpha: a as f64 / s,
                    beta: b as f64 / s,
                    gamma: g as f64 / s,
                    nu: n as f64 / s,
                });
            }
        }
    }
    out
}

/// Grid-searches the Eq. 2 weights on a validation split. Returns the
/// best weights and their agreement score. The pipeline is re-scored (not
/// re-learned) per candidate, so the search costs
/// `O(grid × validation docs)` extractions.
pub fn learn_weights(
    base: &Vs2Pipeline,
    validation: &[AnnotatedDocument],
    config: WeightSearchConfig,
) -> (Eq2Weights, f64) {
    let mut best = (base.config.weights, agreement(base, validation));
    for w in weight_grid(config.steps) {
        let mut candidate = base.clone();
        candidate.config = Vs2Config {
            weights: w,
            ..base.config
        };
        let score = agreement(&candidate, validation);
        if score > best.1 {
            best = (w, score);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_the_simplex() {
        let g = weight_grid(4);
        // C(4+3, 3) = 35 compositions of 4 into 4 parts.
        assert_eq!(g.len(), 35);
        for w in &g {
            assert!(w.is_valid(), "{w:?}");
        }
        // The corners are present.
        assert!(g.iter().any(|w| w.alpha == 1.0));
        assert!(g.iter().any(|w| w.nu == 1.0));
    }

    #[test]
    fn grid_of_one_step() {
        let g = weight_grid(1);
        assert_eq!(g.len(), 4, "{g:?}");
        assert!(weight_grid(0).is_empty());
    }

    #[test]
    fn normalization_helper() {
        assert_eq!(normalized("(614) 555-0175"), "6145550175");
        assert_eq!(normalized("James  Wilson!"), "jameswilson");
    }
}
