//! The hand-written pattern inventories of the paper's Tables 3 and 4.
//!
//! §5.2 allows the patterns to be *predefined* rather than learned; the
//! paper's tables describe them in prose ("Noun phrases with valid
//! TIMEX3 tags", "A bigram/trigram of NE's with Person / Organization
//! tags", …). This module transcribes each row into the
//! [`SyntacticPattern`] language so the distant-supervision learner can
//! be validated against the authors' intent (the `table3_4` bench binary
//! prints both side by side), and so the pipeline can run without any
//! holdout corpus at all.

use crate::select::pattern::{Feature, SyntacticPattern};
use std::collections::BTreeMap;
use vs2_nlp::chunk::PhraseKind;
use vs2_nlp::hypernym::Sense;
use vs2_nlp::ner::NerTag;
use vs2_nlp::verbs::VerbSense;

fn np(required: Vec<Feature>) -> SyntacticPattern {
    SyntacticPattern::Window {
        kind: Some(PhraseKind::Np),
        required,
    }
}

fn vp(required: Vec<Feature>) -> SyntacticPattern {
    SyntacticPattern::Window {
        kind: Some(PhraseKind::Vp),
        required,
    }
}

fn any(required: Vec<Feature>) -> SyntacticPattern {
    SyntacticPattern::Window {
        kind: None,
        required,
    }
}

/// Table 3: the named entities of dataset D2 (event posters).
///
/// | entity | paper's description |
/// |---|---|
/// | Event Title | verb phrase; noun phrase with numeric (CD) or textual (JJ) modifiers; SVO |
/// | Event Place | noun phrases with valid geocode tags |
/// | Event Time | noun phrases with valid TIMEX3 tags |
/// | Event Organizer | verb phrase with captain/create/reflexive_appearance senses; noun phrase with Person/Organization NEs |
/// | Event Description | SVO or verb phrase or noun phrase with modifiers |
pub fn table3() -> BTreeMap<String, Vec<SyntacticPattern>> {
    let mut m = BTreeMap::new();
    m.insert(
        "event_title".to_string(),
        vec![
            np(vec![Feature::Jj, Feature::sense(Sense::Event)]),
            np(vec![Feature::Cd, Feature::Jj]),
            np(vec![Feature::Cd, Feature::sense(Sense::Event)]),
            SyntacticPattern::Window {
                kind: Some(PhraseKind::Svo),
                required: vec![],
            },
        ],
    );
    m.insert(
        "event_place".to_string(),
        vec![np(vec![Feature::Geo]), any(vec![Feature::Geo])],
    );
    m.insert(
        "event_time".to_string(),
        vec![
            np(vec![Feature::Timex]),
            any(vec![Feature::Timex]),
            any(vec![Feature::ner(NerTag::Date), Feature::ner(NerTag::Time)]),
        ],
    );
    m.insert(
        "event_organizer".to_string(),
        vec![
            any(vec![
                Feature::vsense(VerbSense::Captain),
                Feature::ner(NerTag::Person),
            ]),
            any(vec![
                Feature::vsense(VerbSense::Create),
                Feature::ner(NerTag::Person),
            ]),
            any(vec![
                Feature::vsense(VerbSense::Create),
                Feature::ner(NerTag::Organization),
            ]),
            any(vec![
                Feature::vsense(VerbSense::ReflexiveAppearance),
                Feature::ner(NerTag::Person),
            ]),
            np(vec![Feature::ner(NerTag::Person)]),
            np(vec![Feature::ner(NerTag::Organization)]),
        ],
    );
    m.insert(
        "event_description".to_string(),
        vec![
            SyntacticPattern::Window {
                kind: Some(PhraseKind::Svo),
                required: vec![],
            },
            vp(vec![]),
            np(vec![Feature::Cd, Feature::Jj]),
            np(vec![Feature::Jj, Feature::sense(Sense::Event)]),
        ],
    );
    m
}

/// Table 4: the named entities of dataset D3 (real-estate flyers).
///
/// | entity | paper's description |
/// |---|---|
/// | Broker Name | a bigram/trigram of NEs with Person / Organization tags |
/// | Broker Phone | a regular expression of digits and `-()./` separators |
/// | Broker Email | an RFC-5322-compliant regular expression |
/// | Property Address | noun phrase with valid geocode tags |
/// | Property Size | NP with CD/JJ modifiers; noun senses measure/structure/estate |
/// | Property Description | mentions of the property type and essential details |
pub fn table4() -> BTreeMap<String, Vec<SyntacticPattern>> {
    let mut m = BTreeMap::new();
    m.insert(
        "broker_name".to_string(),
        vec![
            np(vec![Feature::ner(NerTag::Person)]),
            np(vec![Feature::ner(NerTag::Organization)]),
        ],
    );
    m.insert(
        "broker_phone".to_string(),
        vec![any(vec![Feature::ner(NerTag::Phone)])],
    );
    m.insert(
        "broker_email".to_string(),
        vec![any(vec![Feature::ner(NerTag::Email)])],
    );
    m.insert(
        "property_address".to_string(),
        vec![np(vec![Feature::Geo]), any(vec![Feature::Geo])],
    );
    m.insert(
        "property_size".to_string(),
        vec![
            np(vec![Feature::Cd, Feature::sense(Sense::Measure)]),
            np(vec![Feature::Cd, Feature::sense(Sense::Structure)]),
            np(vec![Feature::Cd, Feature::sense(Sense::Estate)]),
        ],
    );
    m.insert(
        "property_description".to_string(),
        vec![
            np(vec![Feature::Jj, Feature::sense(Sense::Structure)]),
            np(vec![
                Feature::sense(Sense::Structure),
                Feature::sense(Sense::Estate),
            ]),
            vp(vec![Feature::vsense(VerbSense::Transfer)]),
        ],
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Vs2Config, Vs2Pipeline};
    use crate::segment::LogicalBlock;
    use vs2_docmodel::{BBox, Document, TextElement};

    fn line(doc: &mut Document, text: &str, y: f64, h: f64) -> LogicalBlock {
        let mut elements = Vec::new();
        for (i, w) in text.split_whitespace().enumerate() {
            elements.push(doc.push_text(TextElement::word(
                w,
                BBox::new(10.0 + 60.0 * i as f64, y, 55.0, h),
            )));
        }
        let boxes: Vec<BBox> = elements.iter().map(|r| doc.bbox_of(*r)).collect();
        LogicalBlock {
            bbox: BBox::enclosing(boxes.iter()).unwrap(),
            elements,
        }
    }

    #[test]
    fn table3_covers_all_d2_entities() {
        let t = table3();
        assert_eq!(t.len(), 5);
        assert!(t.values().all(|p| !p.is_empty()));
    }

    #[test]
    fn table4_covers_all_d3_entities() {
        let t = table4();
        assert_eq!(t.len(), 6);
        assert!(t.values().all(|p| !p.is_empty()));
    }

    #[test]
    fn handwritten_patterns_extract_without_any_corpus() {
        let mut doc = Document::new("t4", 500.0, 200.0);
        let blocks = vec![
            line(&mut doc, "James Wilson", 10.0, 12.0),
            line(&mut doc, "Phone ( 614 ) 555-0175", 40.0, 10.0),
            line(&mut doc, "Email mary.davis@example.com", 70.0, 10.0),
            line(&mut doc, "4 beds 2 baths 2,465 sqft", 100.0, 10.0),
        ];
        let pipeline = Vs2Pipeline::with_patterns(table4(), Vs2Config::default());
        let ex = pipeline.extract_on_blocks(&doc, &blocks);
        let get = |e: &str| ex.iter().find(|x| x.entity == e).map(|x| x.text.clone());
        assert_eq!(get("broker_name").as_deref(), Some("James Wilson"));
        assert!(get("broker_phone").unwrap().contains("555-0175"));
        assert!(get("broker_email").unwrap().contains("@example.com"));
        assert!(get("property_size").unwrap().contains("beds"));
    }

    #[test]
    fn table3_time_pattern_accepts_timex_lines() {
        let mut doc = Document::new("t3", 500.0, 100.0);
        let blocks = vec![line(&mut doc, "Saturday April 5 7:30 pm", 10.0, 14.0)];
        let pipeline = Vs2Pipeline::with_patterns(table3(), Vs2Config::default());
        let ex = pipeline.extract_on_blocks(&doc, &blocks);
        let time = ex.iter().find(|x| x.entity == "event_time").unwrap();
        assert!(time.text.contains("7:30"), "{time:?}");
    }
}
