//! Interest-point determination (§5.3.1).
//!
//! An interest point is a visually prominent or semantically significant
//! logical block. The paper casts this as optimal-subset selection over
//! three objectives — (1) maximise bounding-box height (big fonts signal
//! salience), (2) maximise semantic coherence (pairwise embedding cosine
//! of the block's words), (3) minimise average word density (sparse,
//! large blocks are highlights) — and takes the first-order Pareto front
//! by non-dominated sorting.

use std::cell::RefCell;

use crate::segment::LogicalBlock;
use vs2_docmodel::Document;
use vs2_nlp::embedding::{cosine, Embedder, Vector};

thread_local! {
    /// Reused per-block word-vector buffer (`Vector` is `Copy`, so reuse
    /// is a pure capacity optimisation).
    static VECTOR_SCRATCH: RefCell<Vec<Vector>> = const { RefCell::new(Vec::new()) };
}

/// The objective values of one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Tallest element in the block (font-size proxy). Maximised.
    pub height: f64,
    /// Mean pairwise cosine similarity of the block's words. Maximised.
    /// (The paper sums; the mean is the scale-free equivalent — see
    /// DESIGN.md.)
    pub coherence: f64,
    /// Average word density over the block's area. Minimised.
    pub density: f64,
}

/// Computes the three §5.3.1 objectives for a block.
pub fn objectives<E: Embedder>(doc: &Document, block: &LogicalBlock, embedder: &E) -> Objectives {
    let height = block
        .elements
        .iter()
        .map(|r| doc.bbox_of(*r).h)
        .fold(0.0, f64::max);
    let coherence = VECTOR_SCRATCH.with(|s| {
        let mut vectors = s.borrow_mut();
        vectors.clear();
        vectors.extend(
            block
                .elements
                .iter()
                .filter_map(|r| doc.text_of(*r))
                .map(|w| embedder.embed(w)),
        );
        let mut coh = 0.0;
        let mut pairs = 0usize;
        for i in 0..vectors.len() {
            for j in i + 1..vectors.len() {
                coh += cosine(&vectors[i], &vectors[j]);
                pairs += 1;
            }
        }
        if pairs == 0 {
            0.0
        } else {
            coh / pairs as f64
        }
    });
    Objectives {
        height,
        coherence,
        density: doc.word_density(&block.bbox),
    }
}

/// `true` when `a` Pareto-dominates `b`.
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    let ge = a.height >= b.height && a.coherence >= b.coherence && a.density <= b.density;
    let strict = a.height > b.height || a.coherence > b.coherence || a.density < b.density;
    ge && strict
}

/// Indices of the blocks on the first-order Pareto front — the interest
/// points of the document.
pub fn interest_points<E: Embedder>(
    doc: &Document,
    blocks: &[LogicalBlock],
    embedder: &E,
) -> Vec<usize> {
    let objs: Vec<Objectives> = blocks
        .iter()
        .map(|b| objectives(doc, b, embedder))
        .collect();
    (0..blocks.len())
        .filter(|&i| {
            !objs
                .iter()
                .enumerate()
                .any(|(j, o)| j != i && dominates(o, &objs[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::{BBox, TextElement};
    use vs2_nlp::LexiconEmbedding;

    fn block(doc: &mut Document, words: &[(&str, f64, f64, f64)]) -> LogicalBlock {
        let mut elems = Vec::new();
        for (w, x, y, h) in words {
            elems.push(doc.push_text(TextElement::word(*w, BBox::new(*x, *y, 40.0, *h))));
        }
        let bbox = BBox::enclosing(
            elems
                .iter()
                .map(|r| doc.bbox_of(*r))
                .collect::<Vec<_>>()
                .iter(),
        )
        .unwrap();
        LogicalBlock {
            bbox,
            elements: elems,
        }
    }

    #[test]
    fn title_block_is_an_interest_point() {
        let mut d = Document::new("ip", 400.0, 300.0);
        let title = block(
            &mut d,
            &[("Grand", 10.0, 10.0, 36.0), ("Festival", 80.0, 10.0, 36.0)],
        );
        let body = block(
            &mut d,
            &[
                ("the", 10.0, 100.0, 9.0),
                ("concert", 40.0, 100.0, 9.0),
                ("details", 80.0, 100.0, 9.0),
                ("follow", 120.0, 100.0, 9.0),
                ("here", 150.0, 100.0, 9.0),
                ("soon", 180.0, 100.0, 9.0),
            ],
        );
        let blocks = vec![title, body];
        let ips = interest_points(&d, &blocks, &LexiconEmbedding);
        assert!(ips.contains(&0), "title must be an interest point: {ips:?}");
    }

    #[test]
    fn dominated_block_is_excluded() {
        let a = Objectives {
            height: 30.0,
            coherence: 0.8,
            density: 1.0,
        };
        let b = Objectives {
            height: 10.0,
            coherence: 0.5,
            density: 2.0,
        };
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        // Incomparable blocks both stay.
        let c = Objectives {
            height: 40.0,
            coherence: 0.2,
            density: 0.5,
        };
        assert!(!dominates(&a, &c) && !dominates(&c, &a));
    }

    #[test]
    fn pareto_front_is_nonempty_and_correct() {
        let mut d = Document::new("pf", 400.0, 300.0);
        let blocks = vec![
            block(&mut d, &[("big", 10.0, 10.0, 30.0)]),
            block(&mut d, &[("mid", 10.0, 60.0, 20.0)]),
            block(&mut d, &[("small", 10.0, 110.0, 10.0)]),
        ];
        let ips = interest_points(&d, &blocks, &LexiconEmbedding);
        assert!(!ips.is_empty());
        // Identical except height: only the tallest single-word block can
        // be non-dominated on height, but density differs too (same area
        // per word count); ensure the tallest is in.
        assert!(ips.contains(&0));
    }

    #[test]
    fn coherence_of_homogeneous_block_exceeds_mixed() {
        let mut d = Document::new("coh", 400.0, 300.0);
        let homog = block(
            &mut d,
            &[
                ("concert", 10.0, 10.0, 10.0),
                ("festival", 60.0, 10.0, 10.0),
            ],
        );
        let mixed = block(
            &mut d,
            &[("concert", 10.0, 60.0, 10.0), ("acres", 60.0, 60.0, 10.0)],
        );
        let oh = objectives(&d, &homog, &LexiconEmbedding);
        let om = objectives(&d, &mixed, &LexiconEmbedding);
        assert!(oh.coherence > om.coherence);
    }

    #[test]
    fn empty_blocks() {
        let d = Document::new("e", 10.0, 10.0);
        let ips = interest_points(&d, &[], &LexiconEmbedding);
        assert!(ips.is_empty());
    }
}
