//! JSON (de)serialization of pipeline configuration and results, enabled
//! by the `serde` feature: job specs and extraction results round-trip as
//! JSON, which the serving layer (`vs2-serve`) relies on.

use crate::pipeline::{DisambiguationMode, Extraction, Vs2Config};
use crate::plan::fingerprint::{FingerprintConfig, LayoutFingerprint};
use crate::plan::replay::{PlanConfig, PlanLeaf, PlanNode, SegmentationPlan, ValidationReject};
use crate::segment::cluster::ClusterConfig;
use crate::segment::delimiter::DelimiterConfig;
use crate::segment::merge::MergeConfig;
use crate::segment::SegmentConfig;
use crate::select::disambiguate::Eq2Weights;
use crate::select::learn::LearnConfig;

serde::impl_serde_struct!(DelimiterConfig {
    min_width_ratio,
    strong_width_ratio,
    min_drop
});
serde::impl_serde_struct!(ClusterConfig {
    w_position,
    w_height,
    w_color,
    w_angular,
    w_sum_angular,
    max_iters,
    collapse_factor
});
serde::impl_serde_struct!(MergeConfig {
    theta_min,
    theta_max,
    max_sweeps,
    min_pair_similarity,
    separation_gap_ratio
});
serde::impl_serde_struct!(SegmentConfig {
    deskew,
    cell_size,
    min_block_elements,
    max_depth,
    use_visual_clustering,
    use_semantic_merge,
    delimiter,
    cluster,
    merge
});
serde::impl_serde_struct!(Eq2Weights {
    alpha,
    beta,
    gamma,
    nu
});
serde::impl_serde_struct!(LearnConfig {
    min_support_frac,
    max_tree_size,
    max_patterns
});
serde::impl_serde_unit_enum!(DisambiguationMode {
    Multimodal,
    FirstMatch,
    Lesk
});
serde::impl_serde_struct!(Vs2Config {
    segment,
    weights,
    disambiguation,
    learn
});
serde::impl_serde_struct!(Extraction {
    entity,
    text,
    block_bbox,
    span_bbox,
    score
});
serde::impl_serde_struct!(FingerprintConfig {
    grid_cols,
    grid_rows,
    page_quantum
});
serde::impl_serde_struct!(LayoutFingerprint {
    page_w_q,
    page_h_q,
    n_texts,
    n_images,
    cells
});
serde::impl_serde_struct!(PlanConfig {
    fingerprint,
    cover_tolerance,
    page_tolerance,
    height_tolerance
});
serde::impl_serde_struct!(PlanNode {
    depth,
    bbox,
    count,
    is_leaf
});
serde::impl_serde_struct!(PlanLeaf {
    region,
    count,
    mean_height
});
serde::impl_serde_struct!(SegmentationPlan {
    page_w,
    page_h,
    total_elements,
    nodes,
    leaves
});
serde::impl_serde_unit_enum!(ValidationReject {
    PageMismatch,
    ElementCount,
    Uncovered,
    Ambiguous,
    LeafCount,
    LeafBounds,
    LeafHeight
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_round_trips() {
        let cfg = Vs2Config::default();
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: Vs2Config = serde_json::from_str(&json).unwrap();
        // Vs2Config has no PartialEq (it is Copy + Debug); compare the
        // canonical JSON forms instead.
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&cfg).unwrap()
        );
        assert!(
            json.contains("\"disambiguation\": \"Multimodal\""),
            "{json}"
        );
    }

    #[test]
    fn modified_config_survives() {
        let mut cfg = Vs2Config {
            disambiguation: DisambiguationMode::Lesk,
            weights: Eq2Weights::visual_heavy(),
            ..Vs2Config::default()
        };
        cfg.segment.max_depth = 3;
        cfg.segment.delimiter.min_drop = 2.5;
        let back: Vs2Config = serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
        assert_eq!(back.disambiguation, DisambiguationMode::Lesk);
        assert_eq!(back.weights, Eq2Weights::visual_heavy());
        assert_eq!(back.segment.max_depth, 3);
        assert_eq!(back.segment.delimiter.min_drop, 2.5);
    }

    #[test]
    fn segmentation_plan_round_trips() {
        use vs2_docmodel::{BBox, Document, TextElement};
        let mut doc = Document::new("roundtrip", 600.0, 800.0);
        for (bx, by) in [(60.0, 60.0), (60.0, 400.0)] {
            for i in 0..3 {
                doc.push_text(TextElement::word(
                    format!("w{i}"),
                    BBox::new(bx + i as f64 * 50.0, by, 40.0, 12.0),
                ));
            }
        }
        let tree = crate::segment::segment(&doc, &crate::segment::SegmentConfig::default());
        let plan = SegmentationPlan::capture(&doc, &tree);
        let json = serde_json::to_string(&plan).unwrap();
        let back: SegmentationPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        let fp = LayoutFingerprint::compute(&doc, &FingerprintConfig::default());
        let fp_back: LayoutFingerprint =
            serde_json::from_str(&serde_json::to_string(&fp).unwrap()).unwrap();
        assert_eq!(fp_back, fp);
        let rej: ValidationReject =
            serde_json::from_str(&serde_json::to_string(&ValidationReject::LeafBounds).unwrap())
                .unwrap();
        assert_eq!(rej, ValidationReject::LeafBounds);
    }

    #[test]
    fn extraction_round_trips() {
        let e = Extraction {
            entity: "who".into(),
            text: "James Wilson".into(),
            block_bbox: vs2_docmodel::BBox::new(1.0, 2.0, 3.0, 4.0),
            span_bbox: vs2_docmodel::BBox::new(1.5, 2.0, 2.0, 1.0),
            score: -0.25,
        };
        let back: Extraction = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        assert_eq!(back, e);
    }
}
