//! Visual-delimiter identification — Algorithm 1 of the paper.
//!
//! Given the candidate separator strips (runs of consecutive valid cuts)
//! inside a visual area, decide which strips are *visual delimiters*
//! between semantically diverse areas and which are ordinary intra-block
//! spacing (line leading, word gaps).
//!
//! The paper's Algorithm 1 rests on two assumptions: (a) the distribution
//! of inter-area separation differs from intra-area separation, and (b)
//! font size is uniform within a coherent area. Each run's width is
//! normalised by the height of its *neighbouring bounding box* (the
//! element at minimum distance from the strip), the runs are ranked by
//! normalised width, and the first inflection point of the ranked
//! distribution splits delimiters from spacing. The Pearson correlation
//! between run widths and neighbour heights is computed as the
//! diagnostic the algorithm scans (lines 8–11); an explicit minimum
//! width ratio guards degenerate distributions. Interpretation choices
//! are documented in DESIGN.md.

use crate::segment::cuts::CutRun;
use vs2_docmodel::{BBox, OccupancyGrid, Point};

/// A separator strip with its Algorithm-1 statistics.
#[derive(Debug, Clone, Copy)]
pub struct ScoredRun {
    /// The underlying run of consecutive valid cuts.
    pub run: CutRun,
    /// Strip extent in document units (`|s| ×` cell size).
    pub gap: f64,
    /// Height of the nearest neighbouring element bounding box.
    pub neighbor_height: f64,
    /// `gap / neighbor_height` — the normalised width of Algorithm 1.
    pub width: f64,
}

/// Tuning knobs for delimiter selection.
#[derive(Debug, Clone, Copy)]
pub struct DelimiterConfig {
    /// Runs narrower than this ratio of neighbouring text height are never
    /// delimiters (ordinary leading is ≈ 0.35 of the font size).
    pub min_width_ratio: f64,
    /// Runs at least this ratio are always delimiters.
    pub strong_width_ratio: f64,
    /// Minimum relative drop between ranked widths to accept an inflection.
    pub min_drop: f64,
}

impl Default for DelimiterConfig {
    fn default() -> Self {
        Self {
            min_width_ratio: 0.7,
            strong_width_ratio: 1.4,
            min_drop: 1.35,
        }
    }
}

/// The bounding box of the strip a run occupies, in document coordinates.
pub fn run_strip(run: &CutRun, grid: &OccupancyGrid, area: &BBox) -> BBox {
    run_strip_geom(run, grid.origin(), grid.cell_size(), area)
}

/// [`run_strip`] over bare raster geometry (origin + cell size) — the
/// grid-representation-independent form shared by the packed fast path.
pub fn run_strip_geom(run: &CutRun, origin: Point, cell: f64, area: &BBox) -> BBox {
    if run.horizontal {
        BBox::new(
            area.x,
            origin.y + run.start as f64 * cell,
            area.w,
            run.len as f64 * cell,
        )
    } else {
        BBox::new(
            origin.x + run.start as f64 * cell,
            area.y,
            run.len as f64 * cell,
            area.h,
        )
    }
}

/// Scores each run against the element boxes of the area.
///
/// `all_boxes` supplies the geometry (the true gap between the content on
/// either side of the strip); `text_boxes` supplies the neighbour-height
/// normalisation — text only, because an image's extent says nothing
/// about the local font size (assumption (b) of Algorithm 1 concerns
/// text). The *true* gap is used rather than the run's cardinality: drift
/// paths inflate a run by the page-margin width, which would distort the
/// width distribution Algorithm 1 ranks.
pub fn score_runs(
    runs: &[CutRun],
    grid: &OccupancyGrid,
    area: &BBox,
    all_boxes: &[BBox],
    text_boxes: &[BBox],
) -> Vec<ScoredRun> {
    score_runs_geom(
        runs,
        grid.origin(),
        grid.cell_size(),
        area,
        all_boxes,
        text_boxes,
    )
}

/// [`score_runs`] over bare raster geometry — shared with the packed fast
/// path, which has no [`OccupancyGrid`] to hand. The scoring touches only
/// the raster's origin and cell size, so both entry points compute the
/// same statistics by construction.
pub fn score_runs_geom(
    runs: &[CutRun],
    origin: Point,
    cell: f64,
    area: &BBox,
    all_boxes: &[BBox],
    text_boxes: &[BBox],
) -> Vec<ScoredRun> {
    let mut out = Vec::with_capacity(runs.len());
    score_runs_geom_into(runs, origin, cell, area, all_boxes, text_boxes, &mut out);
    out
}

/// [`score_runs_geom`] appending into a caller-owned buffer — the fast
/// path reuses one scored-run buffer across the whole recursion. Pushes
/// the same values in the same order as the allocating form.
#[allow(clippy::too_many_arguments)]
pub fn score_runs_geom_into(
    runs: &[CutRun],
    origin: Point,
    cell: f64,
    area: &BBox,
    all_boxes: &[BBox],
    text_boxes: &[BBox],
    out: &mut Vec<ScoredRun>,
) {
    let text_boxes = if text_boxes.is_empty() {
        all_boxes
    } else {
        text_boxes
    };
    let max_h = text_boxes.iter().map(|b| b.h).fold(0.0, f64::max).max(1e-9);
    out.extend(runs.iter().map(|run| {
        let strip = run_strip_geom(run, origin, cell, area);
        // Neighbouring bounding box: minimum distance from the strip.
        let neighbor_height = text_boxes
            .iter()
            .min_by(|a, b| strip.distance(a).total_cmp(&strip.distance(b)))
            .map(|b| b.h)
            .unwrap_or(max_h);
        // True gap: distance between the closest content on either
        // side of the strip centre. Falls back to the run extent for
        // offset layouts where the sides overlap.
        let center = strip.centroid();
        let gap = if run.horizontal {
            let above = all_boxes
                .iter()
                .filter(|b| b.centroid().y < center.y)
                .map(|b| b.bottom())
                .fold(f64::NEG_INFINITY, f64::max);
            let below = all_boxes
                .iter()
                .filter(|b| b.centroid().y > center.y)
                .map(|b| b.y)
                .fold(f64::INFINITY, f64::min);
            below - above
        } else {
            let left = all_boxes
                .iter()
                .filter(|b| b.centroid().x < center.x)
                .map(|b| b.right())
                .fold(f64::NEG_INFINITY, f64::max);
            let right = all_boxes
                .iter()
                .filter(|b| b.centroid().x > center.x)
                .map(|b| b.x)
                .fold(f64::INFINITY, f64::min);
            right - left
        };
        let gap = if gap.is_finite() && gap > 0.0 {
            gap
        } else {
            run.len as f64 * cell
        };
        ScoredRun {
            run: *run,
            gap,
            neighbor_height: neighbor_height.max(1e-9),
            width: gap / neighbor_height.max(1e-9),
        }
    }));
}

/// Pearson correlation coefficient; 0 when undefined.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let mx = xs[..n].iter().sum::<f64>() / n as f64;
    let my = ys[..n].iter().sum::<f64>() / n as f64;
    let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Running Pearson correlation between run widths and neighbour heights
/// over document-order prefixes — the diagnostic sequence of Algorithm 1
/// (lines 8–11).
pub fn correlation_profile(scored: &[ScoredRun]) -> Vec<f64> {
    let mut ordered: Vec<&ScoredRun> = scored.iter().collect();
    ordered.sort_by_key(|d| (d.run.horizontal, d.run.start));
    let ws: Vec<f64> = ordered.iter().map(|s| s.width).collect();
    let hs: Vec<f64> = ordered.iter().map(|s| s.neighbor_height).collect();
    (2..=ws.len())
        .map(|i| pearson(&ws[..i], &hs[..i]))
        .collect()
}

/// Selects the visual delimiters among scored runs.
///
/// Runs are ranked by normalised width (descending); the first inflection
/// point — the largest relative drop between consecutive ranked widths —
/// splits delimiters from intra-block spacing, guarded by the configured
/// width-ratio floor and ceiling.
pub fn select_delimiters(scored: &[ScoredRun], config: &DelimiterConfig) -> Vec<ScoredRun> {
    let mut ranked = Vec::new();
    let mut out = Vec::new();
    select_delimiters_into(scored, config, &mut ranked, &mut out);
    out
}

/// [`select_delimiters`] over caller-owned rank/output buffers — the
/// fast path reuses both across the whole recursion. `ranked` is scratch
/// (`ScoredRun` is `Copy`; a stable sort of copies ranks identically to
/// a stable sort of references); `out` receives the selected delimiters
/// in the same order as the allocating form.
pub fn select_delimiters_into(
    scored: &[ScoredRun],
    config: &DelimiterConfig,
    ranked: &mut Vec<ScoredRun>,
    out: &mut Vec<ScoredRun>,
) {
    out.clear();
    if scored.is_empty() {
        return;
    }
    ranked.clear();
    ranked.extend_from_slice(scored);
    ranked.sort_by(|a, b| b.width.total_cmp(&a.width));

    // First inflection: the largest relative drop in the ranked widths.
    // When no significant drop exists the spacing is uniform (assumption
    // (a) fails to discriminate) and only the strong-ratio rule applies.
    let mut split = 0;
    let mut best_drop = config.min_drop;
    for i in 0..ranked.len() - 1 {
        let hi = ranked[i].width;
        let lo = ranked[i + 1].width.max(1e-9);
        let drop = hi / lo;
        if drop > best_drop {
            best_drop = drop;
            split = i + 1;
        }
    }

    out.extend(ranked.iter().enumerate().filter_map(|(rank, s)| {
        if s.width < config.min_width_ratio {
            return None;
        }
        if s.width >= config.strong_width_ratio {
            return Some(*s);
        }
        // Mid-band: a horizontal strip that cleanly separates complete
        // lines is a delimiter at ≥ min ratio (intra-line content never
        // produces horizontal runs, so there is no uniform-leading
        // distribution to confuse it with once true gaps are used).
        // Vertical strips need the inflection contrast.
        if s.run.horizontal || rank < split {
            Some(*s)
        } else {
            None
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::cuts::{all_runs, CutRun};

    fn make(area: BBox, boxes: &[BBox]) -> (OccupancyGrid, Vec<CutRun>) {
        let grid = OccupancyGrid::rasterize(&area, boxes, 1.0);
        let runs = all_runs(&grid);
        (grid, runs)
    }

    /// Three lines of 10-unit text with 4-unit leading, then a 20-unit gap,
    /// then three more lines — the gap must be the only delimiter.
    fn two_paragraph_layout() -> (BBox, Vec<BBox>) {
        let area = BBox::new(0.0, 0.0, 100.0, 120.0);
        let mut boxes = Vec::new();
        let mut y = 2.0;
        for _ in 0..3 {
            boxes.push(BBox::new(2.0, y, 96.0, 10.0));
            y += 14.0; // 4-unit leading
        }
        y += 20.0; // inter-paragraph gap
        for _ in 0..3 {
            boxes.push(BBox::new(2.0, y, 96.0, 10.0));
            y += 14.0;
        }
        (area, boxes)
    }

    #[test]
    fn paragraph_gap_is_the_delimiter() {
        let (area, boxes) = two_paragraph_layout();
        let (grid, runs) = make(area, &boxes);
        let scored = score_runs(&runs, &grid, &area, &boxes, &boxes);
        // Interior strips only: ignore page-margin runs above/below all
        // content (the segmenter trims to content anyway).
        let interior: Vec<ScoredRun> = scored
            .into_iter()
            .filter(|s| s.run.horizontal && s.run.start > 2 && (s.run.end() as f64) < area.h - 2.0)
            .collect();
        let selected = select_delimiters(&interior, &DelimiterConfig::default());
        // The 24-unit gap (20 + leading) is selected; the 4-unit leadings
        // (width 0.4 < min ratio) are not.
        assert_eq!(selected.len(), 1, "{selected:?}");
        assert!(selected[0].gap >= 18.0);
    }

    #[test]
    fn uniform_leading_yields_no_delimiters() {
        let area = BBox::new(0.0, 0.0, 100.0, 100.0);
        let mut boxes = Vec::new();
        let mut y = 2.0;
        for _ in 0..6 {
            boxes.push(BBox::new(2.0, y, 96.0, 10.0));
            y += 14.0;
        }
        let (grid, runs) = make(area, &boxes);
        let scored = score_runs(&runs, &grid, &area, &boxes, &boxes);
        let interior: Vec<ScoredRun> = scored
            .into_iter()
            .filter(|s| s.run.horizontal && s.run.start > 2 && s.run.end() < 90)
            .collect();
        let selected = select_delimiters(&interior, &DelimiterConfig::default());
        assert!(selected.is_empty(), "{selected:?}");
    }

    #[test]
    fn normalisation_accounts_for_font_size() {
        // The same 12-unit gap: a delimiter next to 8-unit text, not next
        // to 30-unit text.
        let small_cfg = DelimiterConfig::default();
        let run = CutRun {
            horizontal: true,
            start: 10,
            len: 12,
        };
        let area = BBox::new(0.0, 0.0, 50.0, 50.0);
        let grid = OccupancyGrid::rasterize(&area, &[], 1.0);
        let small_text = vec![BBox::new(0.0, 0.0, 50.0, 8.0)];
        let big_text = vec![BBox::new(0.0, 0.0, 50.0, 30.0)];
        let s_small = score_runs(&[run], &grid, &area, &small_text, &small_text);
        let s_big = score_runs(&[run], &grid, &area, &big_text, &big_text);
        assert!(s_small[0].width > 1.0);
        assert!(s_big[0].width < 0.5);
        assert_eq!(select_delimiters(&s_small, &small_cfg).len(), 1);
        assert_eq!(select_delimiters(&s_big, &small_cfg).len(), 0);
    }

    #[test]
    fn pearson_basics() {
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let inv = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &inv) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0, "zero variance");
    }

    #[test]
    fn correlation_profile_length() {
        let (area, boxes) = two_paragraph_layout();
        let (grid, runs) = make(area, &boxes);
        let scored = score_runs(&runs, &grid, &area, &boxes, &boxes);
        let profile = correlation_profile(&scored);
        assert_eq!(profile.len(), scored.len().saturating_sub(1));
    }

    #[test]
    fn empty_inputs() {
        assert!(select_delimiters(&[], &DelimiterConfig::default()).is_empty());
        assert!(correlation_profile(&[]).is_empty());
    }

    #[test]
    fn strip_geometry() {
        let area = BBox::new(10.0, 20.0, 100.0, 50.0);
        let grid = OccupancyGrid::rasterize(&area, &[], 2.0);
        let run = CutRun {
            horizontal: true,
            start: 5,
            len: 3,
        };
        let strip = run_strip(&run, &grid, &area);
        assert_eq!(strip, BBox::new(10.0, 30.0, 100.0, 6.0));
        let vrun = CutRun {
            horizontal: false,
            start: 10,
            len: 2,
        };
        let vstrip = run_strip(&vrun, &grid, &area);
        assert_eq!(vstrip, BBox::new(30.0, 20.0, 4.0, 50.0));
    }
}
