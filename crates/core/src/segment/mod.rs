//! VS2-Segment: hierarchical page segmentation (§5.1 of the paper).
//!
//! The pipeline per visual area is: whitespace-cut detection ([`cuts`]) →
//! visual-delimiter selection, Algorithm 1 ([`delimiter`]) → implicit-
//! modifier clustering over Table 1 features ([`cluster`]) → recursive
//! splitting ([`segmenter`]) → semantic merging, Eq. 1 ([`merge`]).

pub mod cluster;
pub mod cuts;
pub mod delimiter;
pub mod deskew;
pub mod fast;
pub mod merge;
pub mod naive;
pub mod segmenter;

pub use cluster::ClusterConfig;
pub use cuts::{all_runs, cut_runs, horizontal_cuts, vertical_cuts, CutRun};
pub use delimiter::{correlation_profile, pearson, select_delimiters, DelimiterConfig, ScoredRun};
pub use deskew::{deskew, estimate_skew, rotate_elements, SKEW_EPSILON};
pub use merge::{semantic_merge, theta, MergeConfig};
pub use naive::{logical_blocks_naive, segment_naive};
pub use segmenter::{
    blocks_of_tree, logical_blocks, logical_blocks_ctx, segment, segment_with_embedder,
    LogicalBlock, SegmentConfig,
};
