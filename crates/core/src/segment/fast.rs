//! The packed segmentation fast path — same trees, fraction of the time.
//!
//! This module is the production implementation of VS2-Segment. The
//! original driver is preserved verbatim in [`naive`](crate::segment::naive)
//! as the executable specification; the differential battery
//! (`crates/conformance/tests/segment_equiv.rs`) holds this path to
//! byte-identical layout trees and extractions against it, and the
//! segment-perf release gate holds it to ≥3× the naive `vs2.segment` p50
//! on D1.
//!
//! Three changes carry the speedup, none of which moves a float:
//!
//! 1. **Word-packed whitespace sweeps.** Each area rasterises to a
//!    [`PackedGrid`] (same cell math as `OccupancyGrid`, bit-packed in
//!    both orientations) and the frontier sweep of
//!    [`cuts`](crate::segment::cuts) is re-expressed over whole words:
//!    consecutive non-drift hops are pre-ANDed into per-drift-group
//!    masks (`mask_only` is associative-commutative intersection, and a
//!    drift's own mask can absorb the following intersections:
//!    `(drift(F) ∩ m₃) ∩ m₄ ∩ m₅ = drift(F) ∩ (m₃∩m₄∩m₅)`), and the AND
//!    of *all* step masks accepts most origins instantly — an origin
//!    whose stationary path is whitespace the whole way across never
//!    needs its frontier simulated. Only the leftover origins run the
//!    drift recurrence, over two reused scratch buffers instead of one
//!    heap allocation per hop.
//! 2. **Incremental extents.** The naive driver re-derives each area's
//!    tight bounding box from scratch at every queue pop; the fast path
//!    reuses the box the node was created with (`add_child` already
//!    receives the fold over the part's element boxes), so a pop starts
//!    with zero geometry rescans. Per-element boxes are gathered into
//!    scratch vectors reused across the whole recursion.
//! 3. **Cached merge embeddings.** Naive semantic merging re-derives
//!    `node_embedding` — a full tokenise-hash-normalise pass over a
//!    node's words — for every candidate comparison, every sweep. The
//!    fast path keeps one embedding per live node in an arena-indexed
//!    cache, invalidated only for the absorbing node of a merge.
//!    [`node_embedding`](crate::segment::merge::node_embedding) is a pure
//!    function of the node's element list, so cached and recomputed
//!    vectors are identical by construction.
//!
//! On the FeatureTable-sharing side of the same fix: merge embeddings
//! intentionally do *not* reuse the select-side
//! [`BlockText`](crate::select::BlockText) tables. A `BlockText`
//! tokenises the block's text in reading order, while Eq. 1 embeds the
//! node's words in element order — swapping one for the other changes
//! embedding sums and therefore merge decisions. Instead, the per-pair
//! re-derivation is killed by the cache above, and the select stage
//! exposes [`Vs2Pipeline::block_texts`](crate::Vs2Pipeline::block_texts)
//! so downstream consumers share one `FeatureTable` per block (pinned by
//! the feature-table regression test in `segment_equiv.rs`).
//!
//! Spans: this path emits the same `vs2.segment.*` span tree as before
//! (AREA/GRID/CLUSTER/MERGE at identical points) plus two fast-path
//! children: `vs2.segment.fast.cuts` under each AREA (the packed sweep)
//! and `vs2.segment.fast.embed` under MERGE (per-sweep embedding-cache
//! fill). The naive module emits no spans.

use crate::segment::cluster::cluster;
use crate::segment::cuts::{cut_runs_into, CutRun, DRIFT_PERIOD};
use crate::segment::delimiter::{score_runs_geom_into, select_delimiters_into, ScoredRun};
use crate::segment::merge::{node_embedding, theta, visually_separated, MergeConfig};
use crate::segment::segmenter::{
    effective_cell_size, is_interior, split_by_delimiters, tight_bbox, SegmentConfig,
};
use vs2_docmodel::{BBox, Document, ElementRef, LayoutTree, NodeId, PackedGrid};
use vs2_nlp::embedding::{cosine, Embedder, Vector};

/// Reused buffers of the packed frontier sweep: group masks, the
/// all-steps AND, the accepted-origin set, and the two frontier words.
/// One `SweepScratch` serves the whole recursion — the naive sweep
/// allocates a fresh bitset per hop per origin.
#[derive(Default)]
struct SweepScratch {
    /// AND of the leading non-drift steps (identity when there are none).
    group0: Vec<u64>,
    /// Flattened per-drift-group masks, `words` words each.
    groups: Vec<u64>,
    /// AND of every step mask — the instant-accept filter.
    all_and: Vec<u64>,
    /// Accepted origins, assembled as a bitset.
    accepted: Vec<u64>,
    frontier: Vec<u64>,
    next: Vec<u64>,
}

/// Fills `words` with ones over `n` positions, trailing bits zero.
fn ones(words: &mut Vec<u64>, len: usize, n: usize) {
    words.clear();
    words.resize(len, u64::MAX);
    let excess = len * 64 - n;
    if excess > 0 {
        if let Some(last) = words.last_mut() {
            *last &= u64::MAX >> excess;
        }
    }
}

/// The packed equivalent of `cuts::sweep` over one grid orientation.
/// Clears `out` and fills it with the same origins, ascending.
/// `horizontal` selects per-column masks over rows (horizontal cuts);
/// otherwise per-row masks over columns.
fn sweep_packed_into(
    grid: &PackedGrid,
    horizontal: bool,
    s: &mut SweepScratch,
    out: &mut Vec<usize>,
) {
    let (n_steps, n_positions) = if horizontal {
        (grid.cols(), grid.rows())
    } else {
        (grid.rows(), grid.cols())
    };
    let mask = |step: usize| -> &[u64] {
        if horizontal {
            grid.col_whitespace(step)
        } else {
            grid.row_whitespace(step)
        }
    };
    let words = n_positions.div_ceil(64);

    // Group the hop sequence. Steps 1..DRIFT_PERIOD are plain
    // intersections; from there, each group starts with a drift at step
    // d (d % DRIFT_PERIOD == 0) whose mask absorbs the following
    // intersections up to the next drift.
    ones(&mut s.group0, words, n_positions);
    for step in 1..n_steps.min(DRIFT_PERIOD) {
        for (w, m) in s.group0.iter_mut().zip(mask(step)) {
            *w &= m;
        }
    }
    s.groups.clear();
    let mut n_groups = 0;
    let mut d = DRIFT_PERIOD;
    while d < n_steps {
        let base = s.groups.len();
        s.groups.extend_from_slice(mask(d));
        for step in d + 1..(d + DRIFT_PERIOD).min(n_steps) {
            for (w, m) in s.groups[base..].iter_mut().zip(mask(step)) {
                *w &= m;
            }
        }
        n_groups += 1;
        d += DRIFT_PERIOD;
    }

    // AND of every step mask: an origin with a stationary whitespace
    // path needs no frontier simulation at all.
    s.all_and.clear();
    s.all_and.extend_from_slice(&s.group0);
    for g in 0..n_groups {
        for (w, m) in s
            .all_and
            .iter_mut()
            .zip(&s.groups[g * words..(g + 1) * words])
        {
            *w &= m;
        }
    }

    let origin = mask(0);
    s.accepted.clear();
    s.accepted
        .extend(origin.iter().zip(&s.all_and).map(|(o, a)| o & a));

    // Simulate only the origins the shortcut could not settle.
    for (wi, origin_word) in origin.iter().enumerate() {
        let mut pending = origin_word & !s.all_and[wi];
        while pending != 0 {
            let bit = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            if s.group0[wi] >> bit & 1 == 0 {
                continue;
            }
            s.frontier.clear();
            s.frontier.resize(words, 0);
            s.frontier[wi] = 1 << bit;
            let mut alive = true;
            for g in 0..n_groups {
                let gmask = &s.groups[g * words..(g + 1) * words];
                s.next.clear();
                s.next.resize(words, 0);
                let mut any = 0u64;
                for (i, gm) in gmask.iter().enumerate() {
                    let w = s.frontier[i];
                    let mut v = w | (w << 1) | (w >> 1);
                    if i > 0 {
                        v |= s.frontier[i - 1] >> 63;
                    }
                    if i + 1 < words {
                        v |= s.frontier[i + 1] << 63;
                    }
                    let v = v & gm;
                    s.next[i] = v;
                    any |= v;
                }
                std::mem::swap(&mut s.frontier, &mut s.next);
                if any == 0 {
                    alive = false;
                    break;
                }
            }
            if alive {
                s.accepted[wi] |= 1 << bit;
            }
        }
    }

    out.clear();
    for wi in 0..words {
        let mut w = s.accepted[wi];
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            w &= w - 1;
            out.push(wi * 64 + bit);
        }
    }
}

/// Both kinds of runs for a packed grid — the fast equivalent of
/// [`all_runs`](crate::segment::cuts::all_runs). Clears `runs` and fills
/// it; `origins` is scratch for the sweeps.
fn packed_all_runs_into(
    grid: &PackedGrid,
    scratch: &mut SweepScratch,
    origins: &mut Vec<usize>,
    runs: &mut Vec<CutRun>,
) {
    runs.clear();
    if grid.cols() == 0 || grid.rows() == 0 {
        return;
    }
    sweep_packed_into(grid, true, scratch, origins);
    cut_runs_into(origins, true, runs);
    sweep_packed_into(grid, false, scratch, origins);
    cut_runs_into(origins, false, runs);
}

/// The fast recursion body: identical control flow to
/// [`naive::segment_body_naive`](crate::segment::naive), with the packed
/// raster, grouped sweeps, incremental extents and cached merge
/// embeddings substituted underneath.
/// The merge embedder is injected — the zero-copy pipeline passes the
/// per-job memoising embedder ([`crate::context::CtxEmbedder`]) here;
/// `embed` purity keeps the result bit-identical to the default
/// [`LexiconEmbedding`].
pub(crate) fn segment_body_fast_with<E: Embedder>(
    doc: &Document,
    config: &SegmentConfig,
    embedder: &E,
) -> LayoutTree {
    let all = doc.element_refs();
    let root_bbox = if all.is_empty() {
        doc.page_bbox()
    } else {
        tight_bbox(doc, &all)
    };
    let mut tree = LayoutTree::new(root_bbox, all.clone());
    let mut queue: Vec<(NodeId, usize)> = vec![(tree.root(), 0)];
    let mut boxes: Vec<BBox> = Vec::new();
    let mut text_boxes: Vec<BBox> = Vec::new();
    let mut scratch = SweepScratch::default();
    // Per-pop working buffers, reused across the whole recursion: the
    // node's element list (copied out so the tree stays mutable), sweep
    // origins, cut runs, scored runs and the two delimiter-selection
    // buffers. Only the child element lists are allocated per node — the
    // tree owns those.
    let mut elements: Vec<ElementRef> = Vec::new();
    let mut origins: Vec<usize> = Vec::new();
    let mut runs: Vec<CutRun> = Vec::new();
    let mut scored: Vec<ScoredRun> = Vec::new();
    let mut ranked: Vec<ScoredRun> = Vec::new();
    let mut delims: Vec<ScoredRun> = Vec::new();

    while let Some((node, depth)) = queue.pop() {
        if depth >= config.max_depth {
            continue;
        }
        elements.clear();
        elements.extend_from_slice(&tree.node(node).elements);
        if elements.len() < config.min_block_elements.max(2) {
            continue;
        }
        let area_span = vs2_obs::span(vs2_obs::stages::AREA);
        area_span.tag("depth", depth as u64);
        area_span.tag("elements", elements.len() as u64);
        // Incremental extent recomputation: the node's bbox was already
        // folded tight over exactly these elements when the node was
        // created (root and children alike), so the naive full rescan at
        // every pop is redundant.
        let tight = tree.node(node).bbox;
        let cell = effective_cell_size(&tight.inflate(config.cell_size), config.cell_size);
        let area = tight.inflate(cell);
        boxes.clear();
        text_boxes.clear();
        for r in &elements {
            let b = doc.bbox_of(*r);
            boxes.push(b);
            if r.is_text() {
                text_boxes.push(b);
            }
        }
        let norm_boxes = if text_boxes.is_empty() {
            &boxes
        } else {
            &text_boxes
        };
        let grid = {
            let _grid_span = vs2_obs::span(vs2_obs::stages::GRID);
            PackedGrid::rasterize(&area, &boxes, cell)
        };

        // Phase 1: explicit delimiters, over the packed sweep.
        {
            let _cuts_span = vs2_obs::span(vs2_obs::stages::FAST_CUTS);
            packed_all_runs_into(&grid, &mut scratch, &mut origins, &mut runs);
        }
        scored.clear();
        score_runs_geom_into(
            &runs,
            grid.origin(),
            cell,
            &area,
            &boxes,
            norm_boxes,
            &mut scored,
        );
        // In-place interior filter: `retain` keeps order, matching the
        // collecting filter of the allocating form.
        scored.retain(|s| is_interior(s, &boxes, &area, cell));
        select_delimiters_into(&scored, &config.delimiter, &mut ranked, &mut delims);

        let mut parts: Vec<Vec<ElementRef>> = Vec::new();
        if let Some(widest) = delims.iter().max_by(|a, b| a.width.total_cmp(&b.width)) {
            let horizontal = widest.run.horizontal;
            parts = split_by_delimiters(doc, &elements, &delims, horizontal, &area, cell);
        }

        // Phase 2: implicit modifiers via clustering.
        if parts.len() < 2 && config.use_visual_clustering {
            let _cluster_span = vs2_obs::span(vs2_obs::stages::CLUSTER);
            let clustered = cluster(doc, &area, &elements, &config.cluster);
            if clustered.len() >= 2 {
                parts = clustered;
            }
        }

        if parts.len() >= 2 {
            for part in parts {
                let bbox = tight_bbox(doc, &part);
                let child = tree.add_child(node, bbox, part);
                queue.push((child, depth + 1));
            }
        }
    }

    if config.use_semantic_merge {
        let _merge_span = vs2_obs::span(vs2_obs::stages::MERGE);
        semantic_merge_fast(doc, &mut tree, embedder, &config.merge);
    }
    tree
}

/// Returns the cached embedding of `id`, computing and storing it on the
/// first request since the node's elements last changed.
fn cached_embedding<E: Embedder>(
    cache: &mut Vec<Option<Vector>>,
    doc: &Document,
    tree: &LayoutTree,
    embedder: &E,
    id: NodeId,
) -> Vector {
    if cache.len() <= id.0 {
        cache.resize(id.0 + 1, None);
    }
    if let Some(v) = cache[id.0] {
        return v;
    }
    let v = node_embedding(doc, &tree.node(id).elements, embedder);
    cache[id.0] = Some(v);
    v
}

/// Semantic merging with an arena-indexed embedding cache. The decision
/// sequence — sweep structure, parent/child iteration order, Eq. 1
/// scores, tie-breaks and separation guards — is byte-for-byte the one
/// in [`semantic_merge`](crate::segment::merge::semantic_merge); only the
/// redundant per-comparison embedding recomputation is gone. Returns the
/// number of merges performed.
pub(crate) fn semantic_merge_fast<E: Embedder>(
    doc: &Document,
    tree: &mut LayoutTree,
    embedder: &E,
    cfg: &MergeConfig,
) -> usize {
    let mut cache: Vec<Option<Vector>> = Vec::new();
    let mut merges = 0;
    // Sweep-scoped scratch, reused across all sweeps. Each buffer is
    // cleared and refilled in the same order the per-sweep collects
    // produced, so every sum and comparison sees identical sequences.
    let mut parents: Vec<NodeId> = Vec::new();
    let mut children: Vec<NodeId> = Vec::new();
    let mut embeddings: Vec<Vector> = Vec::new();
    let mut same_level: Vec<NodeId> = Vec::new();
    let mut sibling_sims: Vec<f64> = Vec::new();
    let mut non_sibling_sims: Vec<f64> = Vec::new();
    for _ in 0..cfg.max_sweeps {
        let h = tree.height();
        let threshold = theta(cfg, h);
        let mut merged_this_sweep = false;

        {
            // Pre-fill the cache for every live node; embeddings are pure
            // in the element list, so extra fills cannot change decisions.
            let _embed_span = vs2_obs::span(vs2_obs::stages::FAST_EMBED);
            for id in tree.live_ids() {
                cached_embedding(&mut cache, doc, tree, embedder, id);
            }
        }

        parents.clear();
        parents.extend(
            tree.live_ids()
                .filter(|id| tree.node(*id).children.len() >= 2),
        );
        'outer: for &parent in &parents {
            children.clear();
            children.extend(
                tree.node(parent)
                    .children
                    .iter()
                    .copied()
                    .filter(|c| tree.node(*c).is_leaf()),
            );
            if children.len() < 2 {
                continue;
            }
            embeddings.clear();
            for &child in &children {
                let e = cached_embedding(&mut cache, doc, tree, embedder, child);
                embeddings.push(e);
            }
            for (ci, &c) in children.iter().enumerate() {
                tree.same_level_into(c, &mut same_level);
                sibling_sims.clear();
                sibling_sims.extend(
                    (0..children.len())
                        .filter(|&j| j != ci)
                        .map(|j| cosine(&embeddings[ci], &embeddings[j])),
                );
                non_sibling_sims.clear();
                for &n in &same_level {
                    if children.contains(&n) {
                        continue;
                    }
                    let e = cached_embedding(&mut cache, doc, tree, embedder, n);
                    non_sibling_sims.push(cosine(&embeddings[ci], &e));
                }
                let avg = |v: &[f64]| {
                    if v.is_empty() {
                        0.0
                    } else {
                        v.iter().sum::<f64>() / v.len() as f64
                    }
                };
                let sc = avg(&sibling_sims) - avg(&non_sibling_sims);
                if sc <= threshold {
                    continue;
                }
                let best = (0..children.len()).filter(|&j| j != ci).max_by(|&a, &b| {
                    cosine(&embeddings[ci], &embeddings[a])
                        .total_cmp(&cosine(&embeddings[ci], &embeddings[b]))
                });
                let Some(bj) = best else { continue };
                if cosine(&embeddings[ci], &embeddings[bj]) < cfg.min_pair_similarity {
                    continue;
                }
                let b = children[bj];
                if visually_separated(doc, tree, c, b, &children, cfg.separation_gap_ratio) {
                    continue;
                }
                tree.merge_siblings(c, b);
                // The absorbing node's element list changed; the absorbed
                // node is dead and never consulted again.
                cache[c.0] = None;
                cache[b.0] = None;
                merges += 1;
                merged_this_sweep = true;
                break 'outer; // tree changed — recompute from scratch
            }
        }
        if !merged_this_sweep {
            break;
        }
    }
    merges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::cuts::{horizontal_cuts, vertical_cuts};
    use crate::segment::naive::segment_naive;
    use crate::segment::segment;
    use vs2_docmodel::{OccupancyGrid, TextElement};
    use vs2_nlp::LexiconEmbedding;

    fn sweep_packed(grid: &PackedGrid, horizontal: bool, s: &mut SweepScratch) -> Vec<usize> {
        let mut out = Vec::new();
        sweep_packed_into(grid, horizontal, s, &mut out);
        out
    }

    fn packed_all_runs(grid: &PackedGrid, scratch: &mut SweepScratch) -> Vec<CutRun> {
        let (mut origins, mut runs) = (Vec::new(), Vec::new());
        packed_all_runs_into(grid, scratch, &mut origins, &mut runs);
        runs
    }

    /// Packed sweeps agree with the reference bitset sweep, origin for
    /// origin, over hand-built rasters including word-boundary sizes.
    fn assert_cuts_match(area: BBox, boxes: &[BBox], cell: f64) {
        let occ = OccupancyGrid::rasterize(&area, boxes, cell);
        let packed = PackedGrid::rasterize(&area, boxes, cell);
        let mut scratch = SweepScratch::default();
        if occ.cols() == 0 || occ.rows() == 0 {
            assert!(packed_all_runs(&packed, &mut scratch).is_empty());
            return;
        }
        assert_eq!(
            horizontal_cuts(&occ),
            sweep_packed(&packed, true, &mut scratch),
            "horizontal origins"
        );
        assert_eq!(
            vertical_cuts(&occ),
            sweep_packed(&packed, false, &mut scratch),
            "vertical origins"
        );
    }

    #[test]
    fn packed_sweep_matches_reference() {
        assert_cuts_match(BBox::new(0.0, 0.0, 40.0, 40.0), &[], 1.0);
        assert_cuts_match(
            BBox::new(0.0, 0.0, 40.0, 40.0),
            &[BBox::new(0.0, 10.0, 40.0, 10.0)],
            1.0,
        );
        // The drift fixture from the reference suite.
        assert_cuts_match(
            BBox::new(0.0, 0.0, 40.0, 40.0),
            &[
                BBox::new(0.0, 10.0, 18.0, 10.0),
                BBox::new(22.0, 12.0, 18.0, 10.0),
            ],
            1.0,
        );
        // Word-boundary heights: 63/64/65/128 rows force partial and
        // exact trailing words in the frontier.
        for h in [63.0, 64.0, 65.0, 128.0] {
            assert_cuts_match(
                BBox::new(0.0, 0.0, 30.0, h),
                &[
                    BBox::new(0.0, h / 2.0, 30.0, 5.0),
                    BBox::new(4.0, 3.0, 9.0, h - 8.0),
                ],
                1.0,
            );
        }
        // Single row / single column.
        assert_cuts_match(
            BBox::new(0.0, 0.0, 100.0, 1.0),
            &[BBox::new(10.0, 0.0, 5.0, 1.0)],
            1.0,
        );
        assert_cuts_match(
            BBox::new(0.0, 0.0, 1.0, 100.0),
            &[BBox::new(0.0, 10.0, 1.0, 5.0)],
            1.0,
        );
    }

    #[test]
    fn packed_sweep_matches_on_staggered_obstacles() {
        // Offset boxes exercising the drift groups across several
        // periods, including paths that must drift more than once.
        let mut boxes = Vec::new();
        for i in 0..6 {
            boxes.push(BBox::new(i as f64 * 7.0, 8.0 + i as f64 * 1.5, 6.0, 20.0));
        }
        assert_cuts_match(BBox::new(0.0, 0.0, 42.0, 64.0), &boxes, 1.0);
        assert_cuts_match(BBox::new(0.0, 0.0, 42.0, 40.0), &boxes, 2.0);
    }

    #[test]
    fn huge_sparse_page_is_capped_not_oom() {
        // MAX_GRID_CELLS-capped page: two far-apart words on a giant
        // canvas must grow the cell, not the raster, and fast == naive.
        let mut d = Document::new("huge", 1.0e7, 1.0e7);
        d.push_text(TextElement::word(
            "concert",
            BBox::new(10.0, 10.0, 40.0, 10.0),
        ));
        d.push_text(TextElement::word(
            "acres",
            BBox::new(9.0e6, 9.0e6, 40.0, 10.0),
        ));
        let cfg = SegmentConfig::default();
        let fast = segment(&d, &cfg);
        let naive = segment_naive(&d, &cfg);
        assert_eq!(fast, naive);
    }

    #[test]
    fn fast_tree_equals_naive_tree_on_unit_fixtures() {
        // The segmenter's own fixture: two paragraphs.
        let mut d = Document::new("seg", 200.0, 200.0);
        for (y0, word) in [(10.0, "concert"), (120.0, "acres")] {
            for line in 0..3 {
                for col in 0..4 {
                    d.push_text(TextElement::word(
                        word,
                        BBox::new(
                            10.0 + col as f64 * 45.0,
                            y0 + line as f64 * 14.0,
                            40.0,
                            10.0,
                        ),
                    ));
                }
            }
        }
        for cfg in [
            SegmentConfig::default(),
            SegmentConfig {
                use_semantic_merge: false,
                ..SegmentConfig::default()
            },
            SegmentConfig {
                use_visual_clustering: false,
                ..SegmentConfig::default()
            },
        ] {
            let fast = segment(&d, &cfg);
            let naive = segment_naive(&d, &cfg);
            assert_eq!(fast, naive, "trees diverge under {cfg:?}");
            assert_eq!(format!("{fast:?}"), format!("{naive:?}"));
        }
    }

    #[test]
    fn fast_merge_matches_naive_merge_counts() {
        use crate::segment::merge::{semantic_merge, MergeConfig};
        let mut d = Document::new("m", 200.0, 100.0);
        let words = [
            ("concert", 10.0, 10.0),
            ("festival", 10.0, 25.0),
            ("workshop", 10.0, 40.0),
            ("acres", 150.0, 10.0),
            ("sqft", 150.0, 25.0),
            ("beds", 150.0, 40.0),
        ];
        let mut refs = Vec::new();
        for (w, x, y) in words {
            refs.push(d.push_text(TextElement::word(w, BBox::new(x, y, 30.0, 10.0))));
        }
        let build = |d: &Document| {
            let mut tree = LayoutTree::new(d.page_bbox(), refs.clone());
            for r in &refs[..3] {
                tree.add_child(tree.root(), d.bbox_of(*r), vec![*r]);
            }
            tree.add_child(
                tree.root(),
                BBox::new(150.0, 10.0, 30.0, 40.0),
                vec![refs[3], refs[4], refs[5]],
            );
            tree
        };
        let mut t_naive = build(&d);
        let mut t_fast = build(&d);
        let cfg = MergeConfig::default();
        let m_naive = semantic_merge(&d, &mut t_naive, &LexiconEmbedding, &cfg);
        let m_fast = semantic_merge_fast(&d, &mut t_fast, &LexiconEmbedding, &cfg);
        assert_eq!(m_naive, m_fast);
        assert_eq!(t_naive, t_fast);
    }
}
