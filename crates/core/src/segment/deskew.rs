//! Skew estimation and correction — the "cleaning" step of Fig. 2.
//!
//! The paper's workflow "starts with cleaning (which includes perspective
//! warping, skew correction, and binarization)" before localisation. In
//! this reproduction the only geometric distortion the OCR channel
//! introduces is a global rotation, so cleaning reduces to deskewing:
//! estimate the page's skew angle from the text lines and rotate the
//! element boxes back.
//!
//! Estimation fits a straight line through each text line's word
//! centroids (least squares) and takes the median slope — robust to
//! short lines and to the odd vertical feature.

use std::cell::RefCell;

use vs2_docmodel::{BBox, Document, Point};

/// Minimum words on a line for its slope to vote.
const MIN_LINE_WORDS: usize = 3;

/// Reused estimation buffers (cleared and refilled on every call, so
/// reuse is a pure capacity optimisation).
#[derive(Default)]
struct SkewScratch {
    items: Vec<BBox>,
    line_boxes: Vec<BBox>,
    tagged: Vec<(u32, Point)>,
    slopes: Vec<f64>,
}

thread_local! {
    static SKEW_SCRATCH: RefCell<SkewScratch> = RefCell::new(SkewScratch::default());
}

/// Skew angles below this magnitude (radians) are treated as noise: the
/// segmenter analyses the raw geometry without rotating, and the plan
/// cache considers the document un-skewed.
pub const SKEW_EPSILON: f64 = 0.005;

/// Estimates the page skew in radians (positive = clockwise text flow).
/// Returns 0.0 when too few usable lines exist.
pub fn estimate_skew(doc: &Document) -> f64 {
    SKEW_SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        // Group words into lines by vertical overlap (same rule the reading
        // order uses). Points are tagged with the (first-matching) line they
        // join; iterating the flat tagged list filtered by line preserves
        // each line's insertion order, so the per-line least-squares sums
        // below are bit-identical to a per-line point list.
        let items = &mut scratch.items;
        items.clear();
        items.extend(doc.texts.iter().map(|t| t.bbox));
        items.sort_by(|a, b| a.y.total_cmp(&b.y));
        let line_boxes = &mut scratch.line_boxes;
        line_boxes.clear();
        let tagged = &mut scratch.tagged;
        tagged.clear();
        for &b in items.iter() {
            let c = b.centroid();
            let mut placed = None;
            for (li, lb) in line_boxes.iter_mut().enumerate() {
                let overlap = (lb.bottom().min(b.bottom()) - lb.y.max(b.y)).max(0.0);
                if overlap / lb.h.min(b.h).max(1e-9) > 0.5 {
                    *lb = lb.union(&b);
                    placed = Some(li as u32);
                    break;
                }
            }
            let li = placed.unwrap_or_else(|| {
                line_boxes.push(b);
                (line_boxes.len() - 1) as u32
            });
            tagged.push((li, c));
        }

        // Least-squares slope per line; median over lines.
        let slopes = &mut scratch.slopes;
        slopes.clear();
        for li in 0..line_boxes.len() as u32 {
            let pts = || tagged.iter().filter(|(l, _)| *l == li).map(|(_, p)| p);
            let count = pts().count();
            if count < MIN_LINE_WORDS {
                continue;
            }
            let n = count as f64;
            let mx = pts().map(|p| p.x).sum::<f64>() / n;
            let my = pts().map(|p| p.y).sum::<f64>() / n;
            let sxx: f64 = pts().map(|p| (p.x - mx).powi(2)).sum();
            if sxx < 1e-9 {
                continue;
            }
            let sxy: f64 = pts().map(|p| (p.x - mx) * (p.y - my)).sum();
            slopes.push(sxy / sxx);
        }
        if slopes.is_empty() {
            return 0.0;
        }
        slopes.sort_by(|a, b| a.total_cmp(b));
        slopes[slopes.len() / 2].atan()
    })
}

fn rotate_bbox(b: &BBox, center: Point, cos: f64, sin: f64) -> BBox {
    let c = b.centroid();
    let dx = c.x - center.x;
    let dy = c.y - center.y;
    let nx = center.x + dx * cos - dy * sin;
    let ny = center.y + dx * sin + dy * cos;
    BBox::new(nx - b.w / 2.0, ny - b.h / 2.0, b.w, b.h)
}

/// Rotates every element box by `-angle` around the page centre,
/// straightening an `angle`-skewed page. Text content is untouched.
pub fn rotate_elements(doc: &Document, angle: f64) -> Document {
    let mut out = doc.clone();
    let center = Point::new(doc.width / 2.0, doc.height / 2.0);
    let (sin, cos) = (-angle).sin_cos();
    for t in out.texts.iter_mut() {
        t.bbox = rotate_bbox(&t.bbox, center, cos, sin);
    }
    for i in out.images.iter_mut() {
        i.bbox = rotate_bbox(&i.bbox, center, cos, sin);
    }
    out
}

/// The cleaning step: estimates the skew and returns the straightened
/// document together with the removed angle (radians). Angles below ~0.1°
/// are ignored (no distortion to correct).
pub fn deskew(doc: &Document) -> (Document, f64) {
    let angle = estimate_skew(doc);
    if angle.abs() < 0.002 {
        return (doc.clone(), 0.0);
    }
    (rotate_elements(doc, angle), angle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::TextElement;

    /// A three-line page rotated by `deg` degrees.
    fn skewed_doc(deg: f64) -> Document {
        let mut d = Document::new("skew", 400.0, 200.0);
        for line in 0..3 {
            for col in 0..6 {
                d.push_text(TextElement::word(
                    "word",
                    BBox::new(
                        20.0 + col as f64 * 60.0,
                        30.0 + line as f64 * 40.0,
                        50.0,
                        10.0,
                    ),
                ));
            }
        }
        rotate_elements(&d, -deg.to_radians())
    }

    #[test]
    fn estimates_known_skew() {
        for deg in [1.0f64, 2.5, -3.0] {
            let d = skewed_doc(deg);
            let est = estimate_skew(&d).to_degrees();
            assert!((est - deg).abs() < 0.4, "deg {deg}: estimated {est:.2}");
        }
    }

    #[test]
    fn straight_page_estimates_zero() {
        let d = skewed_doc(0.0);
        assert!(estimate_skew(&d).abs() < 1e-6);
        let (out, removed) = deskew(&d);
        assert_eq!(removed, 0.0);
        assert_eq!(out, d);
    }

    #[test]
    fn deskew_straightens_lines() {
        let d = skewed_doc(3.0);
        let (out, removed) = deskew(&d);
        assert!(removed.abs() > 0.02, "removed {removed}");
        let residual = estimate_skew(&out).to_degrees().abs();
        assert!(residual < 0.5, "residual skew {residual:.2}");
    }

    #[test]
    fn empty_and_sparse_documents() {
        let d = Document::new("e", 10.0, 10.0);
        assert_eq!(estimate_skew(&d), 0.0);
        let mut sparse = Document::new("s", 100.0, 100.0);
        sparse.push_text(TextElement::word("one", BBox::new(1.0, 1.0, 10.0, 5.0)));
        assert_eq!(estimate_skew(&sparse), 0.0, "too few words per line");
    }

    #[test]
    fn rotation_roundtrip_preserves_extents() {
        let d = skewed_doc(2.0);
        let (out, _) = deskew(&d);
        assert_eq!(out.texts.len(), d.texts.len());
        for (a, b) in d.texts.iter().zip(&out.texts) {
            assert_eq!(a.text, b.text);
            assert!((a.bbox.w - b.bbox.w).abs() < 1e-9);
            assert!((a.bbox.h - b.bbox.h).abs() < 1e-9);
        }
    }
}
