//! Visual clustering of atomic elements (§5.1.2, Table 1).
//!
//! When no explicit visual delimiter is found inside an area, VS2-Segment
//! groups the atomic elements by pairwise similarity of low-level visual
//! features — the implicit modifiers (proximity, alignment, negative
//! space) that whitespace cuts cannot see. Table 1's features are used:
//! centroid position, bounding-box height, average Lab colour, angular
//! distance of the centroid from the origin, and the (pairwise) sum of
//! angular distances. The process is seeded from a 2×2 grid over the
//! area (the medoid of each occupied cell) and elements are iteratively
//! reassigned to their nearest cluster until a fixed point.

use std::cell::RefCell;

use vs2_docmodel::{BBox, Document, ElementRef, Lab, Point};

/// The Table 1 feature encoding of one atomic element, normalised to the
/// enclosing area.
#[derive(Debug, Clone, Copy)]
pub struct VisualFeatures {
    /// Centroid, normalised to the area (`[0,1]²`).
    pub centroid: Point,
    /// Bounding-box height, normalised by the tallest element.
    pub height: f64,
    /// Average colour.
    pub color: Lab,
    /// Angular distance of the centroid from the area origin, in
    /// `[0, π/2]`, normalised to `[0, 1]`.
    pub angular: f64,
}

/// Relative weights of the feature groups in the pairwise distance.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Weight of centroid proximity.
    pub w_position: f64,
    /// Weight of height (font-size) difference.
    pub w_height: f64,
    /// Weight of colour difference (ΔE, scaled by 1/100).
    pub w_color: f64,
    /// Weight of angular-distance difference.
    pub w_angular: f64,
    /// Weight of the pairwise sum-of-angular-distances feature.
    pub w_sum_angular: f64,
    /// Maximum reassignment sweeps.
    pub max_iters: usize,
    /// Two clusters collapse when their average inter-cluster distance is
    /// below this multiple of the larger intra-cluster spread — the guard
    /// that keeps a visually homogeneous area in one cluster instead of
    /// four grid shards.
    pub collapse_factor: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            w_position: 1.0,
            w_height: 0.6,
            w_color: 0.4,
            w_angular: 0.15,
            w_sum_angular: 0.05,
            max_iters: 12,
            collapse_factor: 1.6,
        }
    }
}

fn features_of(doc: &Document, area: &BBox, r: ElementRef, max_h: f64) -> VisualFeatures {
    let b = doc.bbox_of(r);
    let c = b.centroid();
    let color = match r {
        ElementRef::Text(i) => doc.texts[i].color,
        ElementRef::Image(i) => doc.images[i].avg_color,
    };
    let local = Point::new(
        ((c.x - area.x) / area.w.max(1e-9)).clamp(0.0, 1.0),
        ((c.y - area.y) / area.h.max(1e-9)).clamp(0.0, 1.0),
    );
    VisualFeatures {
        centroid: local,
        height: b.h / max_h.max(1e-9),
        color,
        angular: local.angular_distance() / std::f64::consts::FRAC_PI_2,
    }
}

/// Pairwise distance in the Table 1 feature space.
pub fn feature_distance(a: &VisualFeatures, b: &VisualFeatures, cfg: &ClusterConfig) -> f64 {
    let dpos = a.centroid.distance(&b.centroid);
    let dh = (a.height - b.height).abs();
    let dc = a.color.delta_e(&b.color) / 100.0;
    let da = (a.angular - b.angular).abs();
    let sa = a.angular + b.angular; // sum of angular distances (Table 1)
    cfg.w_position * dpos
        + cfg.w_height * dh
        + cfg.w_color * dc
        + cfg.w_angular * da
        + cfg.w_sum_angular * sa
}

/// Reused working buffers of one thread's cluster calls — cleared and
/// refilled identically on every call, so reuse cannot change decisions.
#[derive(Default)]
struct ClusterScratch {
    feats: Vec<VisualFeatures>,
    seeds: Vec<usize>,
    members: Vec<usize>,
    assign: Vec<usize>,
    parts: Vec<Vec<usize>>,
}

thread_local! {
    static CLUSTER_SCRATCH: RefCell<ClusterScratch> = RefCell::new(ClusterScratch::default());
}

/// Clusters the elements of an area. Returns a partition (each part
/// non-empty); a single part means "no split found".
pub fn cluster(
    doc: &Document,
    area: &BBox,
    elements: &[ElementRef],
    cfg: &ClusterConfig,
) -> Vec<Vec<ElementRef>> {
    // Images are atomic visual units: each forms its own part, and only
    // the text elements participate in feature clustering (merging text
    // into an image's cluster by mere proximity would glue banners to
    // titles). All-text areas (the common case) skip the partition.
    if elements.iter().any(|r| !r.is_text()) {
        let images = elements.iter().copied().filter(|r| !r.is_text());
        let texts: Vec<ElementRef> = elements.iter().copied().filter(|r| r.is_text()).collect();
        let mut parts: Vec<Vec<ElementRef>> = images.map(|r| vec![r]).collect();
        if !texts.is_empty() {
            parts.extend(
                CLUSTER_SCRATCH.with(|s| cluster_core(doc, area, &texts, cfg, &mut s.borrow_mut())),
            );
        }
        return parts;
    }
    CLUSTER_SCRATCH.with(|s| cluster_core(doc, area, elements, cfg, &mut s.borrow_mut()))
}

/// The text-only clustering core, over caller-owned scratch.
fn cluster_core(
    doc: &Document,
    area: &BBox,
    elements: &[ElementRef],
    cfg: &ClusterConfig,
    scratch: &mut ClusterScratch,
) -> Vec<Vec<ElementRef>> {
    let n = elements.len();
    if n < 2 {
        return vec![elements.to_vec()];
    }
    let max_h = elements
        .iter()
        .map(|r| doc.bbox_of(*r).h)
        .fold(0.0, f64::max);
    let feats = &mut scratch.feats;
    feats.clear();
    feats.extend(elements.iter().map(|r| features_of(doc, area, *r, max_h)));
    let feats: &[VisualFeatures] = feats;

    // 2×2 grid seeding: the medoid of each occupied quadrant.
    let seeds = &mut scratch.seeds;
    seeds.clear();
    let members = &mut scratch.members;
    for qy in 0..2 {
        for qx in 0..2 {
            members.clear();
            members.extend((0..n).filter(|&i| {
                let c = feats[i].centroid;
                (c.x >= qx as f64 * 0.5 && c.x < (qx + 1) as f64 * 0.5 || (qx == 1 && c.x == 1.0))
                    && (c.y >= qy as f64 * 0.5 && c.y < (qy + 1) as f64 * 0.5
                        || (qy == 1 && c.y == 1.0))
            }));
            if members.is_empty() {
                continue;
            }
            // Medoid: minimum average distance to the rest of the cell.
            let medoid = *members
                .iter()
                .min_by(|&&a, &&b| {
                    let da: f64 = members
                        .iter()
                        .map(|&m| feature_distance(&feats[a], &feats[m], cfg))
                        .sum();
                    let db: f64 = members
                        .iter()
                        .map(|&m| feature_distance(&feats[b], &feats[m], cfg))
                        .sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            seeds.push(medoid);
        }
    }
    if seeds.len() < 2 {
        return vec![elements.to_vec()];
    }

    // Iterative reassignment to the nearest cluster (by average distance
    // to members) until stable.
    let assign = &mut scratch.assign;
    assign.clear();
    assign.extend((0..n).map(|i| {
        seeds
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                feature_distance(&feats[i], &feats[a], cfg)
                    .total_cmp(&feature_distance(&feats[i], &feats[b], cfg))
            })
            .map(|(k, _)| k)
            .unwrap()
    }));

    for _ in 0..cfg.max_iters {
        let mut changed = false;
        for i in 0..n {
            let mut best = assign[i];
            let mut best_d = f64::INFINITY;
            for k in 0..seeds.len() {
                // Average distance to cluster k's members, streamed in
                // index order (same summation order as the collected
                // form, so the floats are bit-identical).
                let mut sum = 0.0;
                let mut count = 0usize;
                for j in (0..n).filter(|&j| assign[j] == k && j != i) {
                    sum += feature_distance(&feats[i], &feats[j], cfg);
                    count += 1;
                }
                if count == 0 {
                    continue;
                }
                let d = sum / count as f64;
                if d < best_d {
                    best_d = d;
                    best = k;
                }
            }
            if best != assign[i] {
                assign[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Partition by assignment into pooled index lists; only the returned
    // element lists below allocate.
    let pool = &mut scratch.parts;
    while pool.len() < seeds.len() {
        pool.push(Vec::new());
    }
    for p in pool.iter_mut() {
        p.clear();
    }
    for (i, &k) in assign.iter().enumerate() {
        pool[k].push(i);
    }
    // Compact non-empty parts to the front, preserving order — the
    // pooled analogue of `retain(|p| !p.is_empty())`.
    let mut live = 0usize;
    for k in 0..seeds.len() {
        if !pool[k].is_empty() {
            pool.swap(live, k);
            live += 1;
        }
    }

    // Collapse clusters that are not meaningfully separated: a visually
    // homogeneous area must stay one block, not four grid shards. Average
    // intra-cluster spread vs average inter-cluster (linkage) distance.
    let intra = |p: &[usize]| -> f64 {
        if p.len() < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut n = 0usize;
        for (ai, &a) in p.iter().enumerate() {
            for &b in &p[ai + 1..] {
                sum += feature_distance(&feats[a], &feats[b], cfg);
                n += 1;
            }
        }
        sum / n as f64
    };
    let inter = |p: &[usize], q: &[usize]| -> f64 {
        let mut sum = 0.0;
        for &a in p {
            for &b in q {
                sum += feature_distance(&feats[a], &feats[b], cfg);
            }
        }
        sum / (p.len() * q.len()) as f64
    };
    // Spatial adjacency: two clusters whose bounding boxes (nearly) touch
    // are not visually separated, whatever the feature ratio says — a
    // continuous line of text must never shatter by position alone.
    let part_bbox = |p: &[usize]| -> BBox {
        // Same left fold as `BBox::enclosing`, without the collect.
        let mut it = p.iter().map(|&i| doc.bbox_of(elements[i]));
        match it.next() {
            Some(first) => it.fold(first, |acc, b| acc.union(&b)),
            None => BBox::default(),
        }
    };
    // The font scale of a cluster pair for the adjacency test: each
    // cluster's tallest *text* element (an image's extent is not a font
    // size), combined by MIN — a gap next to a headline still reads
    // against the smaller neighbouring text, and a huge font must not
    // swallow its neighbours.
    let cluster_font = |p: &[usize]| -> f64 {
        let text_max = p
            .iter()
            .filter(|&&i| elements[i].is_text())
            .map(|&i| doc.bbox_of(elements[i]).h)
            .fold(0.0, f64::max);
        if text_max > 0.0 {
            text_max
        } else {
            p.iter()
                .map(|&i| doc.bbox_of(elements[i]).h)
                .fold(0.0, f64::max)
        }
    };
    let pair_font = |p: &[usize], q: &[usize]| -> f64 { cluster_font(p).min(cluster_font(q)) };
    loop {
        let mut best: Option<(usize, usize)> = None;
        let mut best_ratio = cfg.collapse_factor;
        for i in 0..live {
            for j in i + 1..live {
                let spread = intra(&pool[i]).max(intra(&pool[j])).max(1e-3);
                let mut ratio = inter(&pool[i], &pool[j]) / spread;
                let gap = part_bbox(&pool[i]).distance(&part_bbox(&pool[j]));
                let font = pair_font(&pool[i], &pool[j]).max(1e-9);
                let has_text = |p: &[usize]| p.iter().any(|&k| elements[k].is_text());
                let (ti, tj) = (has_text(&pool[i]), has_text(&pool[j]));
                if ti != tj {
                    // An image is its own visual unit; it never joins a
                    // text cluster, however close or similar.
                    continue;
                }
                if gap / font < 0.7 && ti && tj {
                    ratio = 0.0; // adjacent — always collapse
                }
                if ratio < best_ratio {
                    best_ratio = ratio;
                    best = Some((i, j));
                }
            }
        }
        match best {
            Some((i, j)) => {
                // Merge j into i, then close the gap — the pooled,
                // order-preserving analogue of `remove(j)` + `extend`
                // (the emptied list rotates past the live region and
                // keeps its capacity for the next call).
                let (head, tail) = pool.split_at_mut(j);
                head[i].extend_from_slice(&tail[0]);
                tail[0].clear();
                pool[j..live].rotate_left(1);
                live -= 1;
            }
            None => break,
        }
    }

    pool[..live]
        .iter()
        .map(|p| p.iter().map(|&i| elements[i]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::TextElement;

    fn doc_with(words: &[(&str, f64, f64, f64)]) -> (Document, Vec<ElementRef>) {
        let mut d = Document::new("c", 100.0, 100.0);
        let mut refs = Vec::new();
        for (w, x, y, h) in words {
            refs.push(d.push_text(TextElement::word(*w, BBox::new(*x, *y, 20.0, *h))));
        }
        (d, refs)
    }

    #[test]
    fn spatially_separate_corners_split() {
        let (doc, refs) = doc_with(&[
            ("a", 5.0, 5.0, 10.0),
            ("b", 10.0, 8.0, 10.0),
            ("c", 80.0, 85.0, 10.0),
            ("d", 85.0, 80.0, 10.0),
        ]);
        let parts = cluster(&doc, &doc.page_bbox(), &refs, &ClusterConfig::default());
        assert_eq!(parts.len(), 2, "{parts:?}");
        assert_eq!(parts[0].len() + parts[1].len(), 4);
    }

    #[test]
    fn single_element_is_one_cluster() {
        let (doc, refs) = doc_with(&[("a", 5.0, 5.0, 10.0)]);
        let parts = cluster(&doc, &doc.page_bbox(), &refs, &ClusterConfig::default());
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn tight_cluster_stays_together() {
        let (doc, refs) = doc_with(&[
            ("a", 40.0, 40.0, 10.0),
            ("b", 45.0, 41.0, 10.0),
            ("c", 50.0, 42.0, 10.0),
        ]);
        let parts = cluster(&doc, &doc.page_bbox(), &refs, &ClusterConfig::default());
        // All in one quadrant-ish area — the partition must not scatter
        // them into three singletons.
        assert!(parts.len() <= 2, "{parts:?}");
        let largest = parts.iter().map(|p| p.len()).max().unwrap();
        assert!(largest >= 2);
    }

    #[test]
    fn font_size_contrast_contributes() {
        let cfg = ClusterConfig::default();
        let a = VisualFeatures {
            centroid: Point::new(0.5, 0.5),
            height: 1.0,
            color: Lab::default(),
            angular: 0.5,
        };
        let mut b = a;
        b.height = 0.2;
        assert!(feature_distance(&a, &b, &cfg) > 0.0);
        assert_eq!(feature_distance(&a, &a, &cfg), cfg.w_sum_angular * 1.0);
    }

    #[test]
    fn partition_preserves_all_elements() {
        let (doc, refs) = doc_with(&[
            ("a", 5.0, 5.0, 8.0),
            ("b", 90.0, 5.0, 24.0),
            ("c", 5.0, 90.0, 8.0),
            ("d", 90.0, 90.0, 24.0),
            ("e", 50.0, 50.0, 12.0),
        ]);
        let parts = cluster(&doc, &doc.page_bbox(), &refs, &ClusterConfig::default());
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, refs.len());
        let mut seen: Vec<ElementRef> = parts.concat();
        seen.sort();
        let mut expected = refs.clone();
        expected.sort();
        assert_eq!(seen, expected);
    }

    #[test]
    fn deterministic() {
        let (doc, refs) = doc_with(&[
            ("a", 5.0, 5.0, 10.0),
            ("b", 80.0, 80.0, 10.0),
            ("c", 20.0, 15.0, 10.0),
        ]);
        let p1 = cluster(&doc, &doc.page_bbox(), &refs, &ClusterConfig::default());
        let p2 = cluster(&doc, &doc.page_bbox(), &refs, &ClusterConfig::default());
        assert_eq!(p1, p2);
    }
}
