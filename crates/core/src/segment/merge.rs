//! Semantic merging (§5.1.2, Eq. 1).
//!
//! Cut-based and cluster-based splitting over-segments — especially on
//! noisy transcriptions — so VS2-Segment merges sibling areas whose
//! *semantic contribution* is high. For a node `n_i` at level `h` of the
//! layout tree:
//!
//! ```text
//! SC(n_i) = Σ_j cos(n_i, sibling_j) − Σ_k cos(n_i, non-sibling same-level_k)
//! ```
//!
//! (both sums averaged here, so SC ∈ [−1, 1] regardless of arity). A node
//! whose SC exceeds θ_h = θ_min + (θ_max − θ_min)/10 · h merges with its
//! most semantically similar sibling, provided the two are not visually
//! separated. Merging repeats to a fixed point.

use vs2_docmodel::{BBox, Document, ElementRef, LayoutTree, NodeId};
use vs2_nlp::embedding::{cosine, Embedder, Vector};

/// Threshold parameters of Eq. 1's footnote: θ_h interpolates between
/// θ_min and θ_max with tree height.
#[derive(Debug, Clone, Copy)]
pub struct MergeConfig {
    /// θ_min (paper: 0).
    pub theta_min: f64,
    /// θ_max (paper: 1).
    pub theta_max: f64,
    /// Maximum merge sweeps (safety bound; convergence is usually fast).
    pub max_sweeps: usize,
    /// Floor on the actual cosine similarity of a merge pair: Eq. 1's
    /// contrastive score can cross θ_h on shallow trees through embedding
    /// noise alone, so the chosen sibling must also be genuinely similar.
    pub min_pair_similarity: f64,
    /// A whitespace gap of at least this many multiples of the nodes'
    /// text height marks the pair visually separated (no merge across a
    /// delimiter-strength gap).
    pub separation_gap_ratio: f64,
}

impl Default for MergeConfig {
    fn default() -> Self {
        Self {
            theta_min: 0.0,
            theta_max: 1.0,
            max_sweeps: 16,
            min_pair_similarity: 0.45,
            separation_gap_ratio: 0.9,
        }
    }
}

/// θ_h for a tree of height `h` (footnote 4 of the paper).
pub fn theta(cfg: &MergeConfig, h: usize) -> f64 {
    cfg.theta_min + (cfg.theta_max - cfg.theta_min) / 10.0 * h as f64
}

/// Embedding of a node: the normalised mean of its words' vectors.
/// Shared with the fast path's embedding cache so cached and recomputed
/// vectors are identical by construction.
pub(crate) fn node_embedding<E: Embedder>(
    doc: &Document,
    elements: &[ElementRef],
    embedder: &E,
) -> Vector {
    let words: Vec<&str> = elements.iter().filter_map(|r| doc.text_of(*r)).collect();
    embedder.embed_text(words)
}

/// `true` when `a` and `b` are visually separated — the "provided that
/// n_i and n_p are not visually separated" guard of §5.1.2. Two
/// conditions mark separation: (1) merging would swallow or cross a third
/// sibling, or (2) the whitespace gap between the two areas is of
/// delimiter strength relative to their text size (a gap a visual
/// delimiter would claim must not be merged across).
pub(crate) fn visually_separated(
    doc: &Document,
    tree: &LayoutTree,
    a: NodeId,
    b: NodeId,
    siblings: &[NodeId],
    gap_ratio: f64,
) -> bool {
    let ba = tree.node(a).bbox;
    let bb = tree.node(b).bbox;
    let union: BBox = ba.union(&bb);
    let crosses_sibling = siblings.iter().any(|&s| {
        if s == a || s == b {
            return false;
        }
        let sb = tree.node(s).bbox;
        match union.intersection(&sb) {
            Some(i) => i.area() > 0.3 * sb.area(),
            None => false,
        }
    });
    if crosses_sibling {
        return true;
    }
    // Delimiter-strength gap between the two areas, measured against the
    // larger text (font) size of either node.
    let gap_x = (bb.x - ba.right()).max(ba.x - bb.right()).max(0.0);
    let gap_y = (bb.y - ba.bottom()).max(ba.y - bb.bottom()).max(0.0);
    let gap = gap_x.max(gap_y);
    let font = |n: NodeId| {
        // Text heights only (images are not a font-size signal).
        let t = tree
            .node(n)
            .elements
            .iter()
            .filter(|r| r.is_text())
            .map(|r| doc.bbox_of(*r).h)
            .fold(0.0, f64::max);
        if t > 0.0 {
            t
        } else {
            tree.node(n)
                .elements
                .iter()
                .map(|r| doc.bbox_of(*r).h)
                .fold(0.0, f64::max)
        }
    };
    // Scale by the *smaller* of the two fonts: a gap separating a
    // headline from body text reads against the body size.
    let font = font(a).min(font(b)).max(1e-9);
    gap / font >= gap_ratio
}

/// Runs semantic merging over the tree's sibling groups until no further
/// merge applies. Returns the number of merges performed.
pub fn semantic_merge<E: Embedder>(
    doc: &Document,
    tree: &mut LayoutTree,
    embedder: &E,
    cfg: &MergeConfig,
) -> usize {
    let mut merges = 0;
    for _ in 0..cfg.max_sweeps {
        let h = tree.height();
        let threshold = theta(cfg, h);
        let mut merged_this_sweep = false;

        // Parents with ≥ 2 children, in stable order.
        let parents: Vec<NodeId> = tree
            .live_ids()
            .filter(|id| tree.node(*id).children.len() >= 2)
            .collect();
        'outer: for parent in parents {
            // Only leaf siblings merge: the logical blocks live at the
            // leaves, and merging a leaf into an internal node would hide
            // its elements behind the absorbed node's stale children.
            let children: Vec<NodeId> = tree
                .node(parent)
                .children
                .clone()
                .into_iter()
                .filter(|c| tree.node(*c).is_leaf())
                .collect();
            if children.len() < 2 {
                continue;
            }
            let embeddings: Vec<Vector> = children
                .iter()
                .map(|c| node_embedding(doc, &tree.node(*c).elements, embedder))
                .collect();
            for (ci, &c) in children.iter().enumerate() {
                // Same-level non-siblings for the contrast term.
                let same_level = tree.same_level(c);
                let sibling_sims: Vec<f64> = (0..children.len())
                    .filter(|&j| j != ci)
                    .map(|j| cosine(&embeddings[ci], &embeddings[j]))
                    .collect();
                let non_siblings: Vec<NodeId> = same_level
                    .into_iter()
                    .filter(|n| !children.contains(n))
                    .collect();
                let non_sibling_sims: Vec<f64> = non_siblings
                    .iter()
                    .map(|n| {
                        let e = node_embedding(doc, &tree.node(*n).elements, embedder);
                        cosine(&embeddings[ci], &e)
                    })
                    .collect();
                let avg = |v: &[f64]| {
                    if v.is_empty() {
                        0.0
                    } else {
                        v.iter().sum::<f64>() / v.len() as f64
                    }
                };
                let sc = avg(&sibling_sims) - avg(&non_sibling_sims);
                if sc <= threshold {
                    continue;
                }
                // Most similar sibling, not visually separated.
                let best = (0..children.len()).filter(|&j| j != ci).max_by(|&a, &b| {
                    cosine(&embeddings[ci], &embeddings[a])
                        .total_cmp(&cosine(&embeddings[ci], &embeddings[b]))
                });
                let Some(bj) = best else { continue };
                if cosine(&embeddings[ci], &embeddings[bj]) < cfg.min_pair_similarity {
                    continue;
                }
                let b = children[bj];
                if visually_separated(doc, tree, c, b, &children, cfg.separation_gap_ratio) {
                    continue;
                }
                tree.merge_siblings(c, b);
                merges += 1;
                merged_this_sweep = true;
                break 'outer; // tree changed — recompute from scratch
            }
        }
        if !merged_this_sweep {
            break;
        }
    }
    merges
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::TextElement;
    use vs2_nlp::LexiconEmbedding;

    /// Document with two semantically coherent groups: event words on the
    /// left, measure words on the right.
    fn doc() -> (Document, Vec<ElementRef>) {
        let mut d = Document::new("m", 200.0, 100.0);
        let words = [
            ("concert", 10.0, 10.0),
            ("festival", 10.0, 25.0),
            ("workshop", 10.0, 40.0),
            ("acres", 150.0, 10.0),
            ("sqft", 150.0, 25.0),
            ("beds", 150.0, 40.0),
        ];
        let mut refs = Vec::new();
        for (w, x, y) in words {
            refs.push(d.push_text(TextElement::word(w, BBox::new(x, y, 30.0, 10.0))));
        }
        (d, refs)
    }

    #[test]
    fn merges_semantically_coherent_siblings() {
        let (d, refs) = doc();
        let mut tree = LayoutTree::new(d.page_bbox(), refs.clone());
        // Over-segmented: each event word its own node, measure words one node.
        let a = tree.add_child(tree.root(), d.bbox_of(refs[0]), vec![refs[0]]);
        let _b = tree.add_child(tree.root(), d.bbox_of(refs[1]), vec![refs[1]]);
        let _c = tree.add_child(tree.root(), d.bbox_of(refs[2]), vec![refs[2]]);
        let measures = tree.add_child(
            tree.root(),
            BBox::new(150.0, 10.0, 30.0, 40.0),
            vec![refs[3], refs[4], refs[5]],
        );
        let before = tree.leaves().len();
        let merges = semantic_merge(&d, &mut tree, &LexiconEmbedding, &MergeConfig::default());
        assert!(merges >= 2, "merges = {merges}");
        assert!(tree.leaves().len() < before);
        // The three event words coalesce; the measures node survives.
        let a_elems = tree.node(a).elements.len();
        assert_eq!(a_elems + tree.node(measures).elements.len(), 6);
        assert_eq!(tree.node(measures).elements.len(), 3);
    }

    #[test]
    fn does_not_merge_dissimilar_siblings() {
        let (d, refs) = doc();
        let mut tree = LayoutTree::new(d.page_bbox(), refs.clone());
        tree.add_child(
            tree.root(),
            BBox::new(10.0, 10.0, 30.0, 40.0),
            vec![refs[0], refs[1], refs[2]],
        );
        tree.add_child(
            tree.root(),
            BBox::new(150.0, 10.0, 30.0, 40.0),
            vec![refs[3], refs[4], refs[5]],
        );
        let merges = semantic_merge(&d, &mut tree, &LexiconEmbedding, &MergeConfig::default());
        assert_eq!(merges, 0, "event block must not merge with measure block");
        assert_eq!(tree.leaves().len(), 2);
    }

    #[test]
    fn threshold_grows_with_height() {
        let cfg = MergeConfig::default();
        assert_eq!(theta(&cfg, 0), 0.0);
        assert!((theta(&cfg, 5) - 0.5).abs() < 1e-12);
        assert!(theta(&cfg, 3) < theta(&cfg, 7));
    }

    #[test]
    fn visual_separation_blocks_merge() {
        let (d, refs) = doc();
        let mut tree = LayoutTree::new(d.page_bbox(), refs.clone());
        // Two event nodes at the far sides with a measure node *between*
        // them: merging across it is blocked.
        tree.add_child(tree.root(), BBox::new(0.0, 10.0, 30.0, 10.0), vec![refs[0]]);
        tree.add_child(
            tree.root(),
            BBox::new(80.0, 10.0, 40.0, 10.0),
            vec![refs[3], refs[4], refs[5]],
        );
        tree.add_child(
            tree.root(),
            BBox::new(170.0, 10.0, 30.0, 10.0),
            vec![refs[1]],
        );
        let merges = semantic_merge(&d, &mut tree, &LexiconEmbedding, &MergeConfig::default());
        assert_eq!(merges, 0, "separated siblings must not merge across");
    }

    #[test]
    fn empty_tree_is_noop() {
        let d = Document::new("e", 10.0, 10.0);
        let mut tree = LayoutTree::new(d.page_bbox(), vec![]);
        assert_eq!(
            semantic_merge(&d, &mut tree, &LexiconEmbedding, &MergeConfig::default()),
            0
        );
    }
}
