//! The recursive VS2-Segment driver (§5.1.2).
//!
//! Each iteration searches a visual area for explicit visual delimiters
//! (runs of consecutive valid cuts accepted by Algorithm 1) and splits
//! along them; when no delimiter exists, the implicit-modifier clustering
//! over Table 1 features is tried. New child areas are appended to the
//! layout tree and processed in turn. After the recursion converges, the
//! semantic-merging step of Eq. 1 repairs over-segmentation. The leaves
//! of the resulting tree are the document's logical blocks.

use std::cell::RefCell;

use crate::segment::cluster::ClusterConfig;
use crate::segment::cuts::all_runs;
use crate::segment::delimiter::{
    run_strip, score_runs, select_delimiters, DelimiterConfig, ScoredRun,
};
use crate::segment::merge::MergeConfig;
use vs2_docmodel::{BBox, Document, ElementRef, LayoutTree, NodeId};

/// Reused buffers for [`split_by_delimiters`] / [`group_lines`]. The
/// splitter runs once per delimiter-bearing tree node, so buffer reuse
/// (clear + extend, never read stale) is a pure capacity optimisation.
#[derive(Default)]
struct SplitScratch {
    cuts: Vec<f64>,
    items: Vec<(ElementRef, BBox)>,
    tagged: Vec<(u32, ElementRef)>,
    line_boxes: Vec<BBox>,
}

thread_local! {
    static SPLIT_SCRATCH: RefCell<SplitScratch> = RefCell::new(SplitScratch::default());
}

/// Full configuration of VS2-Segment, including the ablation switches of
/// §6.5 (Table 9).
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// Apply the Fig. 2 cleaning step (skew correction) before
    /// segmentation.
    pub deskew: bool,
    /// Raster cell size in document units.
    pub cell_size: f64,
    /// Areas with fewer elements are never split further.
    pub min_block_elements: usize,
    /// Maximum recursion depth (safety bound).
    pub max_depth: usize,
    /// Ablation A2: enable the visual-feature clustering stage.
    pub use_visual_clustering: bool,
    /// Ablation A1: enable semantic merging.
    pub use_semantic_merge: bool,
    /// Delimiter-selection knobs (Algorithm 1).
    pub delimiter: DelimiterConfig,
    /// Clustering knobs (Table 1 weights).
    pub cluster: ClusterConfig,
    /// Semantic-merge thresholds (Eq. 1 footnote).
    pub merge: MergeConfig,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        Self {
            deskew: true,
            cell_size: 4.0,
            min_block_elements: 2,
            max_depth: 8,
            use_visual_clustering: true,
            use_semantic_merge: true,
            delimiter: DelimiterConfig::default(),
            cluster: ClusterConfig::default(),
            merge: MergeConfig::default(),
        }
    }
}

/// A logical block: a leaf of the converged layout tree.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalBlock {
    /// Smallest bounding box enclosing the block's elements.
    pub bbox: BBox,
    /// The block's atomic elements.
    pub elements: Vec<ElementRef>,
}

pub(crate) fn tight_bbox(doc: &Document, elements: &[ElementRef]) -> BBox {
    let mut it = elements.iter().map(|r| doc.bbox_of(*r));
    match it.next() {
        Some(first) => it.fold(first, |acc, b| acc.union(&b)),
        None => BBox::default(),
    }
}

/// Upper bound on raster cells per area. A handful of far-apart elements
/// on a huge page would otherwise demand a multi-terabyte occupancy grid
/// and abort on allocation; growing the cell instead keeps the raster
/// bounded while normal pages (a few thousand cells) are unaffected.
const MAX_GRID_CELLS: f64 = 4_000_000.0;

/// The configured cell size, grown just enough that rasterising `area`
/// stays within [`MAX_GRID_CELLS`].
pub(crate) fn effective_cell_size(area: &BBox, cell: f64) -> f64 {
    let cells = (area.w / cell) * (area.h / cell);
    // Within budget — and NaN/degenerate areas rasterise to an empty grid,
    // so they keep the configured cell too.
    if cells.partial_cmp(&MAX_GRID_CELLS) != Some(std::cmp::Ordering::Greater) {
        return cell;
    }
    let grown = cell * (cells / MAX_GRID_CELLS).sqrt();
    if grown.is_finite() {
        grown
    } else {
        // Area so large its cell count overflows f64: one giant cell.
        f64::MAX.sqrt()
    }
}

/// An interior delimiter must have content on both sides of its centre
/// line (a drift path may extend a run past the last element, so the
/// strip's extremities are not a reliable boundary test).
pub(crate) fn is_interior(delim: &ScoredRun, boxes: &[BBox], grid_area: &BBox, cell: f64) -> bool {
    let run = &delim.run;
    let center = run.center() * cell;
    if run.horizontal {
        let y = grid_area.y + center;
        let above = boxes.iter().any(|b| b.centroid().y < y);
        let below = boxes.iter().any(|b| b.centroid().y > y);
        above && below
    } else {
        let x = grid_area.x + center;
        let left = boxes.iter().any(|b| b.centroid().x < x);
        let right = boxes.iter().any(|b| b.centroid().x > x);
        left && right
    }
}

/// Groups elements into *text lines* by transitive vertical overlap: two
/// elements share a line when their vertical extents overlap by more than
/// half the smaller height. A horizontal delimiter must never split a
/// line — on skewed scans a line straddles the cut's centre row.
///
/// Elements are tagged with the index of the (first-matching) line they
/// join; `line_boxes[i]` is the running union of line `i`'s element
/// boxes, which equals the enclosing box of its members exactly (union
/// is min/max). Returns the tagged elements in y-sorted order plus the
/// per-line boxes in line-creation order.
fn group_lines(
    doc: &Document,
    elements: &[ElementRef],
    items: &mut Vec<(ElementRef, BBox)>,
    tagged: &mut Vec<(u32, ElementRef)>,
    line_boxes: &mut Vec<BBox>,
) {
    items.clear();
    items.extend(elements.iter().map(|r| (*r, doc.bbox_of(*r))));
    items.sort_by(|a, b| a.1.y.total_cmp(&b.1.y));
    line_boxes.clear();
    tagged.clear();
    for &(r, b) in items.iter() {
        let mut placed = None;
        for (li, lb) in line_boxes.iter_mut().enumerate() {
            let overlap = (lb.bottom().min(b.bottom()) - lb.y.max(b.y)).max(0.0);
            let min_h = lb.h.min(b.h).max(1e-9);
            if overlap / min_h > 0.5 {
                *lb = lb.union(&b);
                placed = Some(li as u32);
                break;
            }
        }
        let li = placed.unwrap_or_else(|| {
            line_boxes.push(b);
            (line_boxes.len() - 1) as u32
        });
        tagged.push((li, r));
    }
}

/// Splits elements into bands along the chosen delimiters (all of one
/// direction). Horizontal splits band whole text lines; vertical splits
/// band individual elements by centroid.
pub(crate) fn split_by_delimiters(
    doc: &Document,
    elements: &[ElementRef],
    delims: &[ScoredRun],
    horizontal: bool,
    grid_area: &BBox,
    cell: f64,
) -> Vec<Vec<ElementRef>> {
    SPLIT_SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        let cuts = &mut scratch.cuts;
        cuts.clear();
        cuts.extend(
            delims
                .iter()
                .filter(|d| d.run.horizontal == horizontal)
                .map(|d| {
                    let c = d.run.center() * cell;
                    if horizontal {
                        grid_area.y + c
                    } else {
                        grid_area.x + c
                    }
                }),
        );
        cuts.sort_by(|a, b| a.total_cmp(b));
        cuts.dedup_by(|a, b| (*a - *b).abs() < cell);
        if cuts.is_empty() {
            return vec![elements.to_vec()];
        }
        let mut bands: Vec<Vec<ElementRef>> = vec![Vec::new(); cuts.len() + 1];
        if horizontal {
            // Band whole lines by the centroid of the line's union box (the
            // running union equals the enclosing box of the line's members).
            group_lines(
                doc,
                elements,
                &mut scratch.items,
                &mut scratch.tagged,
                &mut scratch.line_boxes,
            );
            for (li, lb) in scratch.line_boxes.iter().enumerate() {
                let cy = lb.centroid().y;
                let band = cuts.iter().position(|&cut| cy < cut).unwrap_or(cuts.len());
                bands[band].extend(
                    scratch
                        .tagged
                        .iter()
                        .filter(|(l, _)| *l == li as u32)
                        .map(|(_, r)| *r),
                );
            }
        } else {
            for &r in elements {
                let cx = doc.bbox_of(r).centroid().x;
                let band = cuts.iter().position(|&cut| cx < cut).unwrap_or(cuts.len());
                bands[band].push(r);
            }
        }
        bands.retain(|b| !b.is_empty());
        bands
    })
}

/// Runs VS2-Segment over a document and returns the layout tree. The
/// tree's leaves are the logical blocks.
///
/// This is the packed fast path ([`fast`](crate::segment::fast)):
/// word-packed whitespace sweeps, incremental extents and cached merge
/// embeddings. The pre-fast driver is preserved verbatim as
/// [`naive::segment_naive`](crate::segment::naive::segment_naive), and
/// the differential battery holds the two to byte-identical trees.
pub fn segment(doc: &Document, config: &SegmentConfig) -> LayoutTree {
    segment_with_embedder(doc, config, &vs2_nlp::LexiconEmbedding)
}

/// [`segment`] with an injected semantic-merge embedder. The zero-copy
/// pipeline passes its per-job memoising embedder
/// ([`crate::context::CtxEmbedder`]) so each distinct word is embedded
/// once per job across segmentation *and* selection. The embedder keys
/// on word strings, so it stays valid on the deskew branch's rotated
/// copy of the document (rotation changes geometry, not words); `embed`
/// purity keeps the tree bit-identical to the default embedder.
pub fn segment_with_embedder<E: vs2_nlp::Embedder>(
    doc: &Document,
    config: &SegmentConfig,
    embedder: &E,
) -> LayoutTree {
    let _segment_span = vs2_obs::span(vs2_obs::stages::SEGMENT);
    // Cleaning (Fig. 2 step a): straighten a skewed capture first. The
    // resulting tree's boxes live in the original coordinate frame — only
    // the *analysis* runs on the deskewed geometry, and element indices
    // carry the partition back.
    if config.deskew {
        let deskew_span = vs2_obs::span(vs2_obs::stages::DESKEW);
        let angle = crate::segment::deskew::estimate_skew(doc);
        if angle.abs() >= crate::segment::deskew::SKEW_EPSILON {
            let straightened = crate::segment::deskew::rotate_elements(doc, angle);
            drop(deskew_span);
            let mut cfg = *config;
            cfg.deskew = false;
            let tree = crate::segment::fast::segment_body_fast_with(&straightened, &cfg, embedder);
            return rebuild_in_original_frame(doc, &tree);
        }
    }
    crate::segment::fast::segment_body_fast_with(doc, config, embedder)
}

/// Recomputes every node's bounding box from its elements in the
/// original (pre-deskew) document frame, preserving the tree structure.
pub(crate) fn rebuild_in_original_frame(doc: &Document, tree: &LayoutTree) -> LayoutTree {
    let root_elems = tree.node(tree.root()).elements.clone();
    let root_bbox = if root_elems.is_empty() {
        doc.page_bbox()
    } else {
        tight_bbox(doc, &root_elems)
    };
    let mut out = LayoutTree::new(root_bbox, root_elems);
    fn copy(
        doc: &Document,
        src: &LayoutTree,
        src_node: NodeId,
        dst: &mut LayoutTree,
        dst_node: NodeId,
    ) {
        for &child in &src.node(src_node).children {
            let elems = src.node(child).elements.clone();
            let bbox = if elems.is_empty() {
                src.node(child).bbox
            } else {
                tight_bbox(doc, &elems)
            };
            let new_child = dst.add_child(dst_node, bbox, elems);
            copy(doc, src, child, dst, new_child);
        }
    }
    let dst_root = out.root();
    copy(doc, tree, tree.root(), &mut out, dst_root);
    out
}

/// Convenience: the logical blocks (leaves with at least one element).
pub fn logical_blocks(doc: &Document, config: &SegmentConfig) -> Vec<LogicalBlock> {
    let tree = segment(doc, config);
    blocks_of_tree(&tree)
}

/// [`logical_blocks`] over a per-job [`crate::context::DocContext`]:
/// segmentation runs with the context's memoising embedder, so merge
/// embeddings are shared with the select stage of the same job.
pub fn logical_blocks_ctx(
    ctx: &crate::context::DocContext<'_>,
    config: &SegmentConfig,
) -> Vec<LogicalBlock> {
    let tree = segment_with_embedder(ctx.doc(), config, &ctx.embedder());
    blocks_of_tree(&tree)
}

/// Extracts the logical blocks of an already-built layout tree.
pub fn blocks_of_tree(tree: &LayoutTree) -> Vec<LogicalBlock> {
    tree.leaves()
        .into_iter()
        .map(|id| {
            let n = tree.node(id);
            LogicalBlock {
                bbox: n.bbox,
                elements: n.elements.clone(),
            }
        })
        .filter(|b| !b.elements.is_empty())
        .collect()
}

/// Dumps the strip geometry of the selected delimiters of one area — used
/// by the Fig. 5 reproduction tests and diagnostics.
pub fn delimiters_of_area(
    doc: &Document,
    elements: &[ElementRef],
    config: &SegmentConfig,
) -> Vec<BBox> {
    let tight = tight_bbox(doc, elements);
    let cell = effective_cell_size(&tight.inflate(config.cell_size), config.cell_size);
    let area = tight.inflate(cell);
    let boxes: Vec<BBox> = elements.iter().map(|r| doc.bbox_of(*r)).collect();
    let text_boxes: Vec<BBox> = elements
        .iter()
        .filter(|r| r.is_text())
        .map(|r| doc.bbox_of(*r))
        .collect();
    let norm_boxes = if text_boxes.is_empty() {
        &boxes
    } else {
        &text_boxes
    };
    let grid = vs2_docmodel::OccupancyGrid::rasterize(&area, &boxes, cell);
    let runs = all_runs(&grid);
    let scored = score_runs(&runs, &grid, &area, &boxes, norm_boxes);
    let interior: Vec<ScoredRun> = scored
        .into_iter()
        .filter(|s| is_interior(s, &boxes, &area, cell))
        .collect();
    select_delimiters(&interior, &config.delimiter)
        .into_iter()
        .map(|s| run_strip(&s.run, &grid, &area))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::TextElement;

    /// Two well-separated paragraphs of same-font text.
    fn two_block_doc() -> Document {
        let mut d = Document::new("seg", 200.0, 200.0);
        for line in 0..3 {
            for col in 0..4 {
                d.push_text(TextElement::word(
                    "concert",
                    BBox::new(
                        10.0 + col as f64 * 45.0,
                        10.0 + line as f64 * 14.0,
                        40.0,
                        10.0,
                    ),
                ));
            }
        }
        for line in 0..3 {
            for col in 0..4 {
                d.push_text(TextElement::word(
                    "acres",
                    BBox::new(
                        10.0 + col as f64 * 45.0,
                        120.0 + line as f64 * 14.0,
                        40.0,
                        10.0,
                    ),
                ));
            }
        }
        d
    }

    #[test]
    fn splits_two_paragraphs() {
        let doc = two_block_doc();
        let blocks = logical_blocks(&doc, &SegmentConfig::default());
        assert_eq!(blocks.len(), 2, "{blocks:?}");
        let total: usize = blocks.iter().map(|b| b.elements.len()).sum();
        assert_eq!(total, 24);
        // Blocks are vertically disjoint.
        assert!(blocks[0].bbox.intersection(&blocks[1].bbox).is_none());
    }

    #[test]
    fn single_paragraph_is_one_block() {
        let mut d = Document::new("one", 200.0, 100.0);
        for line in 0..3 {
            for col in 0..4 {
                d.push_text(TextElement::word(
                    "concert",
                    BBox::new(
                        10.0 + col as f64 * 45.0,
                        10.0 + line as f64 * 14.0,
                        40.0,
                        10.0,
                    ),
                ));
            }
        }
        let blocks = logical_blocks(&d, &SegmentConfig::default());
        assert_eq!(blocks.len(), 1, "{blocks:?}");
    }

    #[test]
    fn columns_split_vertically() {
        let mut d = Document::new("cols", 300.0, 100.0);
        for line in 0..4 {
            d.push_text(TextElement::word(
                "concert",
                BBox::new(10.0, 10.0 + line as f64 * 14.0, 80.0, 10.0),
            ));
            d.push_text(TextElement::word(
                "acres",
                BBox::new(200.0, 10.0 + line as f64 * 14.0, 80.0, 10.0),
            ));
        }
        let blocks = logical_blocks(&d, &SegmentConfig::default());
        assert_eq!(blocks.len(), 2, "{blocks:?}");
        assert!(blocks.iter().any(|b| b.bbox.x < 100.0));
        assert!(blocks.iter().any(|b| b.bbox.x > 150.0));
    }

    #[test]
    fn empty_document() {
        let d = Document::new("empty", 100.0, 100.0);
        let blocks = logical_blocks(&d, &SegmentConfig::default());
        assert!(blocks.is_empty());
    }

    #[test]
    fn all_elements_preserved_in_blocks() {
        let doc = two_block_doc();
        let blocks = logical_blocks(&doc, &SegmentConfig::default());
        let mut seen: Vec<ElementRef> = blocks.iter().flat_map(|b| b.elements.clone()).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), doc.len(), "elements lost or duplicated");
    }

    #[test]
    fn merge_repairs_oversegmentation() {
        // Same content, same font, small gap — if clustering splits it,
        // semantic merging must reunite it.
        let mut d = Document::new("over", 200.0, 120.0);
        for line in 0..6 {
            for col in 0..3 {
                d.push_text(TextElement::word(
                    "concert",
                    BBox::new(
                        10.0 + col as f64 * 50.0,
                        10.0 + line as f64 * 16.0,
                        45.0,
                        10.0,
                    ),
                ));
            }
        }
        let with_merge = logical_blocks(&d, &SegmentConfig::default());
        let without = logical_blocks(
            &d,
            &SegmentConfig {
                use_semantic_merge: false,
                ..SegmentConfig::default()
            },
        );
        assert!(with_merge.len() <= without.len());
    }

    #[test]
    fn ablation_flags_change_behavior() {
        let doc = two_block_doc();
        let cfg_no_cluster = SegmentConfig {
            use_visual_clustering: false,
            ..SegmentConfig::default()
        };
        // Delimiter-based split still works without clustering.
        let blocks = logical_blocks(&doc, &cfg_no_cluster);
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn delimiters_of_area_reports_strips() {
        let doc = two_block_doc();
        let delims = delimiters_of_area(&doc, &doc.element_refs(), &SegmentConfig::default());
        assert!(!delims.is_empty());
        // The reported strip lies between the paragraphs.
        assert!(
            delims.iter().any(|s| s.y > 40.0 && s.bottom() < 125.0),
            "{delims:?}"
        );
    }

    #[test]
    fn tree_structure_is_consistent() {
        let doc = two_block_doc();
        let tree = segment(&doc, &SegmentConfig::default());
        for id in tree.live_ids() {
            let n = tree.node(id);
            for c in &n.children {
                assert_eq!(tree.node(*c).parent, Some(id));
            }
        }
        assert!(tree.height() >= 1);
    }
}
