//! The original VS2-Segment driver, kept verbatim as the executable
//! specification of segmentation.
//!
//! This is the segmenter exactly as it shipped before the packed fast
//! path ([`segment::fast`](crate::segment::fast)): a fresh
//! [`OccupancyGrid`](vs2_docmodel::OccupancyGrid) per area, the bitset
//! frontier sweep of [`cuts`](crate::segment::cuts) with one heap
//! allocation per hop, full tight-bbox rescans at every queue pop, and
//! semantic merging that re-derives every node embedding per candidate
//! comparison. Nothing in the serving path calls this module: it exists
//! so the differential battery (`crates/conformance/tests/segment_equiv.rs`)
//! and the segment-perf release gate can hold the fast path to
//! byte-identical layout trees, and so `vs2d --naive-segment` has an
//! escape hatch while the fast path beds in.
//!
//! The helpers shared with the fast path (`tight_bbox`,
//! `effective_cell_size`, `is_interior`, `split_by_delimiters`,
//! `rebuild_in_original_frame`) live in [`segmenter`](super::segmenter)
//! so every float decision is taken by the same code in both paths.
//! Unlike the production path this module emits no tracing spans — only
//! the fast path participates in the documented span tree.

use crate::segment::cluster::cluster;
use crate::segment::cuts::{all_runs, CutRun};
use crate::segment::delimiter::{score_runs, select_delimiters, ScoredRun};
use crate::segment::merge::semantic_merge;
use crate::segment::segmenter::{
    blocks_of_tree, effective_cell_size, is_interior, rebuild_in_original_frame,
    split_by_delimiters, tight_bbox, LogicalBlock, SegmentConfig,
};
use vs2_docmodel::{BBox, Document, ElementRef, LayoutTree, NodeId};
use vs2_nlp::LexiconEmbedding;

/// Runs the reference segmenter over a document and returns the layout
/// tree. Mirrors [`segment`](crate::segment::segment) — including the
/// deskew wrapper — but through the preserved naive body.
pub fn segment_naive(doc: &Document, config: &SegmentConfig) -> LayoutTree {
    if config.deskew {
        let angle = crate::segment::deskew::estimate_skew(doc);
        if angle.abs() >= crate::segment::deskew::SKEW_EPSILON {
            let straightened = crate::segment::deskew::rotate_elements(doc, angle);
            let mut cfg = *config;
            cfg.deskew = false;
            let tree = segment_body_naive(&straightened, &cfg);
            return rebuild_in_original_frame(doc, &tree);
        }
    }
    segment_body_naive(doc, config)
}

/// The reference recursion: XY-cut area loop, clustering fallback and
/// semantic merging, exactly as before the fast path landed.
pub(crate) fn segment_body_naive(doc: &Document, config: &SegmentConfig) -> LayoutTree {
    let all = doc.element_refs();
    let root_bbox = if all.is_empty() {
        doc.page_bbox()
    } else {
        tight_bbox(doc, &all)
    };
    let mut tree = LayoutTree::new(root_bbox, all.clone());
    let mut queue: Vec<(NodeId, usize)> = vec![(tree.root(), 0)];

    while let Some((node, depth)) = queue.pop() {
        if depth >= config.max_depth {
            continue;
        }
        let elements = tree.node(node).elements.clone();
        if elements.len() < config.min_block_elements.max(2) {
            continue;
        }
        let tight = tight_bbox(doc, &elements);
        let cell = effective_cell_size(&tight.inflate(config.cell_size), config.cell_size);
        let area = tight.inflate(cell);
        let boxes: Vec<BBox> = elements.iter().map(|r| doc.bbox_of(*r)).collect();
        let text_boxes: Vec<BBox> = elements
            .iter()
            .filter(|r| r.is_text())
            .map(|r| doc.bbox_of(*r))
            .collect();
        let norm_boxes = if text_boxes.is_empty() {
            &boxes
        } else {
            &text_boxes
        };
        let grid = vs2_docmodel::OccupancyGrid::rasterize(&area, &boxes, cell);

        // Phase 1: explicit delimiters.
        let runs: Vec<CutRun> = all_runs(&grid);
        let scored = score_runs(&runs, &grid, &area, &boxes, norm_boxes);
        let interior: Vec<ScoredRun> = scored
            .into_iter()
            .filter(|s| is_interior(s, &boxes, &area, cell))
            .collect();
        let delims = select_delimiters(&interior, &config.delimiter);

        let mut parts: Vec<Vec<ElementRef>> = Vec::new();
        // Split along the direction of the widest delimiter first; the
        // recursion handles the other direction. (`max_by` is None on an
        // empty delimiter set — degenerate areas simply fall through to
        // clustering instead of panicking.)
        if let Some(widest) = delims.iter().max_by(|a, b| a.width.total_cmp(&b.width)) {
            let horizontal = widest.run.horizontal;
            parts = split_by_delimiters(doc, &elements, &delims, horizontal, &area, cell);
        }

        // Phase 2: implicit modifiers via clustering.
        if parts.len() < 2 && config.use_visual_clustering {
            let clustered = cluster(doc, &area, &elements, &config.cluster);
            if clustered.len() >= 2 {
                parts = clustered;
            }
        }

        if parts.len() >= 2 {
            for part in parts {
                let bbox = tight_bbox(doc, &part);
                let child = tree.add_child(node, bbox, part);
                queue.push((child, depth + 1));
            }
        }
    }

    if config.use_semantic_merge {
        semantic_merge(doc, &mut tree, &LexiconEmbedding, &config.merge);
    }
    tree
}

/// Convenience: the logical blocks of the reference segmenter.
pub fn logical_blocks_naive(doc: &Document, config: &SegmentConfig) -> Vec<LogicalBlock> {
    let tree = segment_naive(doc, config);
    blocks_of_tree(&tree)
}
