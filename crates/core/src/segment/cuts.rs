//! Whitespace movements and cuts (§5.1.1 of the paper).
//!
//! A *whitespace position* is a grid cell covered by no element bounding
//! box. A *valid 1-hop horizontal movement* from `(x, y)` advances to
//! `(x+1, y)`, `(x+1, y−1)` or `(x+1, y+1)` provided the target is
//! whitespace; vertical movements are symmetric. A **horizontal cut**
//! originates at `(0, y)` when a valid `W`-hop horizontal movement exists
//! from it — i.e. a whitespace path with ±1 drift spans the full width.
//! Runs of consecutive cut origins form the candidate visual separators
//! that Algorithm 1 classifies.
//!
//! The implementation is a bitset frontier sweep: for each origin, the
//! set of rows reachable at column `x` is a bitset; one column transition
//! is `(S | S≪1 | S≫1) & whitespace(x)`.

use vs2_docmodel::OccupancyGrid;

/// A maximal run of consecutive valid cuts (a candidate separator strip).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutRun {
    /// `true` for horizontal cuts (a horizontal strip separating content
    /// above from below); `false` for vertical.
    pub horizontal: bool,
    /// First cut origin (row index for horizontal, column for vertical).
    pub start: usize,
    /// Number of consecutive origins in the run (its cardinality `|s|`).
    pub len: usize,
}

impl CutRun {
    /// Centre origin of the run.
    pub fn center(&self) -> f64 {
        self.start as f64 + self.len as f64 / 2.0
    }

    /// One past the last origin.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// A dense bitset over `n` positions.
#[derive(Clone)]
struct Bits {
    words: Vec<u64>,
    n: usize,
}

impl Bits {
    fn zero(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
            n,
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// `self ∩ mask` — a non-drifting transition.
    fn mask_only(&self, mask: &Bits) -> Bits {
        let mut out = Bits::zero(self.n);
        for (i, w) in self.words.iter().enumerate() {
            out.words[i] = w & mask.words[i];
        }
        out
    }

    /// `self ∪ (self ≪ 1) ∪ (self ≫ 1)`, then mask to `other` — one
    /// column/row transition of the frontier sweep.
    fn drift_and_mask(&self, mask: &Bits) -> Bits {
        let mut out = Bits::zero(self.n);
        let k = self.words.len();
        for i in 0..k {
            let w = self.words[i];
            let mut v = w | (w << 1) | (w >> 1);
            if i > 0 {
                v |= self.words[i - 1] >> 63;
            }
            if i + 1 < k {
                v |= self.words[i + 1] << 63;
            }
            out.words[i] = v & mask.words[i];
        }
        // Clear any bits past n.
        let excess = k * 64 - self.n;
        if excess > 0 && k > 0 {
            out.words[k - 1] &= u64::MAX >> excess;
        }
        out
    }
}

/// Whitespace bitset of one column (over rows) or one row (over columns).
fn line_mask(grid: &OccupancyGrid, index: usize, column: bool) -> Bits {
    if column {
        let mut b = Bits::zero(grid.rows());
        for r in 0..grid.rows() {
            if grid.is_whitespace(index, r) {
                b.set(r);
            }
        }
        b
    } else {
        let mut b = Bits::zero(grid.cols());
        for c in 0..grid.cols() {
            if grid.is_whitespace(c, index) {
                b.set(c);
            }
        }
        b
    }
}

/// How often the ±1 drift of a valid movement may be exercised: once
/// every `DRIFT_PERIOD` hops. The paper's literal definition allows a
/// drift on *every* hop — a 45° slope at raster resolution — which lets a
/// "cut" zigzag through the inter-word gaps of a fully occupied text
/// line. Rate-limiting the drift to one step per three hops (≈ 18°)
/// keeps the intended tolerance to skew and offset blocks while making
/// a run of words an actual obstacle. See DESIGN.md.
pub const DRIFT_PERIOD: usize = 3;

fn sweep(masks: &[Bits], n_positions: usize, origin_mask: &Bits) -> Vec<usize> {
    let mut out = Vec::new();
    for p0 in 0..n_positions {
        if !origin_mask.get(p0) {
            continue;
        }
        let mut frontier = Bits::zero(n_positions);
        frontier.set(p0);
        let mut alive = true;
        for (step, mask) in masks.iter().enumerate().skip(1) {
            frontier = if step % DRIFT_PERIOD == 0 {
                frontier.drift_and_mask(mask)
            } else {
                frontier.mask_only(mask)
            };
            if frontier.is_empty() {
                alive = false;
                break;
            }
        }
        if alive {
            out.push(p0);
        }
    }
    out
}

/// Rows `y` such that a horizontal cut originates from `(0, y)`: a valid
/// `W`-hop horizontal movement (with rate-limited drift) spans the area.
pub fn horizontal_cuts(grid: &OccupancyGrid) -> Vec<usize> {
    let (cols, rows) = (grid.cols(), grid.rows());
    if cols == 0 || rows == 0 {
        return Vec::new();
    }
    let masks: Vec<Bits> = (0..cols).map(|c| line_mask(grid, c, true)).collect();
    sweep(&masks, rows, &masks[0])
}

/// Columns `x` such that a vertical cut originates from `(x, 0)`.
pub fn vertical_cuts(grid: &OccupancyGrid) -> Vec<usize> {
    let (cols, rows) = (grid.cols(), grid.rows());
    if cols == 0 || rows == 0 {
        return Vec::new();
    }
    let masks: Vec<Bits> = (0..rows).map(|r| line_mask(grid, r, false)).collect();
    sweep(&masks, cols, &masks[0])
}

/// Groups sorted cut origins into maximal consecutive runs.
pub fn cut_runs(origins: &[usize], horizontal: bool) -> Vec<CutRun> {
    let mut runs = Vec::new();
    cut_runs_into(origins, horizontal, &mut runs);
    runs
}

/// [`cut_runs`] appending into a caller-owned buffer — the fast path
/// reuses one run buffer across the whole recursion.
pub fn cut_runs_into(origins: &[usize], horizontal: bool, runs: &mut Vec<CutRun>) {
    let mut i = 0;
    while i < origins.len() {
        let start = origins[i];
        let mut len = 1;
        while i + 1 < origins.len() && origins[i + 1] == origins[i] + 1 {
            i += 1;
            len += 1;
        }
        runs.push(CutRun {
            horizontal,
            start,
            len,
        });
        i += 1;
    }
}

/// Convenience: both kinds of runs for a grid.
pub fn all_runs(grid: &OccupancyGrid) -> Vec<CutRun> {
    let mut runs = cut_runs(&horizontal_cuts(grid), true);
    runs.extend(cut_runs(&vertical_cuts(grid), false));
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::BBox;

    fn grid(boxes: &[BBox]) -> OccupancyGrid {
        OccupancyGrid::rasterize(&BBox::new(0.0, 0.0, 40.0, 40.0), boxes, 1.0)
    }

    #[test]
    fn empty_area_is_all_cuts() {
        let g = grid(&[]);
        assert_eq!(horizontal_cuts(&g).len(), 40);
        assert_eq!(vertical_cuts(&g).len(), 40);
    }

    #[test]
    fn full_width_band_blocks_horizontal_cuts_through_it() {
        // A band occupying rows 10..20 across the full width.
        let g = grid(&[BBox::new(0.0, 10.0, 40.0, 10.0)]);
        let cuts = horizontal_cuts(&g);
        assert!(cuts.contains(&5));
        assert!(cuts.contains(&25));
        for y in 10..20 {
            assert!(!cuts.contains(&y), "row {y} should be blocked");
        }
        // Vertical cuts are blocked everywhere (the band spans all columns).
        assert!(vertical_cuts(&g).is_empty());
    }

    #[test]
    fn drift_navigates_around_offset_obstacles() {
        // Two boxes with a one-row vertical offset leave a drifting path:
        // left box occupies rows 10..20 in cols 0..18, right box rows
        // 12..22 in cols 22..40. A path from row 21 can drift up… row 21
        // is blocked at right box (12..22). Row 9 is free on the left,
        // blocked? right box starts at row 12 — row 9..11 free on the
        // right. A cut from row 21 must drift to rows ≥ 22 on the right.
        let g = grid(&[
            BBox::new(0.0, 10.0, 18.0, 10.0),
            BBox::new(22.0, 12.0, 18.0, 10.0),
        ]);
        let cuts = horizontal_cuts(&g);
        // Row 21: free of the left box (ends at 20), blocked on the right
        // (12..22) but only needs to drift one row down by column 22.
        assert!(cuts.contains(&21), "cuts: {cuts:?}");
        // Row 11: blocked on the left (10..20); no cut can originate there.
        assert!(!cuts.contains(&11));
    }

    #[test]
    fn vertical_gap_between_columns_is_a_vertical_cut() {
        // Two columns of text with a gap at cols 18..22.
        let g = grid(&[
            BBox::new(0.0, 0.0, 18.0, 40.0),
            BBox::new(22.0, 0.0, 18.0, 40.0),
        ]);
        let cuts = vertical_cuts(&g);
        assert_eq!(cuts, vec![18, 19, 20, 21]);
    }

    #[test]
    fn runs_group_consecutive_origins() {
        let runs = cut_runs(&[3, 4, 5, 9, 10, 20], true);
        assert_eq!(
            runs,
            vec![
                CutRun {
                    horizontal: true,
                    start: 3,
                    len: 3
                },
                CutRun {
                    horizontal: true,
                    start: 9,
                    len: 2
                },
                CutRun {
                    horizontal: true,
                    start: 20,
                    len: 1
                },
            ]
        );
        assert_eq!(runs[0].center(), 4.5);
        assert_eq!(runs[0].end(), 6);
    }

    #[test]
    fn all_runs_combines_directions() {
        let g = grid(&[BBox::new(0.0, 10.0, 40.0, 10.0)]);
        let runs = all_runs(&g);
        assert!(runs.iter().all(|r| r.horizontal));
        assert_eq!(runs.len(), 2, "{runs:?}"); // above and below the band
    }

    #[test]
    fn empty_grid_dimensions() {
        let g = OccupancyGrid::rasterize(&BBox::new(0.0, 0.0, 0.0, 0.0), &[], 1.0);
        assert!(horizontal_cuts(&g).is_empty());
        assert!(vertical_cuts(&g).is_empty());
    }

    #[test]
    fn bitset_boundary_rows_work() {
        // Obstacle leaving only the very last row free.
        let g = grid(&[BBox::new(0.0, 0.0, 40.0, 39.0)]);
        let cuts = horizontal_cuts(&g);
        assert_eq!(cuts, vec![39]);
    }
}
