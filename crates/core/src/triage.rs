//! Layout-complexity triage: route trivially regular documents around
//! the full VS2 segmenter (ROADMAP item 4).
//!
//! The paper's premise is that *heterogeneous* documents need adaptive
//! segmentation; the contrapositive is that homogeneous, whitespace-
//! regular layouts — tax-form grids, invoice line-item tables — do not,
//! and a production tier should not pay full VS2 cost on them. The
//! triage scorer decides, **before** segmentation, between:
//!
//! * [`TriageDecision::FullVs2`] — the adaptive segmenter (default, and
//!   always the choice for skewed or visually complex pages);
//! * [`TriageDecision::CheapPath`] — the recursive XY-cut fast path
//!   ([`cheap_blocks`]), bit-compatible with the serving tier's
//!   degradation fallback;
//! * [`TriageDecision::PlanReplay`] — a validated cached segmentation
//!   plan (only ever emitted by the routed driver when a
//!   [`PlanStore`] is supplied and actually replays: replay beats the
//!   cheap path because it reproduces *full-VS2* blocks byte for byte).
//!
//! ## Determinism contract
//!
//! [`triage_doc`] is a pure function of the document geometry and the
//! two configs: same document → same decision, on any thread, on the
//! owned or the arena path, across repeated runs. All features derive
//! from quantities the plan-cache fingerprint already computes
//! ([`LayoutFingerprint`]: occupancy histogram, element counts, page
//! shape) plus the segmenter's own skew estimate — no randomness, no
//! wall clock, no cross-document state. The conformance suite pins the
//! purity and the metamorphic invariances property-style.

use crate::context::DocContext;
use crate::plan::{
    FingerprintConfig, LayoutFingerprint, PlanConfig, PlanOutcome, PlanStore, SegmentationPlan,
};
use crate::segment::{self, LogicalBlock, SegmentConfig, SKEW_EPSILON};
use vs2_docmodel::{BBox, Document, ElementRef};

/// Where the router sent a document. Wire names (`full` / `cheap` /
/// `replay`) feed the `triage_{full,cheap,replay}` serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriageDecision {
    /// Full adaptive VS2 segmentation.
    FullVs2,
    /// The recursive XY-cut cheap path ([`cheap_blocks`]).
    CheapPath,
    /// A validated cached plan replayed (plan-cache composition only).
    PlanReplay,
}

impl TriageDecision {
    /// Stable lowercase name, used in summaries and span tags.
    pub fn name(&self) -> &'static str {
        match self {
            TriageDecision::FullVs2 => "full",
            TriageDecision::CheapPath => "cheap",
            TriageDecision::PlanReplay => "replay",
        }
    }
}

/// Thresholds of the layout-complexity scorer. The defaults route
/// sparse, whitespace-regular line layouts (invoice tables, fixed
/// templates — the D4/Templated traffic class) to the cheap path while
/// keeping ornate posters, ragged flyers and skewed scans on full VS2;
/// measured on the D1–D4 corpora (see EXPERIMENTS.md), where they
/// separate cleanly: D4 occupancy entropy tops out near 0.53 while
/// every D2/D3 document scores above 0.55 (and dense scanned D1 grids
/// above 1.19, independently diverted by the skew gate). The
/// conformance perf gate pins the trade-off at these values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriageConfig {
    /// Fingerprint lattice the features are computed on. Must match the
    /// plan cache's config for the fingerprint-reuse contract to hold.
    pub fingerprint: FingerprintConfig,
    /// Maximum occupancy-histogram entropy (bits, of the 2-bit cell
    /// bucket distribution; ≤ 2.0) for the cheap path. Regular layouts
    /// concentrate cells in few buckets → low entropy.
    pub max_entropy: f64,
    /// Minimum column-regularity (0..=1) for the cheap path: the fill
    /// ratio of occupied fingerprint columns. Tables and grids fill
    /// their active columns evenly → high regularity.
    pub min_column_regularity: f64,
    /// Maximum image-element count for the cheap path. Pictorial pages
    /// are exactly the heterogeneous case VS2 exists for.
    pub max_images: u32,
    /// Minimum text-element count for the cheap path: tiny documents
    /// yield unreliable features (and save nothing by routing).
    pub min_texts: u32,
    /// Cheap-path segmenter geometry; must stay equal to the serving
    /// tier's degradation fallback for the pinned-equal contract.
    pub cheap: CheapPathConfig,
}

impl Default for TriageConfig {
    fn default() -> Self {
        Self {
            fingerprint: FingerprintConfig::default(),
            max_entropy: 0.55,
            min_column_regularity: 0.42,
            max_images: 0,
            min_texts: 12,
            cheap: CheapPathConfig::default(),
        }
    }
}

/// Geometry of the XY-cut cheap path. The defaults mirror the
/// `vs2-baselines` `XyCutSegmenter` defaults exactly; the conformance
/// suite pins [`cheap_blocks`] byte-identical to that segmenter (and
/// hence to the serving tier's degradation fallback).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheapPathConfig {
    /// Minimum empty-valley extent (document units) to cut at.
    pub min_gap: f64,
    /// Maximum recursion depth.
    pub max_depth: usize,
}

impl Default for CheapPathConfig {
    fn default() -> Self {
        Self {
            min_gap: 10.0,
            max_depth: 8,
        }
    }
}

/// The feature vector the scorer decides on. Every field is a pure
/// function of the document geometry; [`TriageFeatures::compute`]
/// derives the histogram features from the plan-cache fingerprint it
/// returns alongside, so routed serving reuses one fingerprint for both
/// triage and plan lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct TriageFeatures {
    /// Exact text-element count (fingerprint field).
    pub n_texts: u32,
    /// Exact image-element count (fingerprint field).
    pub n_images: u32,
    /// Shannon entropy (bits) of the fingerprint's 2-bit cell-bucket
    /// histogram; 0 for an empty page, at most 2.0.
    pub occupancy_entropy: f64,
    /// Fill ratio of occupied fingerprint columns (0..=1): mean cell
    /// occupancy of the occupied columns relative to the fullest one.
    pub column_regularity: f64,
    /// The segmenter's page-skew estimate (radians-equivalent slope).
    pub skew: f64,
}

/// The fingerprint-derived feature subset (everything except the skew
/// estimate, which is an order of magnitude more expensive and is only
/// needed once the layout gates pass).
struct LayoutFeatures {
    n_texts: u32,
    n_images: u32,
    occupancy_entropy: f64,
    column_regularity: f64,
}

impl LayoutFeatures {
    fn passes(&self, cfg: &TriageConfig) -> bool {
        self.n_images <= cfg.max_images
            && self.n_texts >= cfg.min_texts
            && self.occupancy_entropy <= cfg.max_entropy
            && self.column_regularity >= cfg.min_column_regularity
    }
}

impl TriageFeatures {
    /// Computes the features and the fingerprint they derive from.
    pub fn compute(doc: &Document, cfg: &FingerprintConfig) -> (Self, LayoutFingerprint) {
        let (lay, fp) = layout_features(doc, cfg);
        (
            Self {
                n_texts: lay.n_texts,
                n_images: lay.n_images,
                occupancy_entropy: lay.occupancy_entropy,
                column_regularity: lay.column_regularity,
                skew: segment::estimate_skew(doc),
            },
            fp,
        )
    }
}

fn layout_features(doc: &Document, cfg: &FingerprintConfig) -> (LayoutFeatures, LayoutFingerprint) {
    let fp = LayoutFingerprint::compute(doc, cfg);
    let cols = cfg.grid_cols.max(1);
    let rows = cfg.grid_rows.max(1);
    let n_cells = cols * rows;
    // Unpack the 2-bit buckets once for both histogram features.
    let mut bucket_counts = [0u32; 4];
    let mut col_occupied = vec![0u32; cols];
    for i in 0..n_cells {
        let word = fp.cells[(i * 2) / 64];
        let bucket = ((word >> ((i * 2) % 64)) & 0b11) as usize;
        bucket_counts[bucket] += 1;
        if bucket > 0 {
            col_occupied[i % cols] += 1;
        }
    }
    let occupancy_entropy = {
        let total = n_cells as f64;
        bucket_counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.log2()
            })
            .sum()
    };
    let column_regularity = {
        let max = col_occupied.iter().copied().max().unwrap_or(0);
        let occupied: Vec<u32> = col_occupied.iter().copied().filter(|&c| c > 0).collect();
        if max == 0 || occupied.is_empty() {
            0.0
        } else {
            let sum: u32 = occupied.iter().sum();
            sum as f64 / (occupied.len() as f64 * max as f64)
        }
    };
    (
        LayoutFeatures {
            n_texts: fp.n_texts,
            n_images: fp.n_images,
            occupancy_entropy,
            column_regularity,
        },
        fp,
    )
}

/// The pure pre-segmentation scorer: [`TriageDecision::FullVs2`] or
/// [`TriageDecision::CheapPath`] from the document alone (never
/// `PlanReplay` — that outcome needs a plan store and is only produced
/// by [`routed_blocks_ctx`]). Deterministic in `(doc, seg, cfg)`.
///
/// Equivalent to `decide(&TriageFeatures::compute(..).0, ..)` but runs
/// the skew estimate lazily: documents that already fail the layout
/// gates skip it entirely, so scoring a full-VS2-bound page costs one
/// fingerprint pass (the conformance overhead suite relies on this).
pub fn triage_doc(doc: &Document, seg: &SegmentConfig, cfg: &TriageConfig) -> TriageDecision {
    triage_lazy(doc, seg, cfg).0
}

/// Lazy decision plus the fingerprint it derived from (shared by
/// [`triage_doc`] and the routed driver's plan-lookup reuse).
fn triage_lazy(
    doc: &Document,
    seg: &SegmentConfig,
    cfg: &TriageConfig,
) -> (TriageDecision, LayoutFingerprint) {
    let (lay, fp) = layout_features(doc, &cfg.fingerprint);
    if !lay.passes(cfg) {
        return (TriageDecision::FullVs2, fp);
    }
    // Skewed pages need rotation-corrected analysis: content-dependent
    // by construction, so they always take the full path (the same gate
    // the plan cache bypasses on).
    if seg.deskew && segment::estimate_skew(doc).abs() >= SKEW_EPSILON {
        return (TriageDecision::FullVs2, fp);
    }
    (TriageDecision::CheapPath, fp)
}

/// Decision rule over precomputed features (exposed so the routed
/// driver can share one feature pass with the plan lookup).
pub fn decide(f: &TriageFeatures, seg: &SegmentConfig, cfg: &TriageConfig) -> TriageDecision {
    // Skewed pages need rotation-corrected analysis: content-dependent
    // by construction, so they always take the full path (the same gate
    // the plan cache bypasses on).
    if seg.deskew && f.skew.abs() >= SKEW_EPSILON {
        return TriageDecision::FullVs2;
    }
    let regular = f.n_images <= cfg.max_images
        && f.n_texts >= cfg.min_texts
        && f.occupancy_entropy <= cfg.max_entropy
        && f.column_regularity >= cfg.min_column_regularity;
    if regular {
        TriageDecision::CheapPath
    } else {
        TriageDecision::FullVs2
    }
}

/// Recursive XY-cut over `doc` — the cheap path's segmenter. This is a
/// pinned mirror of the `vs2-baselines` `XyCutSegmenter` (same valley
/// search, same cut order, same defaults): the conformance suite
/// asserts byte-identical blocks, which is what makes a triage-cheap
/// result provably equal to the serving tier's degradation fallback.
pub fn cheap_blocks(doc: &Document, cfg: &CheapPathConfig) -> Vec<LogicalBlock> {
    let elements = doc.element_refs();
    if elements.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    cut(doc, elements, 0, cfg, &mut out);
    out
}

/// Largest empty valley of a set of 1-D intervals; returns the valley
/// centre and extent. (Mirror of the baseline's helper.)
fn largest_valley(mut intervals: Vec<(f64, f64)>) -> Option<(f64, f64)> {
    if intervals.len() < 2 {
        return None;
    }
    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut best: Option<(f64, f64)> = None;
    let mut cover_end = intervals[0].1;
    for w in intervals.windows(2) {
        cover_end = cover_end.max(w[0].1);
        let gap = w[1].0 - cover_end;
        if gap > 0.0 && best.is_none_or(|(_, g)| gap > g) {
            best = Some((cover_end + gap / 2.0, gap));
        }
    }
    best
}

fn cut(
    doc: &Document,
    elements: Vec<ElementRef>,
    depth: usize,
    cfg: &CheapPathConfig,
    out: &mut Vec<LogicalBlock>,
) {
    let emit = |elements: Vec<ElementRef>, out: &mut Vec<LogicalBlock>| {
        let boxes: Vec<BBox> = elements.iter().map(|r| doc.bbox_of(*r)).collect();
        if let Some(bbox) = BBox::enclosing(boxes.iter()) {
            out.push(LogicalBlock { bbox, elements });
        }
    };
    if depth >= cfg.max_depth || elements.len() < 2 {
        emit(elements, out);
        return;
    }
    let ys: Vec<(f64, f64)> = elements
        .iter()
        .map(|r| {
            let b = doc.bbox_of(*r);
            (b.y, b.bottom())
        })
        .collect();
    let xs: Vec<(f64, f64)> = elements
        .iter()
        .map(|r| {
            let b = doc.bbox_of(*r);
            (b.x, b.right())
        })
        .collect();
    let vy = largest_valley(ys).filter(|(_, g)| *g >= cfg.min_gap);
    let vx = largest_valley(xs).filter(|(_, g)| *g >= cfg.min_gap);
    let (horizontal, at) = match (vy, vx) {
        (Some((cy, gy)), Some((cx, gx))) => {
            if gy >= gx {
                (true, cy)
            } else {
                (false, cx)
            }
        }
        (Some((cy, _)), None) => (true, cy),
        (None, Some((cx, _))) => (false, cx),
        (None, None) => {
            emit(elements, out);
            return;
        }
    };
    let (a, b): (Vec<ElementRef>, Vec<ElementRef>) = elements.into_iter().partition(|r| {
        let c = doc.bbox_of(*r).centroid();
        if horizontal {
            c.y < at
        } else {
            c.x < at
        }
    });
    if a.is_empty() || b.is_empty() {
        emit(a.into_iter().chain(b).collect(), out);
        return;
    }
    cut(doc, a, depth + 1, cfg, out);
    cut(doc, b, depth + 1, cfg, out);
}

/// The routed segmentation driver: triage → (plan replay | cheap path |
/// full VS2). Emits the `vs2.triage` span (tagged with the decision)
/// around the scoring pass.
///
/// Composition rules, in order:
///
/// 1. Skewed documents score `FullVs2` and (with a store) take the plan
///    driver's own skew bypass — identical behaviour to the unrouted
///    plan path.
/// 2. A `CheapPath` score first probes the plan store (when given):
///    a cached plan that validates **replays instead** — replay
///    reproduces full-VS2 blocks exactly, which beats the cheap path's
///    approximation at the same cost class. Probe misses and
///    validation rejects fall through to XY-cut; nothing is captured
///    (the cheap path never runs full segmentation, so there is no
///    plan to capture).
/// 3. A `FullVs2` score runs the normal segmentation path — through
///    [`crate::plan::planned_blocks_ctx`] when a store is given (so it
///    may still replay, reported as `PlanReplay`), plain
///    [`crate::segment::logical_blocks_ctx`] otherwise.
///
/// Returns the blocks, the final decision, and the plan outcome when
/// the plan driver ran (`None` on the storeless or cheap-probe paths).
pub fn routed_blocks_ctx(
    ctx: &DocContext<'_>,
    seg: &SegmentConfig,
    cfg: &TriageConfig,
    plan: Option<(&PlanConfig, &PlanStore)>,
) -> (Vec<LogicalBlock>, TriageDecision, Option<PlanOutcome>) {
    let doc = ctx.doc();
    let (scored, fp) = {
        let span = vs2_obs::span(vs2_obs::stages::TRIAGE);
        let (scored, fp) = triage_lazy(doc, seg, cfg);
        span.tag("digest", fp.digest());
        span.tag("cheap", u64::from(scored == TriageDecision::CheapPath));
        (scored, fp)
    };
    match scored {
        TriageDecision::CheapPath => {
            if let Some((plan_cfg, store)) = plan {
                // Replay beats cheap-path when a validated plan exists.
                if let Some(blocks) = try_replay(doc, &fp, plan_cfg, store) {
                    return (
                        blocks,
                        TriageDecision::PlanReplay,
                        Some(PlanOutcome::Replayed),
                    );
                }
            }
            (
                cheap_blocks(doc, &cfg.cheap),
                TriageDecision::CheapPath,
                None,
            )
        }
        _ => {
            if let Some((plan_cfg, store)) = plan {
                let (blocks, outcome) = crate::plan::planned_blocks_ctx(ctx, seg, plan_cfg, store);
                let decision = match outcome {
                    PlanOutcome::Replayed => TriageDecision::PlanReplay,
                    _ => TriageDecision::FullVs2,
                };
                (blocks, decision, Some(outcome))
            } else {
                (
                    segment::logical_blocks_ctx(ctx, seg),
                    TriageDecision::FullVs2,
                    None,
                )
            }
        }
    }
}

/// Probes the store for a plan under `fp` and replays it when it
/// validates; counts a hit / validation-reject on the store exactly
/// like the plan driver. Misses are silent — a cheap-path probe is not
/// a serving miss (nothing will be captured for it).
fn try_replay(
    doc: &Document,
    fp: &LayoutFingerprint,
    plan_cfg: &PlanConfig,
    store: &PlanStore,
) -> Option<Vec<LogicalBlock>> {
    let plan: std::sync::Arc<SegmentationPlan> = store.lookup(fp)?;
    let validated = {
        let _span = vs2_obs::span(vs2_obs::stages::PLAN_VALIDATE);
        plan.validate(doc, plan_cfg)
    };
    match validated {
        Ok(assignment) => {
            let blocks = {
                let span = vs2_obs::span(vs2_obs::stages::PLAN_REPLAY);
                span.tag("blocks", assignment.len() as u64);
                plan.replay(doc, &assignment)
            };
            store.note_hit();
            Some(blocks)
        }
        Err(_) => {
            store.note_validation_reject();
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs2_docmodel::TextElement;

    /// A sparse invoice-like column: 14 rows of 4 tightly packed words —
    /// the whitespace-regular traffic class the defaults route cheap.
    fn grid_doc() -> Document {
        let mut d = Document::new("grid", 612.0, 792.0);
        for row in 1..=14 {
            for i in 0..4 {
                let x = 80.0 + i as f64 * 19.0;
                let y = row as f64 * 49.5 + 14.0;
                d.push_text(TextElement::word(
                    format!("w{row}{i}"),
                    BBox::new(x - 8.0, y - 6.0, 16.0, 12.0),
                ));
            }
        }
        d
    }

    /// A ragged scatter: pseudo-random positions, images present.
    fn scatter_doc() -> Document {
        let mut d = Document::new("scatter", 612.0, 792.0);
        let mut s = 0x9E37u64;
        for i in 0..40 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (s >> 33) % 520;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = (s >> 33) % 700;
            d.push_text(TextElement::word(
                format!("w{i}"),
                BBox::new(
                    x as f64 + 10.0,
                    y as f64 + 10.0,
                    30.0 + (i % 7) as f64 * 9.0,
                    10.0 + (i % 5) as f64 * 6.0,
                ),
            ));
        }
        d.push_image(vs2_docmodel::ImageElement::new(
            1,
            BBox::new(200.0, 300.0, 180.0, 140.0),
            vs2_docmodel::Lab::new(50.0, 10.0, -20.0),
        ));
        d
    }

    #[test]
    fn grid_routes_cheap_and_scatter_routes_full() {
        let seg = SegmentConfig::default();
        let cfg = TriageConfig::default();
        assert_eq!(
            triage_doc(&grid_doc(), &seg, &cfg),
            TriageDecision::CheapPath
        );
        assert_eq!(
            triage_doc(&scatter_doc(), &seg, &cfg),
            TriageDecision::FullVs2
        );
    }

    #[test]
    fn decision_is_deterministic() {
        let seg = SegmentConfig::default();
        let cfg = TriageConfig::default();
        for doc in [grid_doc(), scatter_doc()] {
            let first = triage_doc(&doc, &seg, &cfg);
            for _ in 0..10 {
                assert_eq!(triage_doc(&doc, &seg, &cfg), first);
            }
        }
    }

    #[test]
    fn skewed_documents_always_route_full() {
        // Same slope construction as the plan-store bypass test.
        let mut d = Document::new("skewed", 600.0, 800.0);
        for line in 0..6 {
            for i in 0..8 {
                let x = 40.0 + i as f64 * 60.0;
                let y = 80.0 + line as f64 * 60.0 + x * 0.02;
                d.push_text(TextElement::word(
                    format!("w{line}{i}"),
                    BBox::new(x, y, 40.0, 12.0),
                ));
            }
        }
        assert!(segment::estimate_skew(&d).abs() >= SKEW_EPSILON);
        assert_eq!(
            triage_doc(&d, &SegmentConfig::default(), &TriageConfig::default()),
            TriageDecision::FullVs2
        );
        // With deskew disabled the skew gate is off and the grid-like
        // geometry may score cheap — the gate must be config-driven.
        let no_deskew = SegmentConfig {
            deskew: false,
            ..SegmentConfig::default()
        };
        let f = TriageFeatures::compute(&d, &FingerprintConfig::default()).0;
        assert_eq!(
            decide(&f, &no_deskew, &TriageConfig::default()) == TriageDecision::CheapPath,
            f.n_images == 0
                && f.n_texts >= TriageConfig::default().min_texts
                && f.occupancy_entropy <= TriageConfig::default().max_entropy
                && f.column_regularity >= TriageConfig::default().min_column_regularity
        );
    }

    #[test]
    fn lazy_scorer_matches_the_full_feature_rule() {
        // triage_doc short-circuits the skew estimate; its decision must
        // still equal the eager rule over the complete feature vector.
        let seg = SegmentConfig::default();
        let cfg = TriageConfig::default();
        for doc in [grid_doc(), scatter_doc(), Document::new("e", 600.0, 800.0)] {
            let f = TriageFeatures::compute(&doc, &cfg.fingerprint).0;
            assert_eq!(triage_doc(&doc, &seg, &cfg), decide(&f, &seg, &cfg));
        }
    }

    #[test]
    fn tiny_documents_route_full() {
        let mut d = Document::new("tiny", 600.0, 800.0);
        d.push_text(TextElement::word("only", BBox::new(60.0, 60.0, 40.0, 12.0)));
        assert_eq!(
            triage_doc(&d, &SegmentConfig::default(), &TriageConfig::default()),
            TriageDecision::FullVs2
        );
    }

    #[test]
    fn empty_document_features_are_sane() {
        let d = Document::new("empty", 600.0, 800.0);
        let (f, _) = TriageFeatures::compute(&d, &FingerprintConfig::default());
        assert_eq!(f.n_texts, 0);
        assert_eq!(f.occupancy_entropy, 0.0);
        assert_eq!(f.column_regularity, 0.0);
        assert!(cheap_blocks(&d, &CheapPathConfig::default()).is_empty());
    }

    #[test]
    fn features_reuse_the_fingerprint() {
        let doc = grid_doc();
        let cfg = FingerprintConfig::default();
        let (f, fp) = TriageFeatures::compute(&doc, &cfg);
        assert_eq!(fp, LayoutFingerprint::compute(&doc, &cfg));
        assert_eq!(f.n_texts, fp.n_texts);
        assert_eq!(f.n_images, fp.n_images);
    }

    #[test]
    fn cheap_blocks_cover_every_element_exactly_once() {
        let doc = grid_doc();
        let blocks = cheap_blocks(&doc, &CheapPathConfig::default());
        let total: usize = blocks.iter().map(|b| b.elements.len()).sum();
        assert_eq!(total, doc.len());
        let mut seen: Vec<ElementRef> = blocks.iter().flat_map(|b| b.elements.clone()).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), doc.len());
        assert!(blocks.len() > 1, "a clear grid must split");
    }

    #[test]
    fn routed_cheap_prefers_plan_replay_when_warm() {
        let doc = grid_doc();
        let seg = SegmentConfig::default();
        let tcfg = TriageConfig::default();
        let plan_cfg = PlanConfig::default();
        let store = PlanStore::default();
        // Warm the store through the plan driver (full segmentation).
        let (full_blocks, outcome) = crate::plan::planned_blocks(&doc, &seg, &plan_cfg, &store);
        assert_eq!(outcome, PlanOutcome::Miss { inserted: true });

        let ctx = DocContext::build(&doc);
        let (blocks, decision, plan_outcome) =
            routed_blocks_ctx(&ctx, &seg, &tcfg, Some((&plan_cfg, &store)));
        assert_eq!(decision, TriageDecision::PlanReplay);
        assert_eq!(plan_outcome, Some(PlanOutcome::Replayed));
        assert_eq!(blocks.len(), full_blocks.len());
        for (r, f) in blocks.iter().zip(&full_blocks) {
            assert_eq!(r.bbox, f.bbox);
        }
        assert_eq!(store.counters().hits, 1);
    }

    #[test]
    fn routed_cheap_without_plan_matches_cheap_blocks() {
        let doc = grid_doc();
        let ctx = DocContext::build(&doc);
        let tcfg = TriageConfig::default();
        let (blocks, decision, plan_outcome) =
            routed_blocks_ctx(&ctx, &SegmentConfig::default(), &tcfg, None);
        assert_eq!(decision, TriageDecision::CheapPath);
        assert_eq!(plan_outcome, None);
        let expected = cheap_blocks(&doc, &tcfg.cheap);
        assert_eq!(blocks.len(), expected.len());
        for (a, b) in blocks.iter().zip(&expected) {
            assert_eq!(a.bbox, b.bbox);
            assert_eq!(a.elements, b.elements);
        }
    }

    #[test]
    fn routed_full_matches_unrouted_segmentation() {
        let doc = scatter_doc();
        let ctx = DocContext::build(&doc);
        let seg = SegmentConfig::default();
        let (blocks, decision, _) = routed_blocks_ctx(&ctx, &seg, &TriageConfig::default(), None);
        assert_eq!(decision, TriageDecision::FullVs2);
        let expected = segment::logical_blocks_ctx(&ctx, &seg);
        assert_eq!(blocks.len(), expected.len());
        for (a, b) in blocks.iter().zip(&expected) {
            assert_eq!(a.bbox, b.bbox);
            assert_eq!(a.elements, b.elements);
        }
    }

    #[test]
    fn decision_names_are_wire_stable() {
        assert_eq!(TriageDecision::FullVs2.name(), "full");
        assert_eq!(TriageDecision::CheapPath.name(), "cheap");
        assert_eq!(TriageDecision::PlanReplay.name(), "replay");
    }
}
