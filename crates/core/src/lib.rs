//! # vs2-core
//!
//! A from-scratch reproduction of **VS2** — *"Visual Segmentation for
//! Information Extraction from Heterogeneous Visually Rich Documents"*
//! (Ritesh Sarkhel & Arnab Nandi, SIGMOD 2019).
//!
//! VS2 extracts named entities from visually rich documents in two
//! phases:
//!
//! 1. **VS2-Segment** ([`segment`]) decomposes a document into *logical
//!    blocks* — visually isolated but semantically coherent areas — via a
//!    hierarchical segmentation that combines whitespace-cut detection
//!    (§5.1.1), visual-delimiter selection (Algorithm 1), low-level
//!    visual-feature clustering (Table 1) and semantic merging (Eq. 1).
//! 2. **VS2-Select** ([`select`]) searches lexico-syntactic patterns —
//!    learned from a text-only holdout corpus by frequent-subtree mining
//!    (distant supervision, §5.2.1) — within each block's context
//!    boundary, and resolves conflicting matches by minimising the
//!    multimodal distance of Eq. 2 to the document's interest points
//!    (§5.3).
//!
//! [`pipeline::Vs2Pipeline`] wires both phases into an end-to-end
//! extractor; its [`pipeline::Vs2Config`] exposes every ablation switch
//! of the paper's §6.5 study.
//!
//! ```
//! use vs2_core::pipeline::{Vs2Config, Vs2Pipeline};
//!
//! // Distant supervision: (entity, example text, context) triples.
//! let holdout = vec![
//!     ("organizer", "James Wilson", "hosted by James Wilson"),
//!     ("organizer", "Mary Davis", "hosted by Mary Davis"),
//! ];
//! let pipeline = Vs2Pipeline::learn(holdout, Vs2Config::default());
//! assert_eq!(pipeline.entities(), vec!["organizer"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod pipeline;
pub mod plan;
pub mod segment;
pub mod select;
#[cfg(feature = "serde")]
mod serde_impls;
pub mod triage;

pub use context::{CtxEmbedder, DocContext};
pub use pipeline::{DisambiguationMode, Extraction, Vs2Config, Vs2Model, Vs2Pipeline};
pub use plan::{
    planned_blocks, planned_blocks_ctx, FingerprintConfig, LayoutFingerprint, PlanConfig,
    PlanCounters, PlanOutcome, PlanStore, PlanStoreConfig, SegmentationPlan,
};
pub use segment::{
    logical_blocks, logical_blocks_ctx, logical_blocks_naive, segment, segment_naive,
    segment_with_embedder, LogicalBlock, SegmentConfig,
};
pub use select::{Eq2Weights, SyntacticPattern};
pub use triage::{
    cheap_blocks, routed_blocks_ctx, triage_doc, CheapPathConfig, TriageConfig, TriageDecision,
    TriageFeatures,
};
