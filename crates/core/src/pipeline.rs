//! The end-to-end VS2 pipeline: segment → search → select (§5, Fig. 2).
//!
//! [`Vs2Pipeline`] owns the learned per-entity pattern inventory and the
//! configuration of both phases. For each document it (1) decomposes the
//! page into logical blocks with VS2-Segment, (2) searches every entity's
//! lexico-syntactic patterns within each block's context boundary, and
//! (3) resolves multiple matches with the multimodal disambiguation of
//! Eq. 2 (or, for the §6.5 ablations, first-match / Lesk selection).

use crate::context::DocContext;
use crate::segment::{logical_blocks, LogicalBlock, SegmentConfig};
use crate::select::blocktext::BlockText;
use crate::select::disambiguate::{distance_to_nearest, AreaEncoding, Eq2Weights, PageScale};
use crate::select::index::PatternIndex;
use crate::select::interest::interest_points;
use crate::select::learn::{learn_patterns, LearnConfig};
use crate::select::naive;
use crate::select::pattern::{PatternMatch, SyntacticPattern};
use std::collections::BTreeMap;
use std::sync::Arc;
use vs2_docmodel::{BBox, Document};
use vs2_nlp::embedding::Embedder;
use vs2_nlp::wsd::Lesk;
use vs2_nlp::LexiconEmbedding;

/// How conflicting matches are resolved — the §6.5 ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisambiguationMode {
    /// Eq. 2 multimodal distance to the nearest interest point (VS2).
    Multimodal,
    /// No disambiguation: first match in reading order (ablation A3).
    FirstMatch,
    /// Text-only Lesk gloss overlap (ablation A4).
    Lesk,
}

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct Vs2Config {
    /// VS2-Segment configuration (including its ablation switches).
    pub segment: SegmentConfig,
    /// Eq. 2 weights.
    pub weights: Eq2Weights,
    /// Conflict-resolution mode.
    pub disambiguation: DisambiguationMode,
    /// Pattern-learning knobs.
    pub learn: LearnConfig,
}

impl Default for Vs2Config {
    fn default() -> Self {
        Self {
            segment: SegmentConfig::default(),
            weights: Eq2Weights::balanced(),
            disambiguation: DisambiguationMode::Multimodal,
            learn: LearnConfig::default(),
        }
    }
}

/// One extracted entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Extraction {
    /// Entity key.
    pub entity: String,
    /// Extracted text `t_i`.
    pub text: String,
    /// Bounding box of the logical block that localised the entity (the
    /// §6.2 proposal).
    pub block_bbox: BBox,
    /// Bounding box of the matched tokens themselves.
    pub span_bbox: BBox,
    /// Selection score (lower is better for multimodal/first-match,
    /// higher for Lesk; comparable only within one entity's candidates).
    pub score: f64,
}

/// Distant-supervision profile of an entity: the embedding centroid and
/// verbosity of its holdout texts. Used as additional textual descriptors
/// when ranking candidates (§5.3.2's "visual and semantic descriptors").
#[derive(Debug, Clone)]
struct EntityProfile {
    centroid: vs2_nlp::Vector,
    mean_log_len: f64,
}

/// The learned, immutable state of a VS2 extractor: the per-entity
/// pattern inventory, Lesk glosses, and distant-supervision profiles.
///
/// Learning is the expensive phase ("learn once, extract many"): a model
/// is built once and then shared read-only — typically behind an [`Arc`]
/// — across any number of pipelines and worker threads. All per-document
/// state lives on the stack of [`Vs2Pipeline::extract`], so a single
/// model serves concurrent extractions without locking.
#[derive(Debug, Clone)]
pub struct Vs2Model {
    patterns: BTreeMap<String, Vec<SyntacticPattern>>,
    /// The compiled select-stage matcher, built once from `patterns` at
    /// model-construction time and shared (read-only) by every pipeline
    /// holding this model.
    index: PatternIndex,
    glosses: Lesk,
    profiles: BTreeMap<String, EntityProfile>,
}

impl Vs2Model {
    /// Learns a model from holdout entries `(entity, text, context)`.
    /// Contexts feed the Lesk glosses used by the text-only
    /// disambiguation ablation.
    pub fn learn<'a, I>(entries: I, learn: &LearnConfig) -> Self
    where
        I: IntoIterator<Item = (&'a str, &'a str, &'a str)> + Clone,
    {
        let patterns = learn_patterns(entries.clone().into_iter().map(|(e, t, _)| (e, t)), learn);
        let mut glosses = Lesk::new();
        let embedder = LexiconEmbedding;
        let mut sums: BTreeMap<String, (vs2_nlp::Vector, f64, usize)> = BTreeMap::new();
        for (entity, text, context) in entries {
            glosses.add_gloss(entity, context.split_whitespace());
            let v = embedder.embed_text(text.split_whitespace());
            let n_words = text.split_whitespace().count().max(1);
            let slot = sums
                .entry(entity.to_string())
                .or_insert(([0.0; vs2_nlp::DIM], 0.0, 0));
            for (acc, x) in slot.0.iter_mut().zip(v.iter()) {
                *acc += x;
            }
            slot.1 += (n_words as f64).ln();
            slot.2 += 1;
        }
        let profiles = sums
            .into_iter()
            .map(|(entity, (mut vec, log_len, n))| {
                let norm: f64 = vec.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for x in vec.iter_mut() {
                        *x /= norm;
                    }
                }
                (
                    entity,
                    EntityProfile {
                        centroid: vec,
                        mean_log_len: log_len / n as f64,
                    },
                )
            })
            .collect();
        let index = PatternIndex::build(&patterns);
        Self {
            patterns,
            index,
            glosses,
            profiles,
        }
    }

    /// Builds a model from an explicit pattern inventory (e.g. the
    /// hand-written Table 3/4 sets) with no glosses or profiles.
    pub fn with_patterns(patterns: BTreeMap<String, Vec<SyntacticPattern>>) -> Self {
        let index = PatternIndex::build(&patterns);
        Self {
            patterns,
            index,
            glosses: Lesk::new(),
            profiles: BTreeMap::new(),
        }
    }

    /// The learned pattern inventory.
    pub fn patterns(&self) -> &BTreeMap<String, Vec<SyntacticPattern>> {
        &self.patterns
    }

    /// The compiled select-stage matcher ([`PatternIndex`]), built once
    /// at model construction.
    pub fn index(&self) -> &PatternIndex {
        &self.index
    }

    /// Entities the model knows how to extract.
    pub fn entities(&self) -> Vec<&str> {
        self.patterns.keys().map(|s| s.as_str()).collect()
    }
}

/// The VS2 extractor: an [`Arc`]-shared learned [`Vs2Model`] plus the
/// (small, copyable) run configuration.
///
/// Cloning a pipeline is cheap — the model is shared, only the config is
/// copied — so ablation sweeps and worker pools can stamp out per-thread
/// or per-configuration pipelines from one learned model.
#[derive(Debug, Clone)]
pub struct Vs2Pipeline {
    model: Arc<Vs2Model>,
    /// Pipeline configuration (public for ablation sweeps).
    pub config: Vs2Config,
}

// The serving layer shares one pipeline across worker threads; keep that
// property from regressing silently.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Vs2Model>();
    assert_send_sync::<Vs2Pipeline>();
    assert_send_sync::<Vs2Config>();
};

impl Vs2Pipeline {
    /// Learns patterns from holdout entries `(entity, text, context)` and
    /// builds the pipeline. Contexts feed the Lesk glosses used by the
    /// text-only disambiguation ablation.
    pub fn learn<'a, I>(entries: I, config: Vs2Config) -> Self
    where
        I: IntoIterator<Item = (&'a str, &'a str, &'a str)> + Clone,
    {
        Self::from_model(Arc::new(Vs2Model::learn(entries, &config.learn)), config)
    }

    /// Builds a pipeline from an explicit pattern inventory (e.g. the
    /// hand-written Table 3/4 sets).
    pub fn with_patterns(
        patterns: BTreeMap<String, Vec<SyntacticPattern>>,
        config: Vs2Config,
    ) -> Self {
        Self::from_model(Arc::new(Vs2Model::with_patterns(patterns)), config)
    }

    /// Wraps an already learned (possibly shared) model.
    pub fn from_model(model: Arc<Vs2Model>, config: Vs2Config) -> Self {
        Self { model, config }
    }

    /// The shared learned model.
    pub fn model(&self) -> &Arc<Vs2Model> {
        &self.model
    }

    /// The learned pattern inventory.
    pub fn patterns(&self) -> &BTreeMap<String, Vec<SyntacticPattern>> {
        self.model.patterns()
    }

    /// Entities the pipeline knows how to extract.
    pub fn entities(&self) -> Vec<&str> {
        self.model.entities()
    }

    /// Segments the document and returns all candidates per entity,
    /// ranked best-first. The first candidate per entity is the
    /// pipeline's extraction.
    pub fn candidates(&self, doc: &Document) -> BTreeMap<String, Vec<Extraction>> {
        let blocks = logical_blocks(doc, &self.config.segment);
        self.candidates_on_blocks(doc, &blocks)
    }

    /// Runs the search-and-select phase over an externally provided block
    /// partition — the hook that plugs alternative segmentation
    /// algorithms (the Table 5 baselines) into the same VS2-Select stage.
    ///
    /// This is the indexed fast path: one [`PatternIndex::block_best`]
    /// query per block answers for every entity at once, instead of the
    /// old entity × block × pattern triple loop (preserved as
    /// [`candidates_on_blocks_naive`](Self::candidates_on_blocks_naive)).
    pub fn candidates_on_blocks(
        &self,
        doc: &Document,
        blocks: &[LogicalBlock],
    ) -> BTreeMap<String, Vec<Extraction>> {
        let select_span = vs2_obs::span(vs2_obs::stages::SELECT);
        select_span.tag("blocks", blocks.len() as u64);
        let (texts, ip_enc, page) = {
            let _index_span = vs2_obs::span(vs2_obs::stages::SELECT_INDEX);
            self.select_prep(doc, blocks)
        };
        let _scan_span = vs2_obs::span(vs2_obs::stages::SELECT_SCAN);
        self.scan_indexed(doc, blocks, &texts, &ip_enc, &page, &LexiconEmbedding)
    }

    /// [`candidates_on_blocks`](Self::candidates_on_blocks) over a
    /// per-job [`DocContext`] — the zero-copy select entry point. Block
    /// texts come from the context's interned token view
    /// ([`BlockText::build_in`]) and every embedding goes through the
    /// context's per-job memo, so nothing is re-tokenised, re-stemmed or
    /// re-embedded per block. Observationally identical to
    /// [`candidates_on_blocks`](Self::candidates_on_blocks); pinned by
    /// `tests/arena_equiv.rs` in `vs2-conformance`.
    pub fn candidates_on_blocks_ctx(
        &self,
        ctx: &DocContext<'_>,
        blocks: &[LogicalBlock],
    ) -> BTreeMap<String, Vec<Extraction>> {
        let select_span = vs2_obs::span(vs2_obs::stages::SELECT);
        select_span.tag("blocks", blocks.len() as u64);
        let embedder = ctx.embedder();
        let (texts, ip_enc, page) = {
            let _index_span = vs2_obs::span(vs2_obs::stages::SELECT_INDEX);
            let texts = self.block_texts_ctx(ctx, blocks);
            let (ip_enc, page) = self.select_prep_rest(ctx.doc(), blocks, &texts, &embedder);
            (texts, ip_enc, page)
        };
        let _scan_span = vs2_obs::span(vs2_obs::stages::SELECT_SCAN);
        self.scan_indexed(ctx.doc(), blocks, &texts, &ip_enc, &page, &embedder)
    }

    /// [`candidates_on_blocks`](Self::candidates_on_blocks) over
    /// externally built [`BlockText`]s — the feature-table sharing seam.
    /// A caller that already holds the per-block tables (e.g. built once
    /// via [`block_texts`](Self::block_texts) next to segmentation) hands
    /// them in and the select stage re-derives nothing. `BlockText::build`
    /// is deterministic, so the output is identical to the self-building
    /// entry point; the feature-table regression test in the conformance
    /// suite pins exactly that.
    pub fn candidates_on_blocks_with_texts(
        &self,
        doc: &Document,
        blocks: &[LogicalBlock],
        texts: &[BlockText],
    ) -> BTreeMap<String, Vec<Extraction>> {
        let select_span = vs2_obs::span(vs2_obs::stages::SELECT);
        select_span.tag("blocks", blocks.len() as u64);
        let (ip_enc, page) = {
            let _index_span = vs2_obs::span(vs2_obs::stages::SELECT_INDEX);
            self.select_prep_rest(doc, blocks, texts, &LexiconEmbedding)
        };
        let _scan_span = vs2_obs::span(vs2_obs::stages::SELECT_SCAN);
        self.scan_indexed(doc, blocks, texts, &ip_enc, &page, &LexiconEmbedding)
    }

    /// The indexed per-block scan shared by every select entry point.
    fn scan_indexed<E: Embedder>(
        &self,
        doc: &Document,
        blocks: &[LogicalBlock],
        texts: &[BlockText],
        ip_enc: &[AreaEncoding],
        page: &PageScale,
        embedder: &E,
    ) -> BTreeMap<String, Vec<Extraction>> {
        // One pass over the blocks; the index answers for all entities at
        // once. Accumulating per entity in ascending block order keeps the
        // pre-sort candidate order — and therefore the stable sort's
        // output — identical to the old entity-outer loop.
        let entities: Vec<&String> = self.model.patterns.keys().collect();
        let mut per_entity: Vec<Vec<Extraction>> = vec![Vec::new(); entities.len()];
        let mut scratch = crate::select::ScanScratch::default();
        let mut bests: Vec<Option<crate::select::BlockBest>> = Vec::new();
        for (bi, bt) in texts.iter().enumerate() {
            if bt.is_empty() {
                continue;
            }
            self.model
                .index
                .block_best_into(bt, &mut scratch, &mut bests);
            for (ei, best) in bests.iter().enumerate() {
                let Some(b) = *best else { continue };
                per_entity[ei].push(self.score_candidate(
                    doc,
                    blocks,
                    bi,
                    bt,
                    entities[ei],
                    b.m,
                    b.exact,
                    b.specificity,
                    ip_enc,
                    page,
                    embedder,
                ));
            }
        }

        let mut out: BTreeMap<String, Vec<Extraction>> = BTreeMap::new();
        for (ei, mut cands) in per_entity.into_iter().enumerate() {
            if cands.is_empty() {
                continue;
            }
            cands.sort_by(|a, b| a.score.total_cmp(&b.score));
            out.insert(entities[ei].clone(), cands);
        }
        out
    }

    /// The original (pre-index) search-and-select loop, kept as the
    /// executable reference for the differential equivalence suite and
    /// the select-perf gate. Emits no tracing spans: only the production
    /// path participates in the documented span tree.
    pub fn candidates_on_blocks_naive(
        &self,
        doc: &Document,
        blocks: &[LogicalBlock],
    ) -> BTreeMap<String, Vec<Extraction>> {
        let (texts, ip_enc, page) = self.select_prep(doc, blocks);
        let mut out: BTreeMap<String, Vec<Extraction>> = BTreeMap::new();
        for (entity, patterns) in self.model.patterns() {
            let mut cands: Vec<Extraction> = Vec::new();
            for (bi, bt) in texts.iter().enumerate() {
                if bt.is_empty() {
                    continue;
                }
                // Best (longest) match across this entity's patterns,
                // tracking the specificity of the most demanding pattern
                // that fired in this block ("the most optimal matched
                // pattern", §5.2).
                let Some((m, exact, specificity)) = naive::block_best(patterns, bt) else {
                    continue;
                };
                cands.push(self.score_candidate(
                    doc,
                    blocks,
                    bi,
                    bt,
                    entity,
                    m,
                    exact,
                    specificity,
                    &ip_enc,
                    &page,
                    &LexiconEmbedding,
                ));
            }
            if cands.is_empty() {
                continue;
            }
            cands.sort_by(|a, b| a.score.total_cmp(&b.score));
            out.insert(entity.clone(), cands);
        }
        out
    }

    /// Builds the select-side [`BlockText`] — tokenised reading-order
    /// text plus its [`FeatureTable`](crate::select::FeatureTable) — of
    /// every block. This is the feature-table sharing seam: a consumer
    /// that needs per-block text features (the segment side, diagnostics,
    /// a caller batching several selects over one partition) builds them
    /// once here and hands them to
    /// [`candidates_on_blocks_with_texts`](Self::candidates_on_blocks_with_texts),
    /// instead of every stage re-tokenising the same blocks privately.
    /// `BlockText::build` is a pure function of `(doc, block)`, so tables
    /// built through this seam are identical to the ones
    /// [`candidates_on_blocks`](Self::candidates_on_blocks) builds
    /// internally.
    pub fn block_texts(&self, doc: &Document, blocks: &[LogicalBlock]) -> Vec<BlockText> {
        blocks.iter().map(|b| BlockText::build(doc, b)).collect()
    }

    /// [`block_texts`](Self::block_texts) over a per-job [`DocContext`]:
    /// tokens come from the context's interned view instead of
    /// re-tokenising every block's elements
    /// ([`BlockText::build_in`]). Byte-identical tables.
    pub fn block_texts_ctx(&self, ctx: &DocContext<'_>, blocks: &[LogicalBlock]) -> Vec<BlockText> {
        blocks.iter().map(|b| BlockText::build_in(ctx, b)).collect()
    }

    /// Shared select-stage preparation: block texts (with their feature
    /// tables) and the interest-point encodings of the multimodal mode.
    fn select_prep(
        &self,
        doc: &Document,
        blocks: &[LogicalBlock],
    ) -> (Vec<BlockText>, Vec<AreaEncoding>, PageScale) {
        let texts = self.block_texts(doc, blocks);
        let (ip_enc, page) = self.select_prep_rest(doc, blocks, &texts, &LexiconEmbedding);
        (texts, ip_enc, page)
    }

    /// The non-text half of select preparation, over already-built block
    /// texts.
    fn select_prep_rest<E: Embedder>(
        &self,
        doc: &Document,
        blocks: &[LogicalBlock],
        texts: &[BlockText],
        embedder: &E,
    ) -> (Vec<AreaEncoding>, PageScale) {
        let ip_idx = interest_points(doc, blocks, embedder);
        let encode_block = |b: &LogicalBlock, bt: &BlockText| AreaEncoding {
            bbox: b.bbox,
            embedding: embedder.embed_text(bt.ann.content_words()),
            density: doc.word_density(&b.bbox),
        };
        let ip_enc: Vec<AreaEncoding> = ip_idx
            .iter()
            .map(|&i| encode_block(&blocks[i], &texts[i]))
            .collect();
        let page = PageScale {
            width: doc.width,
            height: doc.height,
        };
        (ip_enc, page)
    }

    /// Turns one block-level winning match into a scored [`Extraction`].
    /// Both matchers funnel through here, so the differential suite pins
    /// exactly the matcher — scoring is shared by construction.
    #[allow(clippy::too_many_arguments)]
    fn score_candidate<E: Embedder>(
        &self,
        doc: &Document,
        blocks: &[LogicalBlock],
        bi: usize,
        bt: &BlockText,
        entity: &str,
        m: PatternMatch,
        exact: bool,
        specificity: usize,
        ip_enc: &[AreaEncoding],
        page: &PageScale,
        embedder: &E,
    ) -> Extraction {
        let (text, span_bbox) = if exact {
            // D1 semantics: the descriptor locates the field; the
            // extraction is the value adjacent to it (bounded to a
            // handful of tokens so an under-segmented block does
            // not leak the whole page).
            let after_end = (m.end + 3).min(bt.len());
            let after = bt.span_text(m.end, after_end);
            let before_start = m.start.saturating_sub(3);
            let before = bt.span_text(before_start, m.start);
            if !after.trim().is_empty() {
                (after, bt.span_bbox(doc, m.end, after_end))
            } else if !before.trim().is_empty() {
                (before, bt.span_bbox(doc, before_start, m.start))
            } else {
                (
                    bt.span_text(m.start, m.end),
                    bt.span_bbox(doc, m.start, m.end),
                )
            }
        } else {
            (
                bt.span_text(m.start, m.end),
                bt.span_bbox(doc, m.start, m.end),
            )
        };
        let score = match self.config.disambiguation {
            DisambiguationMode::Multimodal => {
                let enc = AreaEncoding {
                    bbox: span_bbox,
                    embedding: embedder.embed_text(text.split_whitespace()),
                    density: doc.word_density(&blocks[bi].bbox),
                };
                // Specificity acts as a tie-break: a block where a
                // more demanding pattern fired is a better-typed
                // candidate at equal multimodal distance. The
                // entity's holdout profile contributes two further
                // textual descriptors: embedding affinity and
                // verbosity agreement.
                let mut score = distance_to_nearest(&enc, ip_enc, &self.config.weights, page)
                    - 0.05 * specificity as f64;
                if let Some(profile) = self.model.profiles.get(entity) {
                    let sim = vs2_nlp::cosine(&enc.embedding, &profile.centroid);
                    score += 0.25 * (1.0 - sim.clamp(-1.0, 1.0)) / 2.0;
                    let n_words = text.split_whitespace().count().max(1);
                    let dlen = ((n_words as f64).ln() - profile.mean_log_len).abs();
                    score += 0.25 * (dlen / 2.0).min(1.0);
                }
                // Holdout-context gloss overlap (the block's words
                // vs the entity's fixed-format contexts) — the
                // cue that separates "Phone …" from "Fax …".
                let ctx = bt.ann.content_words();
                score -= 0.15 * self.model.glosses.score(entity, ctx).min(1.0);
                score
            }
            DisambiguationMode::FirstMatch => {
                // Reading order: top-to-bottom, left-to-right.
                blocks[bi].bbox.y * 10_000.0 + blocks[bi].bbox.x
            }
            DisambiguationMode::Lesk => {
                let ctx = bt.ann.content_words();
                -self.model.glosses.score(entity, ctx)
            }
        };
        Extraction {
            entity: entity.to_string(),
            text,
            block_bbox: blocks[bi].bbox,
            span_bbox,
            score,
        }
    }

    /// Extracts the best candidate per entity over externally provided
    /// blocks.
    pub fn extract_on_blocks(&self, doc: &Document, blocks: &[LogicalBlock]) -> Vec<Extraction> {
        assign(self.candidates_on_blocks(doc, blocks))
    }

    /// [`extract_on_blocks`](Self::extract_on_blocks) over a per-job
    /// [`DocContext`] — the zero-copy serve path. Byte-identical output;
    /// nothing is cloned or re-tokenised across the stage boundary.
    pub fn extract_on_blocks_ctx(
        &self,
        ctx: &DocContext<'_>,
        blocks: &[LogicalBlock],
    ) -> Vec<Extraction> {
        assign(self.candidates_on_blocks_ctx(ctx, blocks))
    }

    /// End-to-end zero-copy extraction: builds one [`DocContext`] for
    /// `doc`, segments with the context's memoising embedder, and runs
    /// the interned select stage — the single-call equivalent of what a
    /// serve worker does per job. Byte-identical to
    /// [`extract`](Self::extract).
    pub fn extract_ctx(&self, doc: &Document) -> Vec<Extraction> {
        let _extract_span = vs2_obs::span(vs2_obs::stages::EXTRACT);
        let ctx = DocContext::build(doc);
        let blocks = crate::segment::logical_blocks_ctx(&ctx, &self.config.segment);
        assign(self.candidates_on_blocks_ctx(&ctx, &blocks))
    }

    /// Triage-routed zero-copy extraction: scores the document's layout
    /// complexity first ([`crate::triage`]) and segments via the XY-cut
    /// cheap path when the layout is trivially regular, full VS2
    /// otherwise — the single-call equivalent of a `--triage` serve
    /// worker (without a plan store). Returns the extractions plus the
    /// routing decision. On a [`crate::triage::TriageDecision::FullVs2`]
    /// decision the output is byte-identical to
    /// [`extract_ctx`](Self::extract_ctx).
    pub fn extract_routed(
        &self,
        doc: &Document,
        triage: &crate::triage::TriageConfig,
    ) -> (Vec<Extraction>, crate::triage::TriageDecision) {
        let _extract_span = vs2_obs::span(vs2_obs::stages::EXTRACT);
        let ctx = DocContext::build(doc);
        let (blocks, decision, _) =
            crate::triage::routed_blocks_ctx(&ctx, &self.config.segment, triage, None);
        (
            assign(self.candidates_on_blocks_ctx(&ctx, &blocks)),
            decision,
        )
    }

    /// Reference-path variant of
    /// [`extract_on_blocks`](Self::extract_on_blocks) driving the naive
    /// matcher — assignment included, so end-to-end differential tests
    /// can compare full extractions.
    pub fn extract_on_blocks_naive(
        &self,
        doc: &Document,
        blocks: &[LogicalBlock],
    ) -> Vec<Extraction> {
        assign(self.candidates_on_blocks_naive(doc, blocks))
    }

    /// Extracts the best candidate per entity.
    pub fn extract(&self, doc: &Document) -> Vec<Extraction> {
        let _extract_span = vs2_obs::span(vs2_obs::stages::EXTRACT);
        assign(self.candidates(doc))
    }
}

/// Greedy joint assignment of candidates to entities: the globally
/// best-scoring (entity, candidate) pairs claim their blocks one-to-one,
/// so two entities never extract from the same logical block while an
/// alternative exists. Entities whose candidates are all claimed fall
/// back to their best candidate.
fn assign(candidates: BTreeMap<String, Vec<Extraction>>) -> Vec<Extraction> {
    let _assign_span = vs2_obs::span(vs2_obs::stages::ASSIGN);
    let block_key = |e: &Extraction| -> (i64, i64, i64, i64) {
        (
            (e.block_bbox.x * 8.0) as i64,
            (e.block_bbox.y * 8.0) as i64,
            (e.block_bbox.w * 8.0) as i64,
            (e.block_bbox.h * 8.0) as i64,
        )
    };
    let mut claimed: std::collections::BTreeSet<(i64, i64, i64, i64)> =
        std::collections::BTreeSet::new();
    let mut unassigned: Vec<&String> = candidates.keys().collect();
    let mut chosen: BTreeMap<String, Extraction> = BTreeMap::new();

    // Regret-based greedy: at each round, the entity that would lose the
    // most by not getting its current best unclaimed candidate (the gap
    // to its second choice) assigns first.
    while !unassigned.is_empty() {
        let mut best_pick: Option<(f64, usize, &Extraction)> = None; // (regret, pos, cand)
        for (pos, entity) in unassigned.iter().enumerate() {
            let mut free = candidates[*entity]
                .iter()
                .filter(|c| !claimed.contains(&block_key(c)));
            let Some(first) = free.next() else { continue };
            let regret = free
                .next()
                .map(|second| second.score - first.score)
                .unwrap_or(f64::INFINITY);
            let better = match &best_pick {
                None => true,
                Some((r, _, _)) => regret > *r,
            };
            if better {
                best_pick = Some((regret, pos, first));
            }
        }
        match best_pick {
            Some((_, pos, cand)) => {
                claimed.insert(block_key(cand));
                let entity = unassigned.remove(pos);
                chosen.insert(entity.clone(), cand.clone());
            }
            None => break, // remaining entities have no free candidates
        }
    }
    // Fallback: an entity whose candidates were all claimed still emits
    // its best candidate.
    for (entity, cands) in &candidates {
        if !chosen.contains_key(entity) {
            if let Some(best) = cands.first() {
                chosen.insert(entity.clone(), best.clone());
            }
        }
    }
    chosen.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::pattern::Feature;
    use vs2_docmodel::TextElement;
    use vs2_nlp::ner::NerTag;

    /// A toy two-block document: a salient title + organiser block at the
    /// top, and a low-salience sponsor credit at the bottom — both match
    /// a person-pattern; disambiguation must pick the top one.
    fn poster() -> Document {
        let mut d = Document::new("pipe", 400.0, 400.0);
        // Title (interest point): big font.
        for (i, w) in ["Grand", "Jazz", "Festival"].iter().enumerate() {
            d.push_text(TextElement::word(
                *w,
                BBox::new(40.0 + 110.0 * i as f64, 20.0, 100.0, 34.0),
            ));
        }
        // Organizer line just below the title.
        for (i, w) in ["Hosted", "by", "James", "Wilson"].iter().enumerate() {
            d.push_text(TextElement::word(
                *w,
                BBox::new(60.0 + 70.0 * i as f64, 80.0, 60.0, 13.0),
            ));
        }
        // Sponsor credit far below, small font.
        for (i, w) in ["Sponsored", "by", "Mary", "Davis"].iter().enumerate() {
            d.push_text(TextElement::word(
                *w,
                BBox::new(60.0 + 55.0 * i as f64, 370.0, 50.0, 8.0),
            ));
        }
        d
    }

    fn organizer_patterns() -> BTreeMap<String, Vec<SyntacticPattern>> {
        let mut m = BTreeMap::new();
        m.insert(
            "event_organizer".to_string(),
            vec![SyntacticPattern::Window {
                kind: None,
                required: vec![Feature::ner(NerTag::Person)],
            }],
        );
        m
    }

    #[test]
    fn multimodal_disambiguation_prefers_salient_candidate() {
        let doc = poster();
        let pipeline = Vs2Pipeline::with_patterns(organizer_patterns(), Vs2Config::default());
        let cands = pipeline.candidates(&doc);
        let organizer = &cands["event_organizer"];
        assert!(organizer.len() >= 2, "need both candidates: {organizer:?}");
        // The winner is the one near the title (y ≈ 80), not the footer.
        assert!(
            organizer[0].block_bbox.y < 200.0,
            "picked footer: {organizer:?}"
        );
        assert!(organizer[0].text.contains("James"));
    }

    #[test]
    fn first_match_mode_picks_reading_order() {
        let doc = poster();
        let cfg = Vs2Config {
            disambiguation: DisambiguationMode::FirstMatch,
            ..Vs2Config::default()
        };
        let pipeline = Vs2Pipeline::with_patterns(organizer_patterns(), cfg);
        let ex = pipeline.extract(&doc);
        let organizer = ex.iter().find(|e| e.entity == "event_organizer").unwrap();
        assert!(organizer.block_bbox.y < 200.0);
    }

    #[test]
    fn exact_phrase_extracts_the_value() {
        let mut d = Document::new("form", 300.0, 60.0);
        for (i, w) in ["Total", "wages", "amount", "12,345.00"].iter().enumerate() {
            d.push_text(TextElement::word(
                *w,
                BBox::new(10.0 + 60.0 * i as f64, 10.0, 55.0, 10.0),
            ));
        }
        let mut patterns = BTreeMap::new();
        patterns.insert(
            "field_x".to_string(),
            vec![SyntacticPattern::ExactPhrase("total wages amount".into())],
        );
        let pipeline = Vs2Pipeline::with_patterns(patterns, Vs2Config::default());
        let ex = pipeline.extract(&d);
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].text, "12,345.00");
    }

    #[test]
    fn learned_pipeline_end_to_end() {
        let entries: Vec<(&str, &str, &str)> = vec![
            ("who", "James Wilson", "hosted by James Wilson"),
            ("who", "Mary Davis", "hosted by Mary Davis"),
            ("who", "Robert Brown", "organized by Robert Brown"),
            ("who", "Linda Garcia", "presented by Linda Garcia"),
        ];
        let pipeline = Vs2Pipeline::learn(entries, Vs2Config::default());
        assert!(!pipeline.patterns()["who"].is_empty());
        let doc = poster();
        let ex = pipeline.extract(&doc);
        let who = ex.iter().find(|e| e.entity == "who");
        assert!(who.is_some(), "{ex:?}");
    }

    #[test]
    fn lesk_mode_uses_glosses() {
        // Note: none of the corpus names besides "James Wilson" appear on
        // the poster — the gloss must favour the hosted-by block through
        // its context words, not through a name collision.
        let entries: Vec<(&str, &str, &str)> = vec![
            ("who", "James Wilson", "hosted by James Wilson tonight"),
            ("who", "Robert Brown", "hosted by Robert Brown tonight"),
            ("who", "Linda Garcia", "hosted by Linda Garcia tonight"),
        ];
        let cfg = Vs2Config {
            disambiguation: DisambiguationMode::Lesk,
            ..Vs2Config::default()
        };
        let pipeline = Vs2Pipeline::learn(entries, cfg);
        let doc = poster();
        let ex = pipeline.extract(&doc);
        // "Hosted" appears in the gloss, so the hosted-by block wins over
        // the sponsored-by block.
        let who = ex.iter().find(|e| e.entity == "who").unwrap();
        assert!(who.text.contains("James"), "{who:?}");
    }

    #[test]
    fn no_patterns_no_extractions() {
        let pipeline = Vs2Pipeline::with_patterns(BTreeMap::new(), Vs2Config::default());
        assert!(pipeline.extract(&poster()).is_empty());
        assert!(pipeline.entities().is_empty());
    }
}
