//! # vs2-obs
//!
//! Zero-external-dependency observability for the VS2 stack: lightweight
//! thread-local tracing spans around every pipeline stage, and a sharded
//! [`MetricsRegistry`] that is lock-free on the hot path.
//!
//! Design constraints, in order:
//!
//! 1. **Off means off.** With no [`Trace`] installed, [`span`] reads one
//!    thread-local flag and returns an inert guard. The serving layer's
//!    default output must stay byte-identical with instrumentation
//!    compiled in (the conformance overhead suite enforces this).
//! 2. **Lock-free recording.** Metrics writers touch only their own
//!    shard with relaxed atomics; merging happens on scrape.
//! 3. **Deterministic export.** Spans and metrics render to stable JSONL
//!    (`{"record":"span",...}` / `{"record":"metrics",...}`) via
//!    [`export`].
//!
//! The canonical stage names live in [`stages`]; instrumented code must
//! use those constants so the span-tree conformance tests can assert
//! coverage of the documented stage set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod span;

pub use metrics::{
    bucket_lower_bound, bucket_of, CounterId, HistogramId, HistogramSnapshot, MetricsRegistry,
    MetricsSpec, BUCKET_COUNT,
};
pub use span::{enabled, span, SpanGuard, SpanRecord, Trace};

/// Canonical stage names for VS2 pipeline spans.
///
/// Nesting (default configuration):
///
/// ```text
/// vs2.extract
/// ├── vs2.segment
/// │   ├── vs2.segment.deskew          (once; skew estimation + rotation)
/// │   ├── vs2.segment.area            (one per visited area, tag depth=N)
/// │   │   ├── vs2.segment.grid        (packed-raster rasterisation)
/// │   │   ├── vs2.segment.fast.cuts   (word-packed whitespace sweep)
/// │   │   └── vs2.segment.cluster     (only when delimiters found < 2 parts)
/// │   └── vs2.segment.merge           (once; Eq. 1 semantic merging)
/// │       └── vs2.segment.fast.embed  (per-sweep embedding-cache fill)
/// ├── vs2.select                      (pattern search + disambiguation)
/// │   ├── vs2.select.index            (block texts, feature tables, interest points)
/// │   └── vs2.select.scan             (indexed pattern scan + scoring)
/// └── vs2.assign                      (greedy candidate→entity assignment)
/// ```
///
/// With the plan cache enabled (`vs2-serve --plan-cache`) the segment
/// subtree is preceded by the plan family, nested under `vs2.extract`:
///
/// ```text
/// vs2.plan.fingerprint                (quantised layout sketch; lookup key)
/// vs2.plan.validate                   (cache hit only; cover/bounds checks)
/// vs2.plan.replay                     (validation passed; replaces vs2.segment)
/// ```
pub mod stages {
    /// Root span of one document's extraction.
    pub const EXTRACT: &str = "vs2.extract";
    /// VS2-Segment: logical-block decomposition.
    pub const SEGMENT: &str = "vs2.segment";
    /// Skew estimation (and rotation when skew is detected).
    pub const DESKEW: &str = "vs2.segment.deskew";
    /// One XY-cut work-queue area visit; tagged with `depth`.
    pub const AREA: &str = "vs2.segment.area";
    /// Occupancy-grid rasterisation of one area.
    pub const GRID: &str = "vs2.segment.grid";
    /// Implicit-modifier visual clustering of one area.
    pub const CLUSTER: &str = "vs2.segment.cluster";
    /// Semantic merging (Eq. 1) over the converged layout tree.
    pub const MERGE: &str = "vs2.segment.merge";
    /// The word-packed whitespace sweep of one area (segment fast path);
    /// child of [`AREA`].
    pub const FAST_CUTS: &str = "vs2.segment.fast.cuts";
    /// Per-sweep embedding-cache fill of the fast semantic merge; child
    /// of [`MERGE`].
    pub const FAST_EMBED: &str = "vs2.segment.fast.embed";
    /// VS2-Select: pattern search and multimodal disambiguation.
    pub const SELECT: &str = "vs2.select";
    /// Select preparation: block texts, per-block feature tables and
    /// interest-point encodings.
    pub const SELECT_INDEX: &str = "vs2.select.index";
    /// The indexed per-block pattern scan plus candidate scoring.
    pub const SELECT_SCAN: &str = "vs2.select.scan";
    /// Greedy joint assignment of candidates to entities.
    pub const ASSIGN: &str = "vs2.assign";
    /// Layout-fingerprint computation over the raw element geometry
    /// (plan-cache lookup key; emitted before segmentation).
    pub const PLAN_FINGERPRINT: &str = "vs2.plan.fingerprint";
    /// Validation of a cached segmentation plan against the incoming
    /// document (element cover, bounds and count checks).
    pub const PLAN_VALIDATE: &str = "vs2.plan.validate";
    /// Replay of a validated plan: block materialisation without a full
    /// segmentation pass.
    pub const PLAN_REPLAY: &str = "vs2.plan.replay";
    /// Pre-segmentation layout-complexity triage (routing decision);
    /// tagged with the fingerprint `digest` and the `cheap` verdict.
    /// Emitted only on the routed path (`--triage`).
    pub const TRIAGE: &str = "vs2.triage";

    /// Stages that appear exactly once per document under the default
    /// configuration (deskew and semantic merging enabled).
    pub const ONCE_PER_DOC: &[&str] = &[
        EXTRACT,
        SEGMENT,
        DESKEW,
        MERGE,
        SELECT,
        SELECT_INDEX,
        SELECT_SCAN,
        ASSIGN,
    ];

    /// Every documented stage name.
    pub const ALL: &[&str] = &[
        EXTRACT,
        SEGMENT,
        DESKEW,
        AREA,
        GRID,
        FAST_CUTS,
        CLUSTER,
        MERGE,
        FAST_EMBED,
        SELECT,
        SELECT_INDEX,
        SELECT_SCAN,
        ASSIGN,
        PLAN_FINGERPRINT,
        PLAN_VALIDATE,
        PLAN_REPLAY,
        TRIAGE,
    ];
}
