//! Thread-local tracing spans.
//!
//! Tracing is **off by default**: without an installed [`Trace`], the
//! [`span`] constructor reads one thread-local flag and returns an inert
//! guard — no allocation, no clock read, no branch in the caller. With a
//! trace installed, each span records its parent (the innermost open
//! span on this thread), its start offset and duration against the
//! trace's monotonic origin, and any `u64` tags attached via
//! [`SpanGuard::tag`].
//!
//! The model is strictly per-thread and per-document: the serving layer
//! installs a [`Trace`] around one job's extraction on the worker thread
//! running it, drains the finished spans with [`Trace::finish`], and
//! ships them to the exporter keyed by job sequence number.

use std::cell::{Cell, RefCell};
use std::time::Instant;

/// One finished (or still open) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within one trace; the root has id 0.
    pub id: u32,
    /// Parent span id; `None` for the root span.
    pub parent: Option<u32>,
    /// Stage name (see [`crate::stages`]).
    pub stage: &'static str,
    /// Start offset from the trace origin, in nanoseconds.
    pub start_ns: u64,
    /// Duration, in nanoseconds (0 until the guard drops).
    pub dur_ns: u64,
    /// Numeric tags attached while the span was open.
    pub tags: Vec<(&'static str, u64)>,
}

struct TraceState {
    origin: Instant,
    spans: Vec<SpanRecord>,
    stack: Vec<u32>,
}

thread_local! {
    static TRACING: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<Option<TraceState>> = const { RefCell::new(None) };
}

/// Whether a trace is installed on this thread.
pub fn enabled() -> bool {
    TRACING.with(|t| t.get())
}

/// An installed trace on the current thread. Spans opened while the
/// trace is live are collected and returned by [`Trace::finish`];
/// dropping the trace without finishing (e.g. during a panic unwind)
/// discards them and uninstalls cleanly.
#[derive(Debug)]
pub struct Trace {
    armed: bool,
}

impl Trace {
    /// Installs a trace on the current thread.
    ///
    /// # Panics
    /// If a trace is already installed on this thread — traces do not
    /// nest; one document's extraction owns the thread.
    pub fn start() -> Trace {
        TRACING.with(|t| {
            assert!(!t.get(), "a Trace is already installed on this thread");
            t.set(true);
        });
        STATE.with(|s| {
            *s.borrow_mut() = Some(TraceState {
                origin: Instant::now(),
                spans: Vec::with_capacity(16),
                stack: Vec::with_capacity(8),
            });
        });
        Trace { armed: true }
    }

    /// Uninstalls the trace and returns every span recorded on this
    /// thread since [`Trace::start`], in opening order.
    pub fn finish(mut self) -> Vec<SpanRecord> {
        self.armed = false;
        TRACING.with(|t| t.set(false));
        STATE.with(|s| s.borrow_mut().take().map(|st| st.spans).unwrap_or_default())
    }
}

impl Drop for Trace {
    fn drop(&mut self) {
        if self.armed {
            TRACING.with(|t| t.set(false));
            STATE.with(|s| s.borrow_mut().take());
        }
    }
}

/// Opens a span named `stage`. With no trace installed this is a no-op
/// guard; otherwise the span becomes the innermost open span until the
/// guard drops.
#[inline]
pub fn span(stage: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { id: None };
    }
    let id = STATE.with(|s| {
        let mut borrow = s.borrow_mut();
        let st = borrow.as_mut()?;
        let id = st.spans.len() as u32;
        let parent = st.stack.last().copied();
        let start_ns = st.origin.elapsed().as_nanos() as u64;
        st.spans.push(SpanRecord {
            id,
            parent,
            stage,
            start_ns,
            dur_ns: 0,
            tags: Vec::new(),
        });
        st.stack.push(id);
        Some(id)
    });
    SpanGuard { id }
}

/// RAII guard for an open span; dropping it closes the span.
#[derive(Debug)]
pub struct SpanGuard {
    id: Option<u32>,
}

impl SpanGuard {
    /// Attaches a numeric tag to the open span. No-op when tracing is
    /// disabled.
    pub fn tag(&self, key: &'static str, value: u64) {
        let Some(id) = self.id else { return };
        STATE.with(|s| {
            if let Some(st) = s.borrow_mut().as_mut() {
                if let Some(rec) = st.spans.get_mut(id as usize) {
                    rec.tags.push((key, value));
                }
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        STATE.with(|s| {
            if let Some(st) = s.borrow_mut().as_mut() {
                let end_ns = st.origin.elapsed().as_nanos() as u64;
                if let Some(rec) = st.spans.get_mut(id as usize) {
                    rec.dur_ns = end_ns.saturating_sub(rec.start_ns);
                }
                // Guards drop in LIFO order in well-nested code, but a
                // panic unwind may skip intermediate frames; retain only
                // strictly shallower spans on the stack.
                while st.stack.last().is_some_and(|&top| top >= id) {
                    st.stack.pop();
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        assert!(!enabled());
        {
            let g = span("vs2.test");
            g.tag("k", 1);
        }
        let trace = Trace::start();
        assert!(trace.finish().is_empty());
    }

    #[test]
    fn spans_nest_with_parent_links() {
        let trace = Trace::start();
        {
            let root = span("root");
            root.tag("depth", 0);
            {
                let _child = span("child");
                let _grand = span("grandchild");
            }
            let _sibling = span("sibling");
        }
        let spans = trace.finish();
        assert!(!enabled());
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].stage, "root");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].tags, vec![("depth", 0)]);
        assert_eq!(spans[1].stage, "child");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].stage, "grandchild");
        assert_eq!(spans[2].parent, Some(1));
        assert_eq!(spans[3].stage, "sibling");
        assert_eq!(spans[3].parent, Some(0));
        // Children are time-contained in their parents.
        for s in &spans[1..] {
            let p = &spans[s.parent.unwrap() as usize];
            assert!(s.start_ns >= p.start_ns);
            assert!(s.start_ns + s.dur_ns <= p.start_ns + p.dur_ns);
        }
    }

    #[test]
    fn dropping_a_trace_uninstalls_it() {
        {
            let _trace = Trace::start();
            assert!(enabled());
            let _s = span("abandoned");
            // Trace dropped without finish() — e.g. a panic unwind.
        }
        assert!(!enabled());
        let trace = Trace::start();
        let _s = span("fresh");
        drop(_s);
        assert_eq!(trace.finish().len(), 1);
    }

    #[test]
    fn traces_are_per_thread() {
        let trace = Trace::start();
        let _outer = span("outer");
        std::thread::spawn(|| {
            assert!(!enabled());
            let inner = Trace::start();
            {
                let _s = span("inner");
            }
            let spans = inner.finish();
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].stage, "inner");
            assert_eq!(spans[0].parent, None);
        })
        .join()
        .unwrap();
        drop(_outer);
        assert_eq!(trace.finish().len(), 1);
    }
}
