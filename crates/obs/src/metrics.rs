//! Sharded counters and histograms, lock-free on the hot path.
//!
//! A [`MetricsRegistry`] is built once from a fixed [`MetricsSpec`]; the
//! spec hands out dense [`CounterId`]/[`HistogramId`] indices so the hot
//! path is a single relaxed atomic add into the caller's shard — no
//! locks, no hashing, no allocation. Scraping merges the shards.
//!
//! Histograms use power-of-two buckets: value 0 lands in bucket 0 and a
//! value `v ≥ 1` in bucket `64 - v.leading_zeros()`, i.e. bucket `b`
//! covers `[2^(b-1), 2^b)`. Merging histograms is bucket-wise addition,
//! which makes the merge associative and commutative — the property the
//! vs2-obs test suite pins down — and percentiles are nearest-rank over
//! the merged buckets, reported as the bucket's lower bound.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket 0 for value 0, buckets 1..=64 for
/// each power-of-two magnitude.
pub const BUCKET_COUNT: usize = 65;

/// Per-histogram atomic slots in a shard: the buckets plus count and sum.
const HIST_SLOTS: usize = BUCKET_COUNT + 2;

/// The bucket index of a value.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The smallest value a bucket can hold (its reported representative).
#[inline]
pub fn bucket_lower_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

/// Dense handle to a counter declared in a [`MetricsSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Dense handle to a histogram declared in a [`MetricsSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// The fixed set of instruments a registry is built from. Declare every
/// counter and histogram up front; the returned ids index the shards.
#[derive(Debug, Default, Clone)]
pub struct MetricsSpec {
    counters: Vec<&'static str>,
    histograms: Vec<&'static str>,
}

impl MetricsSpec {
    /// An empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a counter; the id is stable for the registry's lifetime.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.counters.push(name);
        CounterId(self.counters.len() - 1)
    }

    /// Declares a histogram; the id is stable for the registry's
    /// lifetime.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        self.histograms.push(name);
        HistogramId(self.histograms.len() - 1)
    }

    /// Declared counter names, in declaration order.
    pub fn counter_names(&self) -> &[&'static str] {
        &self.counters
    }

    /// Declared histogram names, in declaration order.
    pub fn histogram_names(&self) -> &[&'static str] {
        &self.histograms
    }
}

struct Shard {
    counters: Box<[AtomicU64]>,
    hists: Box<[AtomicU64]>,
}

impl Shard {
    fn new(n_counters: usize, n_hists: usize) -> Self {
        let zeroed = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect();
        Self {
            counters: zeroed(n_counters),
            hists: zeroed(n_hists * HIST_SLOTS),
        }
    }
}

/// Sharded metrics storage: each writer picks a shard (any stable index —
/// worker id, job sequence — reduced modulo the shard count) and updates
/// it with relaxed atomics; readers merge all shards on scrape.
pub struct MetricsRegistry {
    spec: MetricsSpec,
    shards: Vec<Shard>,
}

impl MetricsRegistry {
    /// Builds a registry with `shards` independent shards (at least 1).
    pub fn new(spec: MetricsSpec, shards: usize) -> Self {
        let shards = shards.max(1);
        let built = (0..shards)
            .map(|_| Shard::new(spec.counters.len(), spec.histograms.len()))
            .collect();
        Self {
            spec,
            shards: built,
        }
    }

    /// The spec the registry was built from.
    pub fn spec(&self) -> &MetricsSpec {
        &self.spec
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Adds `n` to a counter in the given shard (reduced modulo the
    /// shard count).
    #[inline]
    pub fn counter_add(&self, shard: usize, id: CounterId, n: u64) {
        self.shards[shard % self.shards.len()].counters[id.0].fetch_add(n, Ordering::Relaxed);
    }

    /// Records one observation into a histogram in the given shard
    /// (reduced modulo the shard count).
    #[inline]
    pub fn observe(&self, shard: usize, id: HistogramId, value: u64) {
        let shard = &self.shards[shard % self.shards.len()];
        let base = id.0 * HIST_SLOTS;
        shard.hists[base + bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        shard.hists[base + BUCKET_COUNT].fetch_add(1, Ordering::Relaxed);
        shard.hists[base + BUCKET_COUNT + 1].fetch_add(value, Ordering::Relaxed);
    }

    /// The counter's value in one shard.
    pub fn shard_counter(&self, shard: usize, id: CounterId) -> u64 {
        self.shards[shard % self.shards.len()].counters[id.0].load(Ordering::Relaxed)
    }

    /// The counter's total across all shards.
    pub fn counter_total(&self, id: CounterId) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters[id.0].load(Ordering::Relaxed))
            .fold(0u64, u64::saturating_add)
    }

    /// A snapshot of one shard's histogram.
    pub fn shard_histogram(&self, shard: usize, id: HistogramId) -> HistogramSnapshot {
        let shard = &self.shards[shard % self.shards.len()];
        let base = id.0 * HIST_SLOTS;
        let mut snap = HistogramSnapshot::empty();
        for (b, slot) in snap.buckets.iter_mut().enumerate() {
            *slot = shard.hists[base + b].load(Ordering::Relaxed);
        }
        snap.count = shard.hists[base + BUCKET_COUNT].load(Ordering::Relaxed);
        snap.sum = shard.hists[base + BUCKET_COUNT + 1].load(Ordering::Relaxed);
        snap
    }

    /// The histogram merged across all shards.
    pub fn histogram(&self, id: HistogramId) -> HistogramSnapshot {
        (0..self.shards.len())
            .map(|s| self.shard_histogram(s, id))
            .fold(HistogramSnapshot::empty(), |acc, s| acc.merge(&s))
    }

    /// Every counter with its cross-shard total, in declaration order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.spec
            .counters
            .iter()
            .enumerate()
            .map(|(i, name)| (*name, self.counter_total(CounterId(i))))
    }

    /// Every histogram with its merged snapshot, in declaration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, HistogramSnapshot)> + '_ {
        self.spec
            .histograms
            .iter()
            .enumerate()
            .map(|(i, name)| (*name, self.histogram(HistogramId(i))))
    }
}

/// An immutable point-in-time view of a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation (single-threaded reference path used by
    /// tests and offline aggregation).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Bucket-wise merge: associative and commutative.
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a.saturating_add(*b))
                .collect(),
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
        }
    }

    /// Nearest-rank percentile over the buckets (`p` in `(0, 100]`),
    /// reported as the holding bucket's lower bound. Returns 0 on an
    /// empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cumulative = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(n);
            if cumulative >= rank {
                return bucket_lower_bound(b);
            }
        }
        bucket_lower_bound(BUCKET_COUNT - 1)
    }

    /// Mean of observed values (0 on an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..BUCKET_COUNT {
            assert_eq!(bucket_of(bucket_lower_bound(b)), b, "bucket {b}");
        }
    }

    #[test]
    fn counters_sum_across_shards() {
        let mut spec = MetricsSpec::new();
        let hits = spec.counter("hits");
        let misses = spec.counter("misses");
        let reg = MetricsRegistry::new(spec, 4);
        for shard in 0..4 {
            reg.counter_add(shard, hits, (shard + 1) as u64);
        }
        reg.counter_add(9, misses, 5); // shard index wraps modulo 4
        assert_eq!(reg.counter_total(hits), 1 + 2 + 3 + 4);
        assert_eq!(reg.counter_total(misses), 5);
        assert_eq!(reg.shard_counter(1, misses), 5);
    }

    #[test]
    fn merged_histogram_equals_single_shard_reference() {
        let mut spec = MetricsSpec::new();
        let h = spec.histogram("lat");
        let reg = MetricsRegistry::new(spec, 3);
        let mut reference = HistogramSnapshot::empty();
        for (i, v) in [0u64, 1, 1, 7, 100, 5_000, 123_456].iter().enumerate() {
            reg.observe(i, h, *v);
            reference.record(*v);
        }
        assert_eq!(reg.histogram(h), reference);
    }

    #[test]
    fn percentile_nearest_rank_on_exact_buckets() {
        let mut snap = HistogramSnapshot::empty();
        // 100 observations of 1, 1 of 1024: p50 is bucket(1)=1,
        // p99 still 1, p100 reports bucket_lower_bound(11) = 1024.
        for _ in 0..100 {
            snap.record(1);
        }
        snap.record(1024);
        assert_eq!(snap.percentile(50.0), 1);
        assert_eq!(snap.percentile(99.0), 1);
        assert_eq!(snap.percentile(100.0), 1024);
        assert_eq!(HistogramSnapshot::empty().percentile(50.0), 0);
    }

    #[test]
    fn concurrent_observations_are_not_lost() {
        let mut spec = MetricsSpec::new();
        let c = spec.counter("ops");
        let h = spec.histogram("vals");
        let reg = std::sync::Arc::new(MetricsRegistry::new(spec, 4));
        let handles: Vec<_> = (0..4)
            .map(|shard| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        reg.counter_add(shard, c, 1);
                        reg.observe(shard, h, i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(reg.counter_total(c), 4000);
        assert_eq!(reg.histogram(h).count, 4000);
    }
}
