//! JSONL rendering of spans and metrics.
//!
//! Hand-rolled JSON (the crate has zero dependencies): every record is a
//! single line with a `"record"` discriminator, matching the schema
//! documented in the repository README under "Observability":
//!
//! ```text
//! {"record":"span","seq":0,"job_id":"job-0","id":1,"parent":0,
//!  "stage":"vs2.segment","start_ns":1200,"dur_ns":51000,"tags":{"depth":0}}
//! {"record":"metrics","kind":"counter","name":"jobs_ok","value":12}
//! {"record":"metrics","kind":"histogram","name":"queue_dwell_us",
//!  "count":12,"sum":3456,"p50":128,"p95":512,"p99":512}
//! ```

use crate::metrics::HistogramSnapshot;
use crate::span::SpanRecord;

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one span as a `{"record":"span",...}` JSONL line (no trailing
/// newline), keyed by the job's wire sequence number and id.
pub fn span_json(seq: u64, job_id: &str, span: &SpanRecord) -> String {
    let parent = match span.parent {
        Some(p) => p.to_string(),
        None => "null".to_string(),
    };
    let tags = span
        .tags
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape(k), v))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"record\":\"span\",\"seq\":{seq},\"job_id\":\"{}\",\"id\":{},\"parent\":{parent},\"stage\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"tags\":{{{tags}}}}}",
        escape(job_id),
        span.id,
        escape(span.stage),
        span.start_ns,
        span.dur_ns,
    )
}

/// Renders one counter as a `{"record":"metrics","kind":"counter",...}`
/// JSONL line (no trailing newline).
pub fn counter_json(name: &str, value: u64) -> String {
    format!(
        "{{\"record\":\"metrics\",\"kind\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
        escape(name)
    )
}

/// Renders one histogram as a
/// `{"record":"metrics","kind":"histogram",...}` JSONL line (no trailing
/// newline) with nearest-rank p50/p95/p99 bucket lower bounds.
pub fn histogram_json(name: &str, snap: &HistogramSnapshot) -> String {
    format!(
        "{{\"record\":\"metrics\",\"kind\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
        escape(name),
        snap.count,
        snap.sum,
        snap.percentile(50.0),
        snap.percentile(95.0),
        snap.percentile(99.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_line_shape() {
        let span = SpanRecord {
            id: 1,
            parent: Some(0),
            stage: "vs2.segment",
            start_ns: 1200,
            dur_ns: 51000,
            tags: vec![("depth", 2)],
        };
        assert_eq!(
            span_json(7, "job-7", &span),
            "{\"record\":\"span\",\"seq\":7,\"job_id\":\"job-7\",\"id\":1,\"parent\":0,\"stage\":\"vs2.segment\",\"start_ns\":1200,\"dur_ns\":51000,\"tags\":{\"depth\":2}}"
        );
    }

    #[test]
    fn root_span_has_null_parent_and_empty_tags() {
        let span = SpanRecord {
            id: 0,
            parent: None,
            stage: "vs2.extract",
            start_ns: 0,
            dur_ns: 9,
            tags: vec![],
        };
        let line = span_json(0, "job-0", &span);
        assert!(line.contains("\"parent\":null"));
        assert!(line.contains("\"tags\":{}"));
    }

    #[test]
    fn metrics_lines_shape() {
        assert_eq!(
            counter_json("jobs_ok", 12),
            "{\"record\":\"metrics\",\"kind\":\"counter\",\"name\":\"jobs_ok\",\"value\":12}"
        );
        let mut snap = HistogramSnapshot::empty();
        snap.record(100);
        let line = histogram_json("queue_dwell_us", &snap);
        assert!(line.starts_with("{\"record\":\"metrics\",\"kind\":\"histogram\""));
        assert!(line.contains("\"count\":1"));
        assert!(line.contains("\"sum\":100"));
        assert!(line.contains("\"p50\":64"), "{line}");
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
