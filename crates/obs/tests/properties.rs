//! Property tests for the sharded `MetricsRegistry`: merging histograms
//! across worker shards must be associative and commutative, counter
//! totals must equal the sum of shard increments, and percentiles of a
//! merged histogram must agree with a single-shard reference.

use proptest::prelude::*;
use vs2_obs::{bucket_of, HistogramSnapshot, MetricsRegistry, MetricsSpec};

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let mut snap = HistogramSnapshot::empty();
    for &v in values {
        snap.record(v);
    }
    snap
}

/// The nearest-rank percentile computed directly over the raw samples.
fn exact_percentile(values: &[u64], p: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..1 << 40, 0..60),
        b in proptest::collection::vec(0u64..1 << 40, 0..60),
        c in proptest::collection::vec(0u64..1 << 40, 0..60),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
        // Merging preserves mass exactly.
        let merged = sa.merge(&sb).merge(&sc);
        prop_assert_eq!(merged.count, (a.len() + b.len() + c.len()) as u64);
        prop_assert_eq!(
            merged.sum,
            a.iter().chain(&b).chain(&c).sum::<u64>()
        );
    }

    #[test]
    fn counter_total_is_the_sum_of_shard_increments(
        shards in 1usize..8,
        increments in proptest::collection::vec((0usize..16, 0u64..1 << 32), 0..80),
    ) {
        let mut spec = MetricsSpec::new();
        let id = spec.counter("ops");
        let reg = MetricsRegistry::new(spec, shards);
        let mut expected = 0u64;
        let mut per_shard = vec![0u64; reg.num_shards()];
        for &(shard, n) in &increments {
            reg.counter_add(shard, id, n);
            expected += n;
            per_shard[shard % reg.num_shards()] += n;
        }
        prop_assert_eq!(reg.counter_total(id), expected);
        for (shard, &want) in per_shard.iter().enumerate() {
            prop_assert_eq!(reg.shard_counter(shard, id), want);
        }
    }

    #[test]
    fn merged_percentiles_match_single_shard_reference(
        shards in 2usize..8,
        values in proptest::collection::vec(0u64..1 << 40, 1..120),
    ) {
        let mut spec = MetricsSpec::new();
        let id = spec.histogram("lat");
        let reg = MetricsRegistry::new(spec, shards);
        // Scatter observations across shards round-robin; the reference
        // records every observation into one snapshot.
        for (i, &v) in values.iter().enumerate() {
            reg.observe(i, id, v);
        }
        let merged = reg.histogram(id);
        let reference = snapshot_of(&values);
        prop_assert_eq!(&merged, &reference);
        for p in [50.0, 95.0, 99.0] {
            // Same bucketed value as the reference, and within one
            // bucket of the exact nearest-rank sample percentile.
            prop_assert_eq!(merged.percentile(p), reference.percentile(p));
            let exact = exact_percentile(&values, p);
            prop_assert_eq!(bucket_of(merged.percentile(p)), bucket_of(exact));
        }
    }
}
