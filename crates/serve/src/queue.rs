//! A bounded multi-producer/multi-consumer work queue built on
//! `Mutex` + `Condvar`.
//!
//! `push` blocks while the queue is at capacity — that blocking *is* the
//! service's backpressure: a submitter can never race ahead of the worker
//! pool by more than `capacity` jobs. Every push that had to wait at
//! least once bumps a stall counter, surfaced in the shutdown summary so
//! operators can see when the queue (not the workers) was the bottleneck.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a [`BoundedQueue::push_timeout`] returned the item instead of
/// enqueuing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was closed before space opened up.
    Closed(T),
    /// The deadline passed while the queue stayed full.
    Timeout(T),
}

impl<T> PushError<T> {
    /// Recovers the item that could not be enqueued.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Closed(item) | PushError::Timeout(item) => item,
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded blocking MPMC queue.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    stalls: AtomicU64,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
            stalls: AtomicU64::new(0),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns the
    /// item back if the queue was closed before space opened up.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().unwrap();
        let mut stalled = false;
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.capacity {
                break;
            }
            if !stalled {
                stalled = true;
                self.stalls.fetch_add(1, Ordering::Relaxed);
            }
            st = self.not_full.wait(st).unwrap();
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Like [`BoundedQueue::push`], but gives up once `timeout` has
    /// elapsed with the queue still full — bounded backpressure for
    /// producers that must not block indefinitely (the watchdog's retry
    /// re-enqueue, latency-budgeted front ends). A push that waited at
    /// all — including one that ultimately timed out — counts in
    /// [`BoundedQueue::stall_count`].
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), PushError<T>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        let mut stalled = false;
        loop {
            if st.closed {
                return Err(PushError::Closed(item));
            }
            if st.items.len() < self.capacity {
                break;
            }
            if !stalled {
                stalled = true;
                self.stalls.fetch_add(1, Ordering::Relaxed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PushError::Timeout(item));
            }
            (st, _) = self.not_full.wait_timeout(st, deadline - now).unwrap();
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained — the
    /// worker-loop termination signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Closes the queue: pending items stay poppable, new pushes fail,
    /// blocked poppers wake once the backlog drains.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of queued (not yet popped) items.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pushes that blocked at least once on a full queue.
    pub fn stall_count(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_blocks_and_counts_stalls() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        assert_eq!(q.stall_count(), 0);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1).unwrap());
        // Give the producer time to hit the full queue.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.len(), 1, "second push must wait for space");
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.stall_count(), 1);
    }

    #[test]
    fn push_timeout_succeeds_when_space_opens() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            q2.push_timeout(1, Duration::from_secs(5))
                .expect("space opens within the deadline")
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.stall_count(), 1, "the waiting push must count a stall");
    }

    #[test]
    fn push_timeout_expires_on_a_stuck_queue() {
        let q = BoundedQueue::new(1);
        q.push(0u32).unwrap();
        let before = std::time::Instant::now();
        match q.push_timeout(1, Duration::from_millis(25)) {
            Err(PushError::Timeout(item)) => assert_eq!(item, 1),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(before.elapsed() >= Duration::from_millis(25));
        assert_eq!(q.stall_count(), 1, "a timed-out push is a stall");
        assert_eq!(q.len(), 1, "the item must not be enqueued");
    }

    #[test]
    fn push_timeout_reports_closure() {
        let q = BoundedQueue::new(2);
        q.close();
        match q.push_timeout(5u32, Duration::from_millis(5)) {
            Err(PushError::Closed(item)) => assert_eq!(item, 5),
            other => panic!("expected closed, got {other:?}"),
        }
        assert_eq!(PushError::Closed(7u32).into_inner(), 7);
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(7).unwrap();
        assert_eq!(q.pop(), Some(7));
    }
}
