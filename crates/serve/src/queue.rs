//! Bounded multi-producer/multi-consumer work queues built on
//! `Mutex` + `Condvar`.
//!
//! `push` blocks while the queue is at capacity — that blocking *is* the
//! service's backpressure: a submitter can never race ahead of the worker
//! pool by more than `capacity` jobs. Every push that had to wait at
//! least once bumps a stall counter, surfaced in the shutdown summary so
//! operators can see when the queue (not the workers) was the bottleneck.
//!
//! [`LaneQueue`] is the two-class variant the engine runs on: one shared
//! capacity over an interactive and a batch [`Lane`], popped by a
//! deterministic 3:1 weighted pick so interactive traffic keeps moving
//! while a batch backlog exists but batch work is never starved.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::admit::Lane;

/// Why a [`BoundedQueue::push_timeout`] returned the item instead of
/// enqueuing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was closed before space opened up.
    Closed(T),
    /// The deadline passed while the queue stayed full.
    Timeout(T),
}

impl<T> PushError<T> {
    /// Recovers the item that could not be enqueued.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Closed(item) | PushError::Timeout(item) => item,
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded blocking MPMC queue.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    stalls: AtomicU64,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
            stalls: AtomicU64::new(0),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns the
    /// item back if the queue was closed before space opened up.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().unwrap();
        let mut stalled = false;
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.capacity {
                break;
            }
            if !stalled {
                stalled = true;
                self.stalls.fetch_add(1, Ordering::Relaxed);
            }
            st = self.not_full.wait(st).unwrap();
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Like [`BoundedQueue::push`], but gives up once `timeout` has
    /// elapsed with the queue still full — bounded backpressure for
    /// producers that must not block indefinitely (the watchdog's retry
    /// re-enqueue, latency-budgeted front ends). A push that waited at
    /// all — including one that ultimately timed out — counts in
    /// [`BoundedQueue::stall_count`].
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), PushError<T>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        let mut stalled = false;
        loop {
            if st.closed {
                return Err(PushError::Closed(item));
            }
            if st.items.len() < self.capacity {
                break;
            }
            if !stalled {
                stalled = true;
                self.stalls.fetch_add(1, Ordering::Relaxed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PushError::Timeout(item));
            }
            (st, _) = self.not_full.wait_timeout(st, deadline - now).unwrap();
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained — the
    /// worker-loop termination signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Closes the queue: pending items stay poppable, new pushes fail,
    /// blocked poppers wake once the backlog drains.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of queued (not yet popped) items.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pushes that blocked at least once on a full queue.
    pub fn stall_count(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }
}

struct LaneState<T> {
    interactive: VecDeque<T>,
    batch: VecDeque<T>,
    closed: bool,
    /// Successful pops so far — the deterministic clock of the weighted
    /// pick (`pops % 4 == 3` prefers batch).
    pops: u64,
}

impl<T> LaneState<T> {
    fn len(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }
}

/// Bounded blocking MPMC queue with two priority lanes sharing one
/// capacity.
///
/// Pop order is a deterministic weighted pick over the *pop counter*
/// (not wall clock): every fourth pop prefers the batch lane, the rest
/// prefer interactive; when the preferred lane is empty the other lane
/// is taken. With single-lane traffic this degenerates to exact FIFO —
/// byte-compatible with [`BoundedQueue`].
pub struct LaneQueue<T> {
    state: Mutex<LaneState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    stalls: AtomicU64,
}

impl<T> LaneQueue<T> {
    /// Creates a queue holding at most `capacity` items total (minimum
    /// 1), shared across both lanes.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            state: Mutex::new(LaneState {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                closed: false,
                pops: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
            stalls: AtomicU64::new(0),
        }
    }

    /// Enqueues `item` on `lane`, blocking while the queue is full.
    /// Returns the item back if the queue was closed first.
    pub fn push(&self, item: T, lane: Lane) -> Result<(), T> {
        let mut st = self.state.lock().unwrap();
        let mut stalled = false;
        loop {
            if st.closed {
                return Err(item);
            }
            if st.len() < self.capacity {
                break;
            }
            if !stalled {
                stalled = true;
                self.stalls.fetch_add(1, Ordering::Relaxed);
            }
            st = self.not_full.wait(st).unwrap();
        }
        match lane {
            Lane::Interactive => st.interactive.push_back(item),
            Lane::Batch => st.batch.push_back(item),
        }
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Like [`LaneQueue::push`], but gives up once `timeout` elapses
    /// with the queue still full. Same stall accounting as
    /// [`BoundedQueue::push_timeout`].
    pub fn push_timeout(&self, item: T, lane: Lane, timeout: Duration) -> Result<(), PushError<T>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        let mut stalled = false;
        loop {
            if st.closed {
                return Err(PushError::Closed(item));
            }
            if st.len() < self.capacity {
                break;
            }
            if !stalled {
                stalled = true;
                self.stalls.fetch_add(1, Ordering::Relaxed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PushError::Timeout(item));
            }
            (st, _) = self.not_full.wait_timeout(st, deadline - now).unwrap();
        }
        match lane {
            Lane::Interactive => st.interactive.push_back(item),
            Lane::Batch => st.batch.push_back(item),
        }
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues per the weighted pick, blocking while both lanes are
    /// empty. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.len() > 0 {
                let prefer_batch = st.pops % 4 == 3;
                let item = if prefer_batch {
                    st.batch
                        .pop_front()
                        .or_else(|| st.interactive.pop_front())
                        .unwrap()
                } else {
                    st.interactive
                        .pop_front()
                        .or_else(|| st.batch.pop_front())
                        .unwrap()
                };
                st.pops += 1;
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Closes the queue: pending items stay poppable, new pushes fail,
    /// blocked poppers wake once the backlog drains.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Total queued (not yet popped) items across both lanes.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().len()
    }

    /// `true` when no items are queued in either lane.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of queued items (shared across lanes).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pushes that blocked at least once on a full queue.
    pub fn stall_count(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_blocks_and_counts_stalls() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        assert_eq!(q.stall_count(), 0);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1).unwrap());
        // Give the producer time to hit the full queue.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.len(), 1, "second push must wait for space");
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.stall_count(), 1);
    }

    #[test]
    fn push_timeout_succeeds_when_space_opens() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            q2.push_timeout(1, Duration::from_secs(5))
                .expect("space opens within the deadline")
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.stall_count(), 1, "the waiting push must count a stall");
    }

    #[test]
    fn push_timeout_expires_on_a_stuck_queue() {
        let q = BoundedQueue::new(1);
        q.push(0u32).unwrap();
        let before = std::time::Instant::now();
        match q.push_timeout(1, Duration::from_millis(25)) {
            Err(PushError::Timeout(item)) => assert_eq!(item, 1),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(before.elapsed() >= Duration::from_millis(25));
        assert_eq!(q.stall_count(), 1, "a timed-out push is a stall");
        assert_eq!(q.len(), 1, "the item must not be enqueued");
    }

    #[test]
    fn push_timeout_reports_closure() {
        let q = BoundedQueue::new(2);
        q.close();
        match q.push_timeout(5u32, Duration::from_millis(5)) {
            Err(PushError::Closed(item)) => assert_eq!(item, 5),
            other => panic!("expected closed, got {other:?}"),
        }
        assert_eq!(PushError::Closed(7u32).into_inner(), 7);
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(7).unwrap();
        assert_eq!(q.pop(), Some(7));
    }

    #[test]
    fn push_timeout_wakes_with_closed_while_blocked_on_full_queue() {
        // Closing must wake a push_timeout that is *already waiting* on a
        // full queue — well before its deadline — and hand the item back
        // as Closed, not Timeout.
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push_timeout(1, Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(30));
        let before = std::time::Instant::now();
        q.close();
        match producer.join().unwrap() {
            Err(PushError::Closed(item)) => assert_eq!(item, 1),
            other => panic!("expected closed, got {other:?}"),
        }
        assert!(
            before.elapsed() < Duration::from_secs(5),
            "close must wake the waiter promptly, not let the deadline run"
        );
        assert_eq!(q.stall_count(), 1, "the aborted push still counts a stall");
        assert_eq!(q.pop(), Some(0), "pending items stay poppable after close");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_timeout_rides_a_concurrently_draining_consumer() {
        // A consumer draining one item at a time must let a sequence of
        // deadline-bounded pushes through a capacity-1 queue with no
        // timeouts and no lost or duplicated items.
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while let Some(item) = q2.pop() {
                seen.push(item);
                std::thread::sleep(Duration::from_millis(5));
            }
            seen
        });
        for i in 0..10u32 {
            q.push_timeout(i, Duration::from_secs(10))
                .expect("the draining consumer frees space within the deadline");
        }
        q.close();
        let seen = consumer.join().unwrap();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(
            q.stall_count() >= 1,
            "pushes that waited on the slow consumer must count stalls"
        );
    }

    #[test]
    fn lane_queue_single_lane_is_fifo() {
        for lane in [Lane::Interactive, Lane::Batch] {
            let q = LaneQueue::new(16);
            for i in 0..10 {
                q.push(i, lane).unwrap();
            }
            for i in 0..10 {
                assert_eq!(q.pop(), Some(i), "single-lane traffic must stay FIFO");
            }
        }
    }

    #[test]
    fn lane_queue_weighted_pick_is_three_to_one() {
        let q = LaneQueue::new(32);
        for i in 0..12 {
            q.push(("i", i), Lane::Interactive).unwrap();
        }
        for i in 0..4 {
            q.push(("b", i), Lane::Batch).unwrap();
        }
        let order: Vec<_> = (0..16).map(|_| q.pop().unwrap()).collect();
        let expected = vec![
            ("i", 0),
            ("i", 1),
            ("i", 2),
            ("b", 0),
            ("i", 3),
            ("i", 4),
            ("i", 5),
            ("b", 1),
            ("i", 6),
            ("i", 7),
            ("i", 8),
            ("b", 2),
            ("i", 9),
            ("i", 10),
            ("i", 11),
            ("b", 3),
        ];
        assert_eq!(order, expected);
    }

    #[test]
    fn lane_queue_falls_back_to_the_other_lane() {
        let q = LaneQueue::new(8);
        q.push(1, Lane::Batch).unwrap();
        // Pop 0 prefers interactive, which is empty — takes batch.
        assert_eq!(q.pop(), Some(1));
        q.push(2, Lane::Interactive).unwrap();
        q.push(3, Lane::Interactive).unwrap();
        q.push(4, Lane::Interactive).unwrap();
        // Pop 3 prefers batch, which is empty — takes interactive.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert!(q.is_empty());
    }

    #[test]
    fn lane_queue_shares_capacity_and_closes_like_bounded() {
        let q = LaneQueue::new(2);
        q.push(1, Lane::Interactive).unwrap();
        q.push(2, Lane::Batch).unwrap();
        match q.push_timeout(3, Lane::Batch, Duration::from_millis(10)) {
            Err(PushError::Timeout(item)) => assert_eq!(item, 3),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(q.stall_count(), 1);
        q.close();
        assert_eq!(q.push(4, Lane::Interactive), Err(4));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }
}
