//! `vs2d` — batch document-extraction daemon front end.
//!
//! Reads JSONL job specs from a file or stdin, streams JSONL results to
//! stdout in input order, prints a throughput/latency summary to stderr
//! on shutdown. Run `vs2d --help` for the flag reference.
//!
//! ```text
//! $ printf '%s\n' '{"dataset":"D1","doc_index":0}' '{"dataset":"D2","doc_index":1}' \
//!     | vs2d --workers 4
//! {"seq":0,"job_id":"job-0","status":"ok","extractions":[...]}
//! {"seq":1,"job_id":"job-1","status":"ok","extractions":[...]}
//! vs2d: 2 jobs (2 ok, 0 degraded, 0 quarantined, 0 shed, 0 invalid) in 0.84s — 2.4 docs/s
//! vs2d: 0 retries, 0 panics, 0 timeout trips | latency p50 212332us p95 341007us p99 341007us | queue stalls 0 | model cache 2 miss, 0 hit | 4 workers
//! ```
//!
//! Result lines omit `latency_us` unless `--latency` is given, so the
//! default output of a batch is byte-identical across runs and worker
//! counts. Jobs whose primary pipeline fails every attempt either come
//! back with `status: "degraded"` (XY-cut fallback segmentation) or
//! `status: "quarantined"`, with one `{"record":"quarantine",...}` line
//! per quarantined job after the batch.
//!
//! Malformed input lines (bad JSON, invalid UTF-8) never abort the
//! batch: each produces an in-stream `{"status":"invalid",...}` result
//! carrying the line number and error.

use std::io::BufRead;
use std::sync::Arc;
use std::time::{Duration, Instant};

use vs2_core::pipeline::Vs2Config;
use vs2_serve::{
    run_batch, AdmitConfig, BatchOptions, EngineConfig, ExtractService, FaultPlan, HandoffSnapshot,
    Lane, PlanEntry, PlanNamespace, RetryPolicy, DEFAULT_DOC_SEED,
};

/// Default shed seed when admission is enabled without `--shed-seed`.
const DEFAULT_SHED_SEED: u64 = 0x5EED;

const USAGE: &str = "\
vs2d — VS2 batch document-extraction service

USAGE: vs2d [OPTIONS]
  --input PATH         job-spec JSONL file, `-` for stdin (default -)
  --workers N          worker threads (default: available parallelism)
  --queue-capacity N   work-queue bound; submission blocks beyond it (default 32)
  --timeout-ms N       soft per-job deadline; 0 disables (default 0)
  --max-attempts N     attempt budget for transient failures (default 3)
  --fault-seed N       enable deterministic chaos fault injection with
                       this seed (testing only; accepts 0x-prefixed hex)
  --model-seed N       holdout-corpus seed for model learning (default 0xC0FFEE)
  --config PATH        Vs2Config JSON applied to every dataset
                       (default: per-dataset defaults)
  --latency            include per-job latency_us on result lines
                       (off by default so output is byte-stable)
  --trace              interleave {\"record\":\"span\",...} lines after each
                       result and end the batch with {\"record\":\"metrics\",...}
                       lines (off by default; see README `Observability`)
  --metrics            end the batch with the {\"record\":\"metrics\",...}
                       tail only, without per-job span lines
  --plan-cache         reuse validated segmentation plans across documents
                       that share a layout fingerprint (identical output,
                       faster on templated traffic; see README `Plan cache`)
  --naive-segment      segment with the preserved naive reference path
                       instead of the fast path (identical output; escape
                       hatch — see README `Segment fast path`)
  --triage             route whitespace-regular documents through the cheap
                       XY-cut path instead of full VS2 (faster on templated
                       traffic, bounded accuracy cost; composes with
                       --plan-cache — see README `Triage routing`)
  --summary-json PATH  also write the shutdown summary as JSON
  --admit              enable admission control with watermarks derived
                       from --queue-capacity; overload answers jobs with
                       in-stream {\"status\":\"shed\",...} lines instead of
                       blocking (see README `Overload protection & drain`)
  --shed-seed N        seed of the deterministic shed draw under saturation
                       (implies --admit; accepts 0x-prefixed hex)
  --bucket-capacity N  per-client fairness token buckets of N tokens
                       (implies --admit; 0 disables, the default)
  --client NAME        client identity for specs that carry no `client`
                       field (feeds per-client fairness)
  --lane LANE          default queue class for specs that carry no `lane`
                       field: `interactive` (default) or `batch`
  --drain-after N      stop admitting after N submissions: later lines are
                       answered as shed (reason `draining`) while queued
                       work flushes; pair with --handoff for a warm restart
  --handoff PATH       on shutdown, write a handoff snapshot (answered wire
                       seqs + quarantine ledger + cached segmentation plans)
  --resume-from PATH   warm-start from a handoff snapshot: skip answered
                       lines, preload cached plans, keep seq-keyed decisions
                       aligned with an uninterrupted run
";

struct Options {
    input: String,
    workers: usize,
    queue_capacity: usize,
    timeout_ms: u64,
    max_attempts: u32,
    fault_seed: Option<u64>,
    model_seed: u64,
    config_path: Option<String>,
    latency: bool,
    trace: bool,
    metrics: bool,
    plan_cache: bool,
    naive_segment: bool,
    triage: bool,
    summary_json: Option<String>,
    admit: bool,
    shed_seed: Option<u64>,
    bucket_capacity: Option<u32>,
    client: Option<String>,
    lane: Lane,
    drain_after: Option<u64>,
    handoff: Option<String>,
    resume_from: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            input: "-".into(),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 32,
            timeout_ms: 0,
            max_attempts: RetryPolicy::default().max_attempts,
            fault_seed: None,
            model_seed: DEFAULT_DOC_SEED,
            config_path: None,
            latency: false,
            trace: false,
            metrics: false,
            plan_cache: false,
            naive_segment: false,
            triage: false,
            summary_json: None,
            admit: false,
            shed_seed: None,
            bucket_capacity: None,
            client: None,
            lane: Lane::Interactive,
            drain_after: None,
            handoff: None,
            resume_from: None,
        }
    }
}

fn parse_seed(raw: &str) -> Result<u64, String> {
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|e| e.to_string())
    } else {
        raw.parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--input" => opts.input = value("--input")?,
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-capacity" => {
                opts.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?;
            }
            "--timeout-ms" => {
                opts.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?;
            }
            "--max-attempts" => {
                opts.max_attempts = value("--max-attempts")?
                    .parse()
                    .map_err(|e| format!("--max-attempts: {e}"))?;
                if opts.max_attempts == 0 {
                    return Err("--max-attempts must be at least 1".into());
                }
            }
            "--fault-seed" => {
                let raw = value("--fault-seed")?;
                opts.fault_seed = Some(parse_seed(&raw).map_err(|e| format!("--fault-seed: {e}"))?);
            }
            "--model-seed" => {
                let raw = value("--model-seed")?;
                opts.model_seed = parse_seed(&raw).map_err(|e| format!("--model-seed: {e}"))?;
            }
            "--config" => opts.config_path = Some(value("--config")?),
            "--latency" => opts.latency = true,
            "--trace" => opts.trace = true,
            "--metrics" => opts.metrics = true,
            "--plan-cache" => opts.plan_cache = true,
            "--naive-segment" => opts.naive_segment = true,
            "--triage" => opts.triage = true,
            "--summary-json" => opts.summary_json = Some(value("--summary-json")?),
            "--admit" => opts.admit = true,
            "--shed-seed" => {
                let raw = value("--shed-seed")?;
                opts.shed_seed = Some(parse_seed(&raw).map_err(|e| format!("--shed-seed: {e}"))?);
            }
            "--bucket-capacity" => {
                opts.bucket_capacity = Some(
                    value("--bucket-capacity")?
                        .parse()
                        .map_err(|e| format!("--bucket-capacity: {e}"))?,
                );
            }
            "--client" => opts.client = Some(value("--client")?),
            "--lane" => {
                let raw = value("--lane")?;
                opts.lane = Lane::parse(&raw)
                    .ok_or_else(|| format!("--lane: unknown lane `{raw}` (interactive|batch)"))?;
            }
            "--drain-after" => {
                opts.drain_after = Some(
                    value("--drain-after")?
                        .parse()
                        .map_err(|e| format!("--drain-after: {e}"))?,
                );
            }
            "--handoff" => opts.handoff = Some(value("--handoff")?),
            "--resume-from" => opts.resume_from = Some(value("--resume-from")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn fail(message: &str) -> ! {
    eprintln!("vs2d: {message}");
    std::process::exit(2);
}

fn main() {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => fail(&e),
    };
    let config: Option<Vs2Config> = opts.config_path.as_ref().map(|path| {
        let raw = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read --config {path}: {e}")));
        serde_json::from_str(&raw)
            .unwrap_or_else(|e| fail(&format!("invalid --config {path}: {e}")))
    });
    let resume: Option<HandoffSnapshot> = opts.resume_from.as_ref().map(|path| {
        let raw = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read --resume-from {path}: {e}")));
        HandoffSnapshot::parse(&raw)
            .unwrap_or_else(|e| fail(&format!("invalid --resume-from {path}: {e}")))
    });
    let reader: Box<dyn BufRead> = if opts.input == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        match std::fs::File::open(&opts.input) {
            Ok(f) => Box::new(std::io::BufReader::new(f)),
            Err(e) => fail(&format!("cannot open --input {}: {e}", opts.input)),
        }
    };

    let engine_config = EngineConfig {
        workers: opts.workers,
        queue_capacity: opts.queue_capacity,
        job_timeout: (opts.timeout_ms > 0).then(|| Duration::from_millis(opts.timeout_ms)),
        retry: RetryPolicy {
            max_attempts: opts.max_attempts,
            ..RetryPolicy::default()
        },
        faults: opts.fault_seed.map(FaultPlan::chaos),
        admit: (opts.admit || opts.shed_seed.is_some() || opts.bucket_capacity.is_some()).then(
            || {
                let cfg = AdmitConfig::for_queue(
                    opts.queue_capacity,
                    opts.shed_seed.unwrap_or(DEFAULT_SHED_SEED),
                );
                match opts.bucket_capacity {
                    Some(cap) => cfg.with_buckets(cap, cfg.refill_per_mille),
                    None => cfg,
                }
            },
        ),
    };
    let options = vs2_serve::ServiceOptions {
        plan_cache: opts.plan_cache,
        naive_segment: opts.naive_segment,
        triage: opts.triage,
    };
    // `--metrics` needs a hub for the metrics tail; `--trace` needs one
    // with span capture on top; `--triage` needs one for the routing
    // counters in the shutdown summary.
    let hub = (opts.trace || opts.metrics || opts.triage)
        .then(|| vs2_serve::ObsHub::new(opts.trace, opts.workers));
    let service =
        ExtractService::with_options(engine_config, opts.model_seed, config, options, hub);
    if let Some(snap) = &resume {
        for ns in &snap.plans {
            service.preload_plan_namespace(
                ns.dataset,
                ns.model_seed,
                &ns.learn,
                ns.entries
                    .iter()
                    .map(|e| (e.fingerprint.clone(), Arc::new(e.plan.clone())))
                    .collect(),
            );
        }
    }

    let started = Instant::now();
    let run = run_batch(
        &service,
        reader,
        std::io::BufWriter::new(std::io::stdout()),
        &BatchOptions {
            include_latency: opts.latency,
            emit_metrics: opts.metrics,
            default_client: opts.client.clone(),
            default_lane: opts.lane,
            drain_after: opts.drain_after,
            resume_completed: resume
                .as_ref()
                .map(|s| s.completed.iter().copied().collect()),
        },
    );
    let wall = started.elapsed();

    if let Some(path) = &opts.handoff {
        // A resumed run's snapshot covers the whole stream: its own
        // answered lines plus everything the predecessor answered, so a
        // chain of restarts stays exactly-once end to end.
        let mut completed = run.completed_wire_seqs.clone();
        let mut quarantine = run.quarantine_records.clone();
        if let Some(snap) = &resume {
            completed.extend(snap.completed.iter().copied());
            quarantine.extend(snap.quarantine.iter().cloned());
        }
        completed.sort_unstable();
        completed.dedup();
        quarantine.sort_by_key(|r| r.seq);
        let snapshot = HandoffSnapshot {
            completed,
            quarantine,
            plans: service
                .export_plan_namespaces()
                .into_iter()
                .map(|ns| PlanNamespace {
                    dataset: ns.dataset,
                    model_seed: ns.model_seed,
                    learn: ns.learn,
                    entries: ns
                        .entries
                        .into_iter()
                        .map(|(fingerprint, plan)| PlanEntry {
                            fingerprint,
                            plan: (*plan).clone(),
                        })
                        .collect(),
                })
                .collect(),
        };
        if let Err(e) = std::fs::write(path, snapshot.to_json()) {
            eprintln!("vs2d: cannot write --handoff {path}: {e}");
        }
    }

    let stats = service.stats();
    let (cache_hits, cache_misses) = service.cache_counters();
    let cache_snapshot = service.cache_snapshot();
    // [full, cheap, replay] routing counts, when --triage recorded them.
    let triage_counts = service.obs().map(|h| {
        let mut t = [0u64; 3];
        for (name, total) in h.metrics().registry().counters() {
            match name {
                "triage_full" => t[0] = total,
                "triage_cheap" => t[1] = total,
                "triage_replay" => t[2] = total,
                _ => {}
            }
        }
        t
    });
    service.shutdown();

    let lat = vs2_serve::LatencySummary::from_latencies(&run.latencies);
    let jobs = stats.submitted + run.invalid;
    let docs_per_s = if wall.as_secs_f64() > 0.0 {
        stats.completed as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    eprintln!(
        "vs2d: {jobs} jobs ({} ok, {} degraded, {} quarantined, {} shed, {} invalid) in {:.2}s — {:.1} docs/s",
        stats.ok,
        stats.degraded,
        stats.quarantined,
        stats.shed,
        run.invalid,
        wall.as_secs_f64(),
        docs_per_s,
    );
    if run.skipped > 0 {
        eprintln!(
            "vs2d: resumed from handoff — {} lines already answered by the predecessor",
            run.skipped
        );
    }
    eprintln!(
        "vs2d: {} retries, {} panics, {} timeout trips | latency p50 {}us p95 {}us p99 {}us | queue stalls {} | model cache {} miss, {} hit | {} workers",
        stats.retried,
        stats.panicked,
        stats.timed_out,
        lat.p50_us,
        lat.p95_us,
        lat.p99_us,
        stats.queue_stalls,
        cache_misses,
        cache_hits,
        opts.workers,
    );
    if opts.plan_cache {
        let p = cache_snapshot.plans;
        eprintln!(
            "vs2d: plan cache {} hit, {} miss, {} rejected, {} bypassed | {} inserted, {} evicted, {} uncacheable",
            p.hits, p.misses, p.validation_rejects, p.bypasses, p.inserts, p.evictions, p.uncacheable,
        );
    }
    if opts.triage {
        let [full, cheap, replay] = triage_counts.unwrap_or_default();
        eprintln!("vs2d: triage routed {full} full, {cheap} cheap, {replay} replay");
    }
    if let Some(path) = &opts.summary_json {
        let summary = serde::Value::Object(vec![
            ("workers".into(), serde::Value::UInt(opts.workers as u64)),
            (
                "queue_capacity".into(),
                serde::Value::UInt(opts.queue_capacity as u64),
            ),
            ("jobs".into(), serde::Value::UInt(jobs)),
            ("ok".into(), serde::Value::UInt(stats.ok)),
            ("degraded".into(), serde::Value::UInt(stats.degraded)),
            ("quarantined".into(), serde::Value::UInt(stats.quarantined)),
            ("shed".into(), serde::Value::UInt(stats.shed)),
            ("retried".into(), serde::Value::UInt(stats.retried)),
            ("panicked".into(), serde::Value::UInt(stats.panicked)),
            ("timed_out".into(), serde::Value::UInt(stats.timed_out)),
            ("invalid".into(), serde::Value::UInt(run.invalid)),
            ("wall_s".into(), serde::Value::Float(wall.as_secs_f64())),
            ("docs_per_s".into(), serde::Value::Float(docs_per_s)),
            ("p50_us".into(), serde::Value::UInt(lat.p50_us)),
            ("p95_us".into(), serde::Value::UInt(lat.p95_us)),
            ("p99_us".into(), serde::Value::UInt(lat.p99_us)),
            (
                "queue_stalls".into(),
                serde::Value::UInt(stats.queue_stalls),
            ),
            ("cache_misses".into(), serde::Value::UInt(cache_misses)),
            ("cache_hits".into(), serde::Value::UInt(cache_hits)),
            (
                "plan_cache_hits".into(),
                serde::Value::UInt(cache_snapshot.plans.hits),
            ),
            (
                "plan_cache_misses".into(),
                serde::Value::UInt(cache_snapshot.plans.misses),
            ),
            (
                "plan_cache_rejects".into(),
                serde::Value::UInt(cache_snapshot.plans.validation_rejects),
            ),
            (
                "plan_cache_bypasses".into(),
                serde::Value::UInt(cache_snapshot.plans.bypasses),
            ),
            (
                "triage_full".into(),
                serde::Value::UInt(triage_counts.map_or(0, |t| t[0])),
            ),
            (
                "triage_cheap".into(),
                serde::Value::UInt(triage_counts.map_or(0, |t| t[1])),
            ),
            (
                "triage_replay".into(),
                serde::Value::UInt(triage_counts.map_or(0, |t| t[2])),
            ),
        ]);
        if let Err(e) = std::fs::write(
            path,
            serde_json::to_string_pretty(&summary).expect("summary serialises"),
        ) {
            eprintln!("vs2d: cannot write --summary-json {path}: {e}");
        }
    }
    if stats.quarantined + run.invalid > 0 {
        std::process::exit(1);
    }
}
