//! `vs2d` — batch document-extraction daemon front end.
//!
//! Reads JSONL job specs from a file or stdin, streams JSONL results to
//! stdout in input order, prints a throughput/latency summary to stderr
//! on shutdown. Run `vs2d --help` for the flag reference.
//!
//! ```text
//! $ printf '%s\n' '{"dataset":"D1","doc_index":0}' '{"dataset":"D2","doc_index":1}' \
//!     | vs2d --workers 4
//! {"seq":0,"job_id":"job-0","status":"ok","extractions":[...]}
//! {"seq":1,"job_id":"job-1","status":"ok","extractions":[...]}
//! vs2d: 2 jobs (2 ok, 0 panicked, 0 timed_out, 0 invalid) in 0.84s — 2.4 docs/s
//! vs2d: latency p50 212332us p95 341007us p99 341007us | queue stalls 0 | model cache 2 miss, 0 hit | 4 workers
//! ```
//!
//! Result lines omit `latency_us` unless `--latency` is given, so the
//! default output of a batch is byte-identical across runs and worker
//! counts.

use std::io::{BufRead, BufWriter, Write};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use vs2_core::pipeline::Vs2Config;
use vs2_serve::{
    EngineConfig, ExtractService, JobOutcome, JobResult, JobSpec, JobStatus, LatencySummary,
    DEFAULT_DOC_SEED,
};

const USAGE: &str = "\
vs2d — VS2 batch document-extraction service

USAGE: vs2d [OPTIONS]
  --input PATH         job-spec JSONL file, `-` for stdin (default -)
  --workers N          worker threads (default: available parallelism)
  --queue-capacity N   work-queue bound; submission blocks beyond it (default 32)
  --timeout-ms N       soft per-job deadline; 0 disables (default 0)
  --model-seed N       holdout-corpus seed for model learning (default 0xC0FFEE)
  --config PATH        Vs2Config JSON applied to every dataset
                       (default: per-dataset defaults)
  --latency            include per-job latency_us on result lines
                       (off by default so output is byte-stable)
  --summary-json PATH  also write the shutdown summary as JSON
";

struct Options {
    input: String,
    workers: usize,
    queue_capacity: usize,
    timeout_ms: u64,
    model_seed: u64,
    config_path: Option<String>,
    latency: bool,
    summary_json: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            input: "-".into(),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 32,
            timeout_ms: 0,
            model_seed: DEFAULT_DOC_SEED,
            config_path: None,
            latency: false,
            summary_json: None,
        }
    }
}

fn parse_seed(raw: &str) -> Result<u64, String> {
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|e| e.to_string())
    } else {
        raw.parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--input" => opts.input = value("--input")?,
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-capacity" => {
                opts.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?;
            }
            "--timeout-ms" => {
                opts.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?;
            }
            "--model-seed" => {
                let raw = value("--model-seed")?;
                opts.model_seed = parse_seed(&raw).map_err(|e| format!("--model-seed: {e}"))?;
            }
            "--config" => opts.config_path = Some(value("--config")?),
            "--latency" => opts.latency = true,
            "--summary-json" => opts.summary_json = Some(value("--summary-json")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn fail(message: &str) -> ! {
    eprintln!("vs2d: {message}");
    std::process::exit(2);
}

/// What the result emitter must produce for one input line, in order.
enum LineFate {
    /// A job went into the engine; wait for its result.
    Submitted { job_id: String },
    /// The line failed to parse; report `invalid` immediately.
    Invalid { job_id: String, error: String },
}

/// Outcome of the submit/emit phase: per-job latencies plus the count of
/// invalid input lines.
struct BatchRun {
    latencies: Vec<Duration>,
    invalid: u64,
}

/// Submits every job spec from `reader` while a second thread streams
/// results to stdout in input order. Engine sequence numbers are
/// assigned in submission order, so the emitter simply waits on
/// 0, 1, 2, … as the fates arrive.
fn run_batch(
    service: &ExtractService,
    reader: Box<dyn BufRead>,
    include_latency: bool,
) -> BatchRun {
    let (fate_tx, fate_rx) = mpsc::channel::<LineFate>();
    let mut invalid = 0u64;
    let latencies = std::thread::scope(|scope| {
        let emitter = scope.spawn(move || {
            let mut out = BufWriter::new(std::io::stdout().lock());
            let mut lats = Vec::new();
            let mut engine_seq = 0u64;
            for (out_seq, fate) in fate_rx.iter().enumerate() {
                let out_seq = out_seq as u64;
                let result = match fate {
                    LineFate::Submitted { job_id } => {
                        let done = service.wait_result(engine_seq);
                        engine_seq += 1;
                        lats.push(done.latency);
                        let (status, extractions, error) = match done.outcome {
                            JobOutcome::Ok(ex) => (JobStatus::Ok, ex, None),
                            JobOutcome::Panicked(msg) => (JobStatus::Panicked, vec![], Some(msg)),
                            JobOutcome::TimedOut => (JobStatus::TimedOut, vec![], None),
                        };
                        JobResult {
                            seq: out_seq,
                            job_id,
                            status,
                            extractions,
                            error,
                            latency_us: if include_latency {
                                Some(u64::try_from(done.latency.as_micros()).unwrap_or(u64::MAX))
                            } else {
                                None
                            },
                        }
                    }
                    LineFate::Invalid { job_id, error } => JobResult {
                        seq: out_seq,
                        job_id,
                        status: JobStatus::Invalid,
                        extractions: vec![],
                        error: Some(error),
                        latency_us: None,
                    },
                };
                let line = serde_json::to_string(&result).expect("result serialises");
                writeln!(out, "{line}").expect("write stdout");
            }
            out.flush().expect("flush stdout");
            lats
        });
        for (line_no, line) in reader.lines().enumerate() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("vs2d: input read error: {e}");
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let default_id = format!("job-{line_no}");
            match serde_json::from_str::<JobSpec>(&line) {
                Ok(spec) => {
                    let job_id = spec.job_id.clone().unwrap_or(default_id);
                    // Backpressure: blocks while the work queue is full.
                    service.submit(spec);
                    let _ = fate_tx.send(LineFate::Submitted { job_id });
                }
                Err(e) => {
                    invalid += 1;
                    let _ = fate_tx.send(LineFate::Invalid {
                        job_id: default_id,
                        error: e.to_string(),
                    });
                }
            }
        }
        drop(fate_tx);
        emitter.join().expect("emitter thread")
    });
    BatchRun { latencies, invalid }
}

fn main() {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => fail(&e),
    };
    let config: Option<Vs2Config> = opts.config_path.as_ref().map(|path| {
        let raw = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read --config {path}: {e}")));
        serde_json::from_str(&raw)
            .unwrap_or_else(|e| fail(&format!("invalid --config {path}: {e}")))
    });
    let reader: Box<dyn BufRead> = if opts.input == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        match std::fs::File::open(&opts.input) {
            Ok(f) => Box::new(std::io::BufReader::new(f)),
            Err(e) => fail(&format!("cannot open --input {}: {e}", opts.input)),
        }
    };

    let service = ExtractService::new(
        EngineConfig {
            workers: opts.workers,
            queue_capacity: opts.queue_capacity,
            job_timeout: (opts.timeout_ms > 0).then(|| Duration::from_millis(opts.timeout_ms)),
        },
        opts.model_seed,
        config,
    );

    let started = Instant::now();
    let run = run_batch(&service, reader, opts.latency);
    let wall = started.elapsed();

    let stats = service.stats();
    let (cache_hits, cache_misses) = service.cache_counters();
    service.shutdown();

    let lat = LatencySummary::from_latencies(&run.latencies);
    let jobs = stats.submitted + run.invalid;
    let docs_per_s = if wall.as_secs_f64() > 0.0 {
        stats.completed as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    eprintln!(
        "vs2d: {jobs} jobs ({} ok, {} panicked, {} timed_out, {} invalid) in {:.2}s — {:.1} docs/s",
        stats.ok,
        stats.panicked,
        stats.timed_out,
        run.invalid,
        wall.as_secs_f64(),
        docs_per_s,
    );
    eprintln!(
        "vs2d: latency p50 {}us p95 {}us p99 {}us | queue stalls {} | model cache {} miss, {} hit | {} workers",
        lat.p50_us,
        lat.p95_us,
        lat.p99_us,
        stats.queue_stalls,
        cache_misses,
        cache_hits,
        opts.workers,
    );
    if let Some(path) = &opts.summary_json {
        let summary = serde::Value::Object(vec![
            ("workers".into(), serde::Value::UInt(opts.workers as u64)),
            (
                "queue_capacity".into(),
                serde::Value::UInt(opts.queue_capacity as u64),
            ),
            ("jobs".into(), serde::Value::UInt(jobs)),
            ("ok".into(), serde::Value::UInt(stats.ok)),
            ("panicked".into(), serde::Value::UInt(stats.panicked)),
            ("timed_out".into(), serde::Value::UInt(stats.timed_out)),
            ("invalid".into(), serde::Value::UInt(run.invalid)),
            ("wall_s".into(), serde::Value::Float(wall.as_secs_f64())),
            ("docs_per_s".into(), serde::Value::Float(docs_per_s)),
            ("p50_us".into(), serde::Value::UInt(lat.p50_us)),
            ("p95_us".into(), serde::Value::UInt(lat.p95_us)),
            ("p99_us".into(), serde::Value::UInt(lat.p99_us)),
            (
                "queue_stalls".into(),
                serde::Value::UInt(stats.queue_stalls),
            ),
            ("cache_misses".into(), serde::Value::UInt(cache_misses)),
            ("cache_hits".into(), serde::Value::UInt(cache_hits)),
        ]);
        if let Err(e) = std::fs::write(
            path,
            serde_json::to_string_pretty(&summary).expect("summary serialises"),
        ) {
            eprintln!("vs2d: cannot write --summary-json {path}: {e}");
        }
    }
    if stats.panicked + stats.timed_out + run.invalid > 0 {
        std::process::exit(1);
    }
}
