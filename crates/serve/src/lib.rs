//! # vs2-serve
//!
//! Concurrent batch-extraction service over the VS2 pipeline: learn a
//! dataset's pattern inventory once, then extract from many documents in
//! parallel with bounded memory and reproducible output.
//!
//! ```text
//!                    ┌────────────────────────────┐
//!  submit ──────────▶│  BoundedQueue (cap N)      │   backpressure:
//!  (blocks if full)  └──────────┬─────────────────┘   stalls counted
//!                               │ pop
//!            ┌──────────┬───────┴──┬──────────┐
//!            ▼          ▼          ▼          ▼
//!        worker-0   worker-1   worker-2   worker-3     std::thread pool
//!            │          │          │          │        catch_unwind per job
//!            └────┬─────┴────┬─────┴──────────┘
//!                 │          ▼
//!                 │   ModelCache (Arc<Vs2Model>)       learn once per
//!                 │   dataset × seed × learn-config    (dataset, seed)
//!                 ▼
//!        results: BTreeMap<seq, outcome>               drain() replays
//!                 ▲                                    submission order
//!            watchdog (soft per-job timeout)
//! ```
//!
//! Layers, bottom up:
//!
//! * [`queue::BoundedQueue`] — blocking MPMC queue; the bound is the
//!   service's backpressure.
//! * [`engine::BatchEngine`] — generic worker pool with per-job panic
//!   isolation, soft timeouts and submission-ordered results.
//! * [`cache::ModelCache`] — learn-once/extract-many `Vs2Model` sharing.
//! * [`service::ExtractService`] — the three wired together over
//!   [`job::JobSpec`]s.
//! * the `vs2d` binary — JSONL front end over [`service::ExtractService`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod job;
pub mod queue;
pub mod service;

pub use cache::{default_config_for, weights_for, ModelCache};
pub use engine::{BatchEngine, Completed, EngineConfig, EngineStats, JobOutcome};
pub use job::{JobResult, JobSource, JobSpec, JobStatus, DEFAULT_DOC_SEED};
pub use queue::BoundedQueue;
pub use service::{ExtractService, LatencySummary};
