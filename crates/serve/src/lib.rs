//! # vs2-serve
//!
//! Concurrent batch-extraction service over the VS2 pipeline: learn a
//! dataset's pattern inventory once, then extract from many documents in
//! parallel with bounded memory and reproducible output.
//!
//! ```text
//!                    ┌────────────────────────────┐
//!  submit ──────────▶│  BoundedQueue (cap N)      │   backpressure:
//!  (blocks if full)  └──────────┬─────────────────┘   stalls counted
//!                               │ pop
//!            ┌──────────┬───────┴──┬──────────┐
//!            ▼          ▼          ▼          ▼
//!        worker-0   worker-1   worker-2   worker-3     std::thread pool
//!            │          │          │          │        catch_unwind per job
//!            └────┬─────┴────┬─────┴──────────┘
//!                 │          ▼
//!                 │   ModelCache (Arc<Vs2Model>)       learn once per
//!                 │   dataset × seed × learn-config    (dataset, seed)
//!                 ▼
//!        results: BTreeMap<seq, outcome>               drain() replays
//!                 ▲                                    submission order
//!            watchdog (soft per-job timeout)
//! ```
//!
//! Layers, bottom up:
//!
//! * [`queue::BoundedQueue`] / [`queue::LaneQueue`] — blocking MPMC
//!   queues; the bound is the service's backpressure, the lanes the
//!   interactive/batch priority split.
//! * [`admit::AdmitController`] — admission control: deterministic
//!   per-client token buckets, backlog/latency pressure watermarks,
//!   seeded load shedding and degrade routing.
//! * [`error::ServeError`] — the structured failure taxonomy (retryable /
//!   fatal / timeout / poison) every layer above speaks.
//! * [`retry::RetryPolicy`] — bounded attempts with seeded
//!   decorrelated-jitter backoff (no wall-clock randomness).
//! * [`faults::FaultPlan`] — deterministic fault injection at named
//!   pipeline sites, enabled only through [`engine::EngineConfig`].
//! * [`engine::BatchEngine`] — generic worker pool with per-job panic
//!   isolation, retry/backoff, soft timeouts, poison-job quarantine,
//!   graceful degradation and submission-ordered results.
//! * [`cache::ModelCache`] — learn-once/extract-many `Vs2Model` sharing.
//! * [`obs::EngineMetrics`] / [`obs::ObsHub`] — opt-in serving metrics
//!   (sharded lock-free registry) and per-job span capture for `--trace`.
//! * [`service::ExtractService`] — the layers wired together over
//!   [`job::JobSpec`]s, degrading to the XY-cut baseline segmenter when
//!   the learned pipeline fails a job.
//! * [`batch::run_batch`] and the `vs2d` binary — JSONL front end over
//!   [`service::ExtractService`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admit;
pub mod batch;
pub mod cache;
pub mod engine;
pub mod error;
pub mod faults;
pub mod handoff;
pub mod job;
pub mod obs;
pub mod queue;
pub mod retry;
pub mod service;

pub use admit::{
    AdmitConfig, AdmitController, AdmitDecision, AdmitSnapshot, Lane, PressureLevel, ShedReason,
};
pub use batch::{run_batch, BatchOptions, BatchRun};
pub use cache::{
    default_config_for, weights_for, CacheSnapshot, ModelCache, PlanNamespaceSnapshot,
};
pub use engine::{BatchEngine, Completed, EngineConfig, EngineStats, JobCtx, JobOutcome};
pub use error::{QuarantineEntry, ServeError};
pub use faults::{FaultKind, FaultPlan, FaultSite};
pub use handoff::{HandoffError, HandoffSnapshot, PlanEntry, PlanNamespace};
pub use job::{
    JobDocCache, JobResult, JobSource, JobSpec, JobStatus, QuarantineRecord, DEFAULT_DOC_SEED,
};
pub use obs::{EngineMetrics, ObsHub};
pub use queue::{BoundedQueue, LaneQueue, PushError};
pub use retry::RetryPolicy;
pub use service::{ExtractService, LatencySummary, ServiceOptions};
