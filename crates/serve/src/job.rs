//! JSONL job specs and results — the `vs2d` wire format.
//!
//! One job per line. A job addresses a document either synthetically
//! (`dataset` + `doc_index` [+ `seed`], resolved through
//! `vs2_synth::generate_one`) or inline (`dataset` + a serialized
//! `doc`; the dataset still selects the served model):
//!
//! ```text
//! {"job_id":"t-17","dataset":"D1","doc_index":17}
//! {"job_id":"p-3","dataset":"D2","doc_index":3,"seed":99}
//! {"dataset":"D3","doc":{"id":"upload-1","width":612.0,...}}
//! ```
//!
//! Result lines mirror submission order. `latency_us` is emitted only
//! when requested (`vs2d --latency`) so that default output is
//! byte-identical across runs and worker counts.

use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Error, Serialize, Value};
use vs2_core::Extraction;
use vs2_docmodel::Document;
use vs2_synth::dataset::{generate_one, DatasetConfig, DatasetId};

use crate::admit::Lane;

/// Generation seed used when a synthetic job spec omits `seed`; matches
/// the bench harness default.
pub const DEFAULT_DOC_SEED: u64 = 0xC0FFEE;

/// Where a job's document comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSource {
    /// Generate document `doc_index` of the `(dataset, seed)` stream.
    Synthetic {
        /// Index into the synthetic document stream.
        doc_index: usize,
        /// Stream master seed.
        seed: u64,
    },
    /// The document is embedded in the job spec. `Arc` so that job
    /// clones across the queue boundary share one allocation.
    Inline(Arc<Document>),
}

/// Per-job memo of the materialised document, so retries, the degraded
/// fallback and the primary attempt all share one `Arc<Document>`
/// instead of re-generating (synthetic) or re-cloning (inline).
///
/// Identity-transparent: clones carry the cached value forward (a
/// refcount bump, never a deep copy) and every `JobDocCache` compares
/// equal — the cache is derived state, not part of the job's value.
#[derive(Default)]
pub struct JobDocCache(OnceLock<Arc<Document>>);

impl Clone for JobDocCache {
    fn clone(&self) -> Self {
        let cell = OnceLock::new();
        if let Some(doc) = self.0.get() {
            let _ = cell.set(Arc::clone(doc));
        }
        Self(cell)
    }
}

impl PartialEq for JobDocCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for JobDocCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("JobDocCache")
            .field(&self.0.get().map(|d| d.id.as_str()))
            .finish()
    }
}

/// One extraction job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Caller-chosen id echoed into the result; defaults to the input
    /// line number rendered as `job-<n>`.
    pub job_id: Option<String>,
    /// Dataset the document belongs to — selects the served model.
    pub dataset: DatasetId,
    /// Document source.
    pub source: JobSource,
    /// Originating client, the fairness key for admission control's
    /// per-client token buckets. `None` is never rate limited.
    pub client: Option<String>,
    /// Queue class. `None` takes the daemon default (`vs2d --lane`),
    /// which itself defaults to interactive.
    pub lane: Option<Lane>,
    /// Materialisation memo for [`JobSpec::document_arc`]. Ignored by
    /// equality and the wire format.
    pub doc_cache: JobDocCache,
}

impl JobSpec {
    /// Materialises the job's document (generating it if synthetic).
    pub fn document(&self) -> Document {
        (*self.document_arc()).clone()
    }

    /// Materialises the job's document behind a shared `Arc`, memoised
    /// per job: the first call generates (synthetic) or shares (inline)
    /// the document; later calls — retries, fallback, observability —
    /// are refcount bumps.
    pub fn document_arc(&self) -> Arc<Document> {
        Arc::clone(self.doc_cache.0.get_or_init(|| match &self.source {
            JobSource::Synthetic { doc_index, seed } => {
                Arc::new(generate_one(self.dataset, *doc_index, DatasetConfig::new(1, *seed)).doc)
            }
            JobSource::Inline(doc) => Arc::clone(doc),
        }))
    }
}

impl Serialize for JobSpec {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        if let Some(id) = &self.job_id {
            fields.push(("job_id".to_string(), Value::Str(id.clone())));
        }
        if let Some(client) = &self.client {
            fields.push(("client".to_string(), Value::Str(client.clone())));
        }
        if let Some(lane) = self.lane {
            fields.push(("lane".to_string(), Value::Str(lane.as_str().to_string())));
        }
        fields.push(("dataset".to_string(), self.dataset.to_value()));
        match &self.source {
            JobSource::Synthetic { doc_index, seed } => {
                fields.push(("doc_index".to_string(), Value::UInt(*doc_index as u64)));
                fields.push(("seed".to_string(), Value::UInt(*seed)));
            }
            JobSource::Inline(doc) => {
                fields.push(("doc".to_string(), doc.to_value()));
            }
        }
        Value::Object(fields)
    }
}

impl Deserialize for JobSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let job_id = match v.get("job_id") {
            Some(Value::Null) | None => None,
            Some(val) => Some(String::from_value(val)?),
        };
        let client = match v.get("client") {
            Some(Value::Null) | None => None,
            Some(val) => Some(String::from_value(val)?),
        };
        let lane = match v.get("lane") {
            Some(Value::Null) | None => None,
            Some(val) => {
                let name = String::from_value(val)?;
                Some(
                    Lane::parse(&name)
                        .ok_or_else(|| Error::new(format!("unknown lane `{name}`")))?,
                )
            }
        };
        let dataset: DatasetId = v.field("dataset")?;
        let source = if let Some(doc) = v.get("doc") {
            if v.get("doc_index").is_some() {
                return Err(Error::new("job has both `doc` and `doc_index`"));
            }
            JobSource::Inline(Arc::new(Document::from_value(doc)?))
        } else {
            JobSource::Synthetic {
                doc_index: v
                    .field("doc_index")
                    .map_err(|e| Error::new(format!("job needs `doc` or `doc_index`: {e}")))?,
                seed: v.field_or("seed", DEFAULT_DOC_SEED)?,
            }
        };
        Ok(Self {
            job_id,
            dataset,
            source,
            client,
            lane,
            doc_cache: JobDocCache::default(),
        })
    }
}

/// Terminal status of a job, as reported on the result line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Extraction succeeded.
    Ok,
    /// The primary pipeline failed every attempt; the extractions come
    /// from the XY-cut degradation fallback.
    Degraded,
    /// The job failed every attempt with no degraded answer; a matching
    /// `quarantine` record follows the batch.
    Quarantined,
    /// The job panicked inside the worker.
    Panicked,
    /// The job exceeded the per-job deadline.
    TimedOut,
    /// Admission control rejected the job (overload or drain); it was
    /// never processed. Resubmit once pressure clears.
    Shed,
    /// The input line was not a valid job spec.
    Invalid,
}

impl JobStatus {
    /// Wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Degraded => "degraded",
            JobStatus::Quarantined => "quarantined",
            JobStatus::Panicked => "panicked",
            JobStatus::TimedOut => "timed_out",
            JobStatus::Shed => "shed",
            JobStatus::Invalid => "invalid",
        }
    }

    fn parse(s: &str) -> Result<Self, Error> {
        match s {
            "ok" => Ok(JobStatus::Ok),
            "degraded" => Ok(JobStatus::Degraded),
            "quarantined" => Ok(JobStatus::Quarantined),
            "panicked" => Ok(JobStatus::Panicked),
            "timed_out" => Ok(JobStatus::TimedOut),
            "shed" => Ok(JobStatus::Shed),
            "invalid" => Ok(JobStatus::Invalid),
            other => Err(Error::new(format!("unknown job status `{other}`"))),
        }
    }
}

/// One result line.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Input line number (0-based); results stream in this order.
    pub seq: u64,
    /// Echo of the job id.
    pub job_id: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Extractions (empty unless `status == Ok`).
    pub extractions: Vec<Extraction>,
    /// Failure detail for panicked/invalid jobs.
    pub error: Option<String>,
    /// Processing latency in microseconds; omitted in stable output.
    pub latency_us: Option<u64>,
}

impl Serialize for JobResult {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("seq".to_string(), Value::UInt(self.seq)),
            ("job_id".to_string(), Value::Str(self.job_id.clone())),
            (
                "status".to_string(),
                Value::Str(self.status.as_str().to_string()),
            ),
            ("extractions".to_string(), self.extractions.to_value()),
        ];
        if let Some(err) = &self.error {
            fields.push(("error".to_string(), Value::Str(err.clone())));
        }
        if let Some(us) = self.latency_us {
            fields.push(("latency_us".to_string(), Value::UInt(us)));
        }
        Value::Object(fields)
    }
}

impl Deserialize for JobResult {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let status_name: String = v.field("status")?;
        Ok(Self {
            seq: v.field("seq")?,
            job_id: v.field("job_id")?,
            status: JobStatus::parse(&status_name)?,
            extractions: v.field("extractions")?,
            error: match v.get("error") {
                Some(Value::Null) | None => None,
                Some(val) => Some(String::from_value(val)?),
            },
            latency_us: match v.get("latency_us") {
                Some(Value::Null) | None => None,
                Some(val) => Some(u64::from_value(val)?),
            },
        })
    }
}

/// One quarantine-ledger line, emitted after the batch's result lines:
///
/// ```text
/// {"record":"quarantine","seq":4,"job_id":"job-4","attempts":3,"kind":"poison","error":"..."}
/// ```
///
/// The `record` discriminator keeps these lines distinguishable from
/// result lines in a mixed stream. `elapsed_us` is wall-clock and only
/// present with `vs2d --latency`, so default output stays deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    /// Input line number of the quarantined job.
    pub seq: u64,
    /// Echo of the job id.
    pub job_id: String,
    /// Attempts consumed (including the first).
    pub attempts: u32,
    /// Error taxonomy kind (`fatal` / `timeout` / `poison`).
    pub kind: String,
    /// Human-readable final error.
    pub error: String,
    /// Final-attempt processing time; omitted in stable output.
    pub elapsed_us: Option<u64>,
}

impl Serialize for QuarantineRecord {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("record".to_string(), Value::Str("quarantine".to_string())),
            ("seq".to_string(), Value::UInt(self.seq)),
            ("job_id".to_string(), Value::Str(self.job_id.clone())),
            ("attempts".to_string(), Value::UInt(self.attempts as u64)),
            ("kind".to_string(), Value::Str(self.kind.clone())),
            ("error".to_string(), Value::Str(self.error.clone())),
        ];
        if let Some(us) = self.elapsed_us {
            fields.push(("elapsed_us".to_string(), Value::UInt(us)));
        }
        Value::Object(fields)
    }
}

impl Deserialize for QuarantineRecord {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let record: String = v.field("record")?;
        if record != "quarantine" {
            return Err(Error::new(format!("not a quarantine record: `{record}`")));
        }
        Ok(Self {
            seq: v.field("seq")?,
            job_id: v.field("job_id")?,
            attempts: v.field("attempts")?,
            kind: v.field("kind")?,
            error: v.field("error")?,
            elapsed_us: match v.get("elapsed_us") {
                Some(Value::Null) | None => None,
                Some(val) => Some(u64::from_value(val)?),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_spec_round_trips_with_default_seed() {
        let spec: JobSpec =
            serde_json::from_str(r#"{"job_id":"a","dataset":"D1","doc_index":4}"#).unwrap();
        assert_eq!(spec.dataset, DatasetId::D1);
        assert_eq!(
            spec.source,
            JobSource::Synthetic {
                doc_index: 4,
                seed: DEFAULT_DOC_SEED
            }
        );
        let back: JobSpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn inline_spec_round_trips() {
        let doc = generate_one(DatasetId::D3, 0, DatasetConfig::new(1, 5)).doc;
        let spec = JobSpec {
            job_id: None,
            dataset: DatasetId::D3,
            source: JobSource::Inline(Arc::new(doc.clone())),
            client: None,
            lane: None,
            doc_cache: JobDocCache::default(),
        };
        let back: JobSpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.document(), doc);
    }

    #[test]
    fn client_and_lane_round_trip_and_are_omitted_when_absent() {
        let spec: JobSpec =
            serde_json::from_str(r#"{"job_id":"a","dataset":"D1","doc_index":4}"#).unwrap();
        assert_eq!(spec.client, None);
        assert_eq!(spec.lane, None);
        let json = serde_json::to_string(&spec).unwrap();
        assert!(!json.contains("client"), "{json}");
        assert!(!json.contains("lane"), "{json}");
        let tagged: JobSpec = serde_json::from_str(
            r#"{"client":"tenant-7","lane":"batch","dataset":"D1","doc_index":4}"#,
        )
        .unwrap();
        assert_eq!(tagged.client.as_deref(), Some("tenant-7"));
        assert_eq!(tagged.lane, Some(Lane::Batch));
        let back: JobSpec = serde_json::from_str(&serde_json::to_string(&tagged).unwrap()).unwrap();
        assert_eq!(back, tagged);
        assert!(
            serde_json::from_str::<JobSpec>(r#"{"lane":"bulk","dataset":"D1","doc_index":4}"#)
                .is_err()
        );
    }

    #[test]
    fn spec_validation_rejects_ambiguity() {
        assert!(serde_json::from_str::<JobSpec>(r#"{"dataset":"D1"}"#).is_err());
        assert!(serde_json::from_str::<JobSpec>(
            r#"{"dataset":"D1","doc_index":0,"doc":{"id":"x","width":1.0,"height":1.0,"texts":[],"images":[]}}"#
        )
        .is_err());
        assert!(serde_json::from_str::<JobSpec>(r#"{"dataset":"D9","doc_index":0}"#).is_err());
    }

    #[test]
    fn synthetic_document_matches_dataset_stream() {
        let spec: JobSpec =
            serde_json::from_str(r#"{"dataset":"D2","doc_index":2,"seed":9}"#).unwrap();
        let expected = generate_one(DatasetId::D2, 2, DatasetConfig::new(1, 9)).doc;
        assert_eq!(spec.document(), expected);
    }

    #[test]
    fn result_line_round_trips_and_omits_absent_fields() {
        let r = JobResult {
            seq: 3,
            job_id: "job-3".into(),
            status: JobStatus::Ok,
            extractions: vec![],
            error: None,
            latency_us: None,
        };
        let json = serde_json::to_string(&r).unwrap();
        assert!(!json.contains("error"), "{json}");
        assert!(!json.contains("latency_us"), "{json}");
        let back: JobResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let failed = JobResult {
            status: JobStatus::Panicked,
            error: Some("boom".into()),
            latency_us: Some(120),
            ..r
        };
        let back: JobResult =
            serde_json::from_str(&serde_json::to_string(&failed).unwrap()).unwrap();
        assert_eq!(back, failed);
    }

    #[test]
    fn every_status_round_trips_through_its_wire_name() {
        for status in [
            JobStatus::Ok,
            JobStatus::Degraded,
            JobStatus::Quarantined,
            JobStatus::Panicked,
            JobStatus::TimedOut,
            JobStatus::Shed,
            JobStatus::Invalid,
        ] {
            assert_eq!(JobStatus::parse(status.as_str()).unwrap(), status);
        }
        assert!(JobStatus::parse("poisoned").is_err());
    }

    #[test]
    fn quarantine_record_round_trips_and_is_discriminated() {
        let rec = QuarantineRecord {
            seq: 4,
            job_id: "job-4".into(),
            attempts: 3,
            kind: "poison".into(),
            error: "poison after 3 attempts: flaky".into(),
            elapsed_us: None,
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.starts_with(r#"{"record":"quarantine""#), "{json}");
        assert!(!json.contains("elapsed_us"), "{json}");
        let back: QuarantineRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
        // A result line must not parse as a quarantine record.
        assert!(serde_json::from_str::<QuarantineRecord>(
            r#"{"record":"result","seq":0,"job_id":"a","attempts":1,"kind":"fatal","error":"x"}"#
        )
        .is_err());
    }
}
