//! The batch engine: a worker pool pulling jobs off a bounded queue and
//! publishing outcomes into an ordered result map.
//!
//! Design notes:
//!
//! * **Determinism.** Every submitted job gets a monotonically increasing
//!   sequence number; results are keyed by it. However many workers race,
//!   [`BatchEngine::drain`] returns outcomes in submission order, so a
//!   4-worker run is byte-identical to a 1-worker run.
//! * **Panic isolation.** Each job runs under `catch_unwind`; a panicking
//!   job is reported as [`JobOutcome::Panicked`] and the worker thread
//!   returns to the pool.
//! * **Soft timeouts.** A watchdog thread scans in-flight jobs; one that
//!   exceeds the deadline is reported as [`JobOutcome::TimedOut`]
//!   immediately (waiters unblock at the deadline, not at completion).
//!   The worker keeps running the job — threads cannot be killed safely —
//!   and its late result is discarded.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::queue::BoundedQueue;

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of worker threads (minimum 1).
    pub workers: usize,
    /// Work-queue capacity; submitters block (backpressure) beyond it.
    pub queue_capacity: usize,
    /// Soft per-job deadline, measured from the moment a worker picks the
    /// job up. `None` disables the watchdog.
    pub job_timeout: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 32,
            job_timeout: None,
        }
    }
}

/// Terminal state of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome<O> {
    /// The processor returned normally.
    Ok(O),
    /// The processor panicked; the payload is the panic message.
    Panicked(String),
    /// The job exceeded [`EngineConfig::job_timeout`].
    TimedOut,
}

impl<O> JobOutcome<O> {
    /// `true` for [`JobOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Ok(_))
    }
}

/// One finished job: outcome plus processing latency (queue wait
/// excluded; for a timeout, the latency is the elapsed time at the
/// moment the watchdog fired).
#[derive(Debug, Clone, PartialEq)]
pub struct Completed<O> {
    /// Submission sequence number.
    pub seq: u64,
    /// Terminal state.
    pub outcome: JobOutcome<O>,
    /// Processing latency.
    pub latency: Duration,
}

/// Counters snapshot; see [`BatchEngine::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs accepted by `submit`.
    pub submitted: u64,
    /// Jobs with a published outcome.
    pub completed: u64,
    /// Jobs that finished normally.
    pub ok: u64,
    /// Jobs that panicked.
    pub panicked: u64,
    /// Jobs cut off by the watchdog.
    pub timed_out: u64,
    /// Submissions that blocked on a full queue.
    pub queue_stalls: u64,
}

struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    ok: AtomicU64,
    panicked: AtomicU64,
    timed_out: AtomicU64,
}

struct ResultsState<O> {
    map: BTreeMap<u64, Completed<O>>,
    /// Every live seq already published — the exactly-once guard. A
    /// worker's late result must stay discarded even after `wait_result`
    /// has consumed the watchdog's `TimedOut` entry for the same seq.
    done: HashSet<u64>,
    /// Seqs below this have been drained; `done` forgets them to stay
    /// bounded, so publishes this old are discarded by the bound alone.
    /// A watchdog-timed-out job's worker may still be running when its
    /// seq is drained — without this check its eventual publish would
    /// re-enter `done` and double-count the job.
    drained_upto: u64,
}

struct Shared<J, O> {
    queue: BoundedQueue<(u64, J)>,
    results: Mutex<ResultsState<O>>,
    results_cv: Condvar,
    inflight: Mutex<HashMap<u64, Instant>>,
    counters: Counters,
    timeout: Option<Duration>,
    stopping: AtomicBool,
}

impl<J, O> Shared<J, O> {
    /// Publishes `seq`'s outcome unless something (the watchdog) already
    /// did; late results of timed-out jobs are discarded here.
    fn publish(&self, seq: u64, outcome: JobOutcome<O>, latency: Duration) {
        let mut results = self.results.lock().unwrap();
        if seq < results.drained_upto || !results.done.insert(seq) {
            return;
        }
        match &outcome {
            JobOutcome::Ok(_) => self.counters.ok.fetch_add(1, Ordering::Relaxed),
            JobOutcome::Panicked(_) => self.counters.panicked.fetch_add(1, Ordering::Relaxed),
            JobOutcome::TimedOut => self.counters.timed_out.fetch_add(1, Ordering::Relaxed),
        };
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        results.map.insert(
            seq,
            Completed {
                seq,
                outcome,
                latency,
            },
        );
        drop(results);
        self.results_cv.notify_all();
    }
}

/// A concurrent batch processor: submit jobs, harvest outcomes in
/// submission order. Generic over the job and output types so tests can
/// inject slow or panicking processors; the extraction service plugs a
/// shared-model [`crate::cache::ModelCache`] processor in.
pub struct BatchEngine<J: Send + 'static, O: Send + 'static> {
    shared: Arc<Shared<J, O>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    next_seq: AtomicU64,
    next_drain: u64,
    config: EngineConfig,
}

impl<J: Send + 'static, O: Send + 'static> BatchEngine<J, O> {
    /// Spawns the worker pool (and, with a timeout configured, the
    /// watchdog). `process` runs on worker threads and must therefore be
    /// `Send + Sync`; shared read-only state (the model cache) goes in
    /// via `Arc` capture.
    pub fn new<F>(config: EngineConfig, process: F) -> Self
    where
        F: Fn(&J) -> O + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            results: Mutex::new(ResultsState {
                map: BTreeMap::new(),
                done: HashSet::new(),
                drained_upto: 0,
            }),
            results_cv: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            counters: Counters {
                submitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                ok: AtomicU64::new(0),
                panicked: AtomicU64::new(0),
                timed_out: AtomicU64::new(0),
            },
            timeout: config.job_timeout,
            stopping: AtomicBool::new(false),
        });
        let process = Arc::new(process);
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let process = Arc::clone(&process);
                std::thread::Builder::new()
                    .name(format!("vs2-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &*process))
                    .expect("spawn worker thread")
            })
            .collect();
        let watchdog = config.job_timeout.map(|timeout| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("vs2-watchdog".into())
                .spawn(move || watchdog_loop(&shared, timeout))
                .expect("spawn watchdog thread")
        });
        Self {
            shared,
            workers,
            watchdog,
            next_seq: AtomicU64::new(0),
            next_drain: 0,
            config,
        }
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Submits a job, blocking while the queue is full (backpressure).
    /// Returns the job's sequence number.
    ///
    /// # Panics
    /// If called after [`BatchEngine::shutdown`] began (the queue is
    /// closed).
    pub fn submit(&self, job: J) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        if self.shared.queue.push((seq, job)).is_err() {
            panic!("submit on a shut-down engine");
        }
        seq
    }

    /// Blocks until job `seq`'s outcome is available and removes it.
    /// Waiting on a sequence number that was never submitted (or was
    /// already taken) blocks forever — sequence numbers come from
    /// [`BatchEngine::submit`] and each may be waited on once.
    pub fn wait_result(&self, seq: u64) -> Completed<O> {
        let mut results = self.shared.results.lock().unwrap();
        loop {
            if let Some(done) = results.map.remove(&seq) {
                return done;
            }
            results = self.shared.results_cv.wait(results).unwrap();
        }
    }

    /// Waits for every job submitted so far and returns their outcomes in
    /// submission order. May be called repeatedly; each call covers the
    /// jobs submitted since the previous one. The engine stays usable.
    pub fn drain(&mut self) -> Vec<Completed<O>> {
        let upto = self.next_seq.load(Ordering::Relaxed);
        let mut out = Vec::with_capacity((upto - self.next_drain) as usize);
        for seq in self.next_drain..upto {
            out.push(self.wait_result(seq));
        }
        self.next_drain = upto;
        // Shrink the exactly-once guard: raise the drained bound (so late
        // publishes for these seqs are discarded by the bound check) and
        // forget their `done` entries — both under one lock acquisition,
        // so no publish can slip between the two.
        let mut results = self.shared.results.lock().unwrap();
        results.drained_upto = upto;
        results.done.retain(|&seq| seq >= upto);
        out
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            submitted: self.shared.counters.submitted.load(Ordering::Relaxed),
            completed: self.shared.counters.completed.load(Ordering::Relaxed),
            ok: self.shared.counters.ok.load(Ordering::Relaxed),
            panicked: self.shared.counters.panicked.load(Ordering::Relaxed),
            timed_out: self.shared.counters.timed_out.load(Ordering::Relaxed),
            queue_stalls: self.shared.queue.stall_count(),
        }
    }

    /// Closes the queue, waits for the workers to finish the backlog and
    /// returns the final counters.
    pub fn shutdown(mut self) -> EngineStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        self.shared.stopping.store(true, Ordering::Relaxed);
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
    }
}

impl<J: Send + 'static, O: Send + 'static> Drop for BatchEngine<J, O> {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop<J, O>(shared: &Shared<J, O>, process: &(dyn Fn(&J) -> O + Send + Sync)) {
    while let Some((seq, job)) = shared.queue.pop() {
        let start = Instant::now();
        shared.inflight.lock().unwrap().insert(seq, start);
        let result = catch_unwind(AssertUnwindSafe(|| process(&job)));
        let latency = start.elapsed();
        shared.inflight.lock().unwrap().remove(&seq);
        // A job past its deadline reports TimedOut whether or not the
        // watchdog happened to catch it first — keeps the label
        // deterministic under scheduling jitter.
        let late = shared.timeout.is_some_and(|t| latency >= t);
        let outcome = if late {
            JobOutcome::TimedOut
        } else {
            match result {
                Ok(output) => JobOutcome::Ok(output),
                Err(payload) => JobOutcome::Panicked(panic_message(&*payload)),
            }
        };
        shared.publish(seq, outcome, latency);
    }
}

fn watchdog_loop<J, O>(shared: &Shared<J, O>, timeout: Duration) {
    // Wake often enough that a timeout is detected within ~a quarter of
    // the deadline, but never spin faster than once a millisecond.
    let tick = (timeout / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
    loop {
        std::thread::sleep(tick);
        let now = Instant::now();
        let expired: Vec<(u64, Duration)> = {
            let mut inflight = shared.inflight.lock().unwrap();
            let seqs: Vec<u64> = inflight
                .iter()
                .filter(|(_, started)| now.duration_since(**started) >= timeout)
                .map(|(seq, _)| *seq)
                .collect();
            seqs.into_iter()
                .map(|seq| {
                    let started = inflight.remove(&seq).unwrap();
                    (seq, now.duration_since(started))
                })
                .collect()
        };
        for (seq, elapsed) in expired {
            shared.publish(seq, JobOutcome::TimedOut, elapsed);
        }
        if shared.stopping.load(Ordering::Relaxed)
            && shared.queue.is_empty()
            && shared.inflight.lock().unwrap().is_empty()
        {
            return;
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_arrive_in_submission_order() {
        let mut engine = BatchEngine::new(
            EngineConfig {
                workers: 4,
                queue_capacity: 8,
                job_timeout: None,
            },
            |job: &u64| {
                // Earlier jobs sleep longer, so completion order inverts
                // submission order — drain must still return 0,1,2,…
                std::thread::sleep(Duration::from_millis(20 - job.min(&19)));
                job * 2
            },
        );
        for i in 0..20u64 {
            engine.submit(i);
        }
        let results = engine.drain();
        let values: Vec<u64> = results
            .iter()
            .map(|c| match c.outcome {
                JobOutcome::Ok(v) => v,
                ref other => panic!("unexpected outcome {other:?}"),
            })
            .collect();
        assert_eq!(values, (0..20).map(|i| i * 2).collect::<Vec<_>>());
        assert!(results.iter().all(|c| c.latency > Duration::ZERO));
    }

    #[test]
    fn drain_is_incremental_and_engine_reusable() {
        let mut engine = BatchEngine::new(EngineConfig::default(), |j: &u32| j + 1);
        engine.submit(1);
        assert_eq!(engine.drain().len(), 1);
        engine.submit(2);
        engine.submit(3);
        let second = engine.drain();
        assert_eq!(second.len(), 2);
        assert_eq!(second[0].seq, 1);
        let stats = engine.shutdown();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.ok, 3);
    }

    #[test]
    fn panicking_job_is_isolated() {
        let mut engine = BatchEngine::new(
            EngineConfig {
                workers: 2,
                queue_capacity: 4,
                job_timeout: None,
            },
            |job: &u32| {
                if *job == 13 {
                    panic!("poisoned document {job}");
                }
                *job
            },
        );
        for j in [11u32, 13, 17] {
            engine.submit(j);
        }
        let results = engine.drain();
        assert_eq!(results[0].outcome, JobOutcome::Ok(11));
        assert_eq!(
            results[1].outcome,
            JobOutcome::Panicked("poisoned document 13".into())
        );
        assert_eq!(results[2].outcome, JobOutcome::Ok(17));
        // The pool survives the panic and keeps serving.
        engine.submit(23);
        assert_eq!(engine.drain()[0].outcome, JobOutcome::Ok(23));
        assert_eq!(engine.stats().panicked, 1);
    }

    #[test]
    fn slow_job_times_out_without_blocking_the_batch() {
        let mut engine = BatchEngine::new(
            EngineConfig {
                workers: 2,
                queue_capacity: 8,
                job_timeout: Some(Duration::from_millis(40)),
            },
            |job: &u64| {
                if *job == 1 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                *job
            },
        );
        let t0 = Instant::now();
        for j in 0..4u64 {
            engine.submit(j);
        }
        let results = engine.drain();
        // The timed-out job was reported at its deadline, well before the
        // sleeping worker finished.
        assert!(t0.elapsed() < Duration::from_millis(350));
        assert_eq!(results[1].outcome, JobOutcome::TimedOut);
        assert!(results[1].latency >= Duration::from_millis(40));
        for i in [0usize, 2, 3] {
            assert_eq!(results[i].outcome, JobOutcome::Ok(i as u64));
        }
        assert_eq!(engine.stats().timed_out, 1);
    }

    #[test]
    fn submission_backpressure_blocks_and_is_counted() {
        let engine = Arc::new(BatchEngine::new(
            EngineConfig {
                workers: 1,
                queue_capacity: 1,
                job_timeout: None,
            },
            |_: &u32| std::thread::sleep(Duration::from_millis(15)),
        ));
        let submitter = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for j in 0..6u32 {
                    engine.submit(j);
                }
            })
        };
        submitter.join().unwrap();
        let engine = Arc::into_inner(engine).unwrap();
        let stats = engine.shutdown();
        assert_eq!(stats.ok, 6);
        assert!(
            stats.queue_stalls > 0,
            "a 1-deep queue over a slow worker must stall submissions"
        );
    }

    #[test]
    fn late_result_after_drain_is_not_recounted() {
        // Regression: a watchdog-timed-out job whose worker is still
        // running when the seq is drained used to have its late result
        // re-enter the exactly-once guard and double-count the job.
        let mut engine = BatchEngine::new(
            EngineConfig {
                workers: 1,
                queue_capacity: 2,
                job_timeout: Some(Duration::from_millis(10)),
            },
            |_: &u32| {
                std::thread::sleep(Duration::from_millis(200));
                1u32
            },
        );
        engine.submit(0);
        // The watchdog reports TimedOut at ~10ms, long before the worker
        // wakes; drain consumes the seq while the job is still running.
        let results = engine.drain();
        assert_eq!(results[0].outcome, JobOutcome::TimedOut);
        // Shutdown joins the worker, whose late publish must be dropped.
        let stats = engine.shutdown();
        assert_eq!(stats.timed_out, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.ok, 0);
    }

    #[test]
    fn non_string_panic_payload_is_reported() {
        let mut engine = BatchEngine::new(
            EngineConfig {
                workers: 1,
                queue_capacity: 2,
                job_timeout: None,
            },
            |job: &u32| {
                if *job == 1 {
                    std::panic::panic_any(7u8);
                }
                *job
            },
        );
        engine.submit(0);
        engine.submit(1);
        let results = engine.drain();
        assert_eq!(results[0].outcome, JobOutcome::Ok(0));
        assert_eq!(
            results[1].outcome,
            JobOutcome::Panicked("non-string panic payload".into())
        );
        assert_eq!(engine.shutdown().panicked, 1);
    }
}
